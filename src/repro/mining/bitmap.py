"""Bitmap-backed vertical counting substrate.

Every vertical structure in this library ultimately answers one
question: *how many transactions contain all items of a candidate
pattern?*  The answer is a tidset intersection, and the cheapest exact
tidset representation available to pure Python is an unbounded integer
used as a bit vector — bit ``t`` set iff transaction ``t`` holds the
item.  Intersection is ``a & b`` (one C-level word-parallel pass) and
support is ``(a & b).bit_count()``, both orders of magnitude cheaper
than hashing every tid through ``set`` intersection on dense tidsets.

Two layers live here:

* :class:`BitTidset` — an immutable set-of-tids value wrapping one such
  integer.  It implements just enough of the set protocol (``&``,
  ``|``, ``-``, ``len``, ``in``, iteration, truthiness) that the
  generic vertical miners in :mod:`repro.mining.eclat` run unchanged on
  either representation.
* :class:`BitmapIndex` — the maintained item -> bitmap map.  It is the
  storage engine behind :class:`~repro.core.annotation_index.VerticalIndex`
  and the ``counter="vertical"`` candidate-counting strategy of
  :func:`repro.mining.apriori.count_candidates`.  Buckets whose last
  tid is discarded are dropped immediately, so delete-heavy streams
  never iterate dead items.

The index exposes its contents only through :meth:`BitmapIndex.as_mapping`,
a read-only :class:`~collections.abc.Mapping` view whose values are
immutable :class:`BitTidset` objects — a consumer cannot corrupt the
incrementally maintained state through it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.mining.itemsets import Itemset, Transaction


class BitTidset:
    """An immutable set of transaction ids stored as one big integer."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0) -> None:
        if bits < 0:
            raise ValueError(f"tidset bits must be non-negative, got {bits}")
        self._bits = bits

    @classmethod
    def from_tids(cls, tids: Iterable[int]) -> "BitTidset":
        """Bulk-build from a tid iterable.

        Sets bits in a ``bytearray`` (amortized-doubling growth) and
        converts once with ``int.from_bytes``: O(tids + max_tid/8)
        total.  The obvious per-tid ``bits |= 1 << tid`` rebuilds the
        whole big int on every insertion — quadratic on large sparse
        tid ranges (see ``bench_counting_substrate.py``).
        """
        buf = bytearray(8)
        size = 8
        for tid in tids:
            if tid < 0:
                raise ValueError(f"tids must be non-negative, got {tid}")
            byte = tid >> 3
            if byte >= size:
                size = max(byte + 1, size * 2)
                buf.extend(bytes(size - len(buf)))
            buf[byte] |= 1 << (tid & 7)
        return cls(int.from_bytes(buf, "little"))

    @property
    def bits(self) -> int:
        """The raw bit vector (bit ``t`` set iff tid ``t`` is present)."""
        return self._bits

    # -- set protocol (the subset the vertical miners rely on) ---------------

    def __and__(self, other: "BitTidset") -> "BitTidset":
        return BitTidset(self._bits & other._bits)

    def __or__(self, other: "BitTidset") -> "BitTidset":
        return BitTidset(self._bits | other._bits)

    def __sub__(self, other: "BitTidset") -> "BitTidset":
        return BitTidset(self._bits & ~other._bits)

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __contains__(self, tid: int) -> bool:
        return tid >= 0 and (self._bits >> tid) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitTidset):
            return self._bits == other._bits
        if isinstance(other, (set, frozenset)):
            return self._bits == BitTidset.from_tids(other)._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def isdisjoint(self, other: "BitTidset") -> bool:
        return self._bits & other._bits == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitTidset({{{', '.join(map(str, self))}}})"


class _TidsetView(Mapping):
    """Read-only item -> :class:`BitTidset` view over a raw bitmap dict.

    The view is live (it reflects later index maintenance) but cannot
    mutate the underlying state: the Mapping ABC exposes no setters and
    every value handed out is an immutable :class:`BitTidset`.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: dict[int, int]) -> None:
        self._bits = bits

    def __getitem__(self, item: int) -> BitTidset:
        return BitTidset(self._bits[item])

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __len__(self) -> int:
        return len(self._bits)

    def __contains__(self, item: object) -> bool:
        return item in self._bits


class BitmapIndex:
    """Maintained item -> bitmap tidset map with set-free counting."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: dict[int, int] = {}

    @classmethod
    def from_transactions(cls, transactions: Sequence[Transaction]
                          ) -> "BitmapIndex":
        """Index a horizontal database (tid == position).

        One pass over per-item ``bytearray`` pages, converted to big
        ints once at the end — ``bits |= 1 << tid`` per occurrence
        would copy each item's whole vector per transaction, which is
        quadratic at million-tuple scale.
        """
        index = cls()
        buffers: dict[int, bytearray] = {}
        for tid, transaction in enumerate(transactions):
            byte, mask = tid >> 3, 1 << (tid & 7)
            for item in transaction:
                buf = buffers.get(item)
                if buf is None:
                    buffers[item] = buf = bytearray(8)
                if byte >= len(buf):
                    buf.extend(bytes(max(byte + 1, len(buf) * 2) - len(buf)))
                buf[byte] |= mask
        index._bits = {item: int.from_bytes(buf, "little")
                       for item, buf in buffers.items()}
        return index

    @classmethod
    def from_bits(cls, bits: Mapping[int, int]) -> "BitmapIndex":
        """Adopt pre-built item -> bitmap integers (e.g. decoded from a
        worker-filled shared page segment).  Empty bitmaps are dropped
        to preserve the no-dead-buckets invariant."""
        index = cls()
        index._bits = {item: value for item, value in bits.items() if value}
        return index

    # -- maintenance ---------------------------------------------------------

    def add(self, item: int, tid: int) -> None:
        self._bits[item] = self._bits.get(item, 0) | (1 << tid)

    def discard(self, item: int, tid: int) -> bool:
        """Remove ``tid`` from ``item``'s tidset; False when absent.

        An emptied bucket is deleted outright so :meth:`items` and the
        frequency queries never walk dead entries.
        """
        bits = self._bits.get(item, 0)
        mask = 1 << tid
        if not bits & mask:
            return False
        bits &= ~mask
        if bits:
            self._bits[item] = bits
        else:
            del self._bits[item]
        return True

    # -- queries -------------------------------------------------------------

    def tidset(self, item: int) -> BitTidset:
        return BitTidset(self._bits.get(item, 0))

    def frequency(self, item: int) -> int:
        return self._bits.get(item, 0).bit_count()

    def count(self, itemset: Itemset) -> int:
        """Support of ``itemset`` by bitmap intersection."""
        if not itemset:
            raise ValueError("BitmapIndex.count requires a non-empty itemset")
        result = -1  # all-ones: identity for &
        for item in itemset:
            bits = self._bits.get(item)
            if not bits:
                return 0
            result &= bits
            if not result:
                return 0
        return result.bit_count()

    def tids_of(self, itemset: Itemset) -> set[int]:
        """Materialized tids of transactions containing ``itemset``."""
        if not itemset:
            raise ValueError("tids_of requires a non-empty itemset")
        result = -1
        for item in itemset:
            bits = self._bits.get(item)
            if not bits:
                return set()
            result &= bits
        return set(BitTidset(result))

    def items(self) -> list[int]:
        """All items with at least one live tid, sorted."""
        return sorted(self._bits)

    def as_mapping(self) -> Mapping[int, BitTidset]:
        """Read-only live view handed to the vertical miners."""
        return _TidsetView(self._bits)

    def __contains__(self, item: int) -> bool:
        return item in self._bits

    def __len__(self) -> int:
        return len(self._bits)

"""SON-style exact two-phase counting across partitioned databases.

Savasere, Omiecinski and Navathe's partitioning argument: an itemset
frequent in the whole database at fraction ``f`` must be frequent at
the same fraction in at least one partition — otherwise its count would
sum to strictly less than ``ceil(f * |DB|)``.  So the union of the
partitions' locally-frequent families is a complete (superset) candidate
set for the global answer, and one exact counting pass over every
partition turns it into the global table with no false negatives and no
approximation.

This library's shard engines each maintain their partition's frequent
pattern family *exactly* (that is the engine's core incremental
guarantee), so the same two phases work both for the initial mine and
after every incremental batch:

* **phase 1** — :func:`candidate_union` collects the shard tables'
  locally-frequent candidate union;
* **phase 2** — :func:`merge_counts` counts every candidate exactly
  against every shard's bitmap index and keeps those at or above the
  global floor.

The result equals the monolithic engine's pattern table entry for
entry (counts included), because both are "every constraint-admitted
itemset with global count >= the margined floor".  The rounding of
:func:`repro._util.min_count_for` preserves the SON argument: if every
shard count is below ``max(1, ceil(f * n_i - eps))`` then the total is
strictly below ``max(1, ceil(f * n - eps))``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.mining.eclat import Tidset, count_itemset
from repro.mining.itemsets import Itemset


def candidate_union(tables: Iterable[Iterable[Itemset]]) -> set[Itemset]:
    """Phase 1: the union of the shards' locally-frequent itemsets.

    Each element of ``tables`` is one shard's pattern family (any
    iterable of itemsets — a ``FrequentPatternTable`` iterates its
    keys).  Every shard family is downward closed, and a union of
    downward-closed families is downward closed, so the merged table
    built from this union keeps the table's closure invariant.
    """
    union: set[Itemset] = set()
    for table in tables:
        union.update(table)
    return union


def count_across(indexes: Iterable[Mapping[int, Tidset]],
                 itemset: Itemset) -> int:
    """Exact global count of ``itemset``: one tidset intersection per
    shard index, summed.  Partitions are disjoint by construction, so
    the sum is the monolithic count."""
    return sum(count_itemset(index, itemset) for index in indexes)


def merge_counts(union: Iterable[Itemset],
                 indexes: list[Mapping[int, Tidset]],
                 *,
                 floor: int) -> dict[Itemset, int]:
    """Phase 2: the exact global table from a phase-1 candidate union.

    Every candidate is recounted against every shard's index; those at
    or above ``floor`` survive with their exact global count.  The SON
    property makes the result identical to mining the unpartitioned
    database at the same floor.
    """
    merged: dict[Itemset, int] = {}
    for itemset in union:
        count = count_across(indexes, itemset)
        if count >= floor:
            merged[itemset] = count
    return merged

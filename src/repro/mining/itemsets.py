"""Item model and transaction containers for the mining substrate.

The paper's dataset (its Figure 4) represents every tuple as a line of
opaque tokens: numeric ids for data values and ``Annot_k`` ids for
annotations.  Mining never needs the true values — only co-occurrence —
so the library interns every token into a compact integer id through an
:class:`ItemVocabulary` and represents transactions as frozensets of ids.

Three item kinds exist:

* ``DATA`` — a data value occurring in a tuple,
* ``ANNOTATION`` — a raw annotation attached to a tuple,
* ``LABEL`` — a generalized annotation label produced by the
  generalization engine (section 4.1 of the paper).  Labels behave
  exactly like annotations for mining purposes, which
  :meth:`ItemVocabulary.is_annotation_like` captures.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ItemKindError, VocabularyError
from repro._util import sorted_tuple

#: Canonical itemset representation: a sorted tuple of interned item ids.
Itemset = tuple[int, ...]

#: A transaction is the set of item ids present in one tuple.
Transaction = frozenset


class ItemKind(enum.Enum):
    """Classification of interned items."""

    DATA = "data"
    ANNOTATION = "annotation"
    LABEL = "label"


@dataclass(frozen=True, slots=True)
class Item:
    """A kind-tagged token, the unit of the mining alphabet."""

    kind: ItemKind
    token: str

    def __post_init__(self) -> None:
        if not isinstance(self.token, str) or not self.token:
            raise ItemKindError(f"item token must be a non-empty string, "
                                f"got {self.token!r}")

    @property
    def is_annotation_like(self) -> bool:
        """True for raw annotations and generalized labels alike."""
        return self.kind is not ItemKind.DATA

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.token


class ItemVocabulary:
    """Bidirectional mapping between :class:`Item` objects and integer ids.

    The vocabulary is append-only: ids are dense, stable, and never
    recycled, which lets every other component (tidset indexes, pattern
    tables, rule sets) key on plain integers.
    """

    def __init__(self) -> None:
        self._items: list[Item] = []
        self._ids: dict[Item, int] = {}
        self._annotation_like: set[int] = set()

    # -- interning ---------------------------------------------------------

    def intern(self, item: Item) -> int:
        """Return the id of ``item``, assigning a fresh one if unseen."""
        existing = self._ids.get(item)
        if existing is not None:
            return existing
        item_id = len(self._items)
        self._items.append(item)
        self._ids[item] = item_id
        if item.is_annotation_like:
            self._annotation_like.add(item_id)
        return item_id

    def intern_data(self, token: str) -> int:
        return self.intern(Item(ItemKind.DATA, token))

    def intern_annotation(self, token: str) -> int:
        return self.intern(Item(ItemKind.ANNOTATION, token))

    def intern_label(self, token: str) -> int:
        return self.intern(Item(ItemKind.LABEL, token))

    # -- lookup ------------------------------------------------------------

    def item(self, item_id: int) -> Item:
        """The :class:`Item` interned under ``item_id``."""
        try:
            return self._items[item_id]
        except (IndexError, TypeError):
            raise VocabularyError(f"unknown item id {item_id!r}") from None

    def id_of(self, item: Item) -> int:
        try:
            return self._ids[item]
        except KeyError:
            raise VocabularyError(f"item {item!r} is not interned") from None

    def find_annotation(self, token: str) -> int:
        """Id of a raw annotation token (raises if absent)."""
        return self.id_of(Item(ItemKind.ANNOTATION, token))

    def is_annotation_like(self, item_id: int) -> bool:
        """True when ``item_id`` denotes an annotation or a label."""
        if not 0 <= item_id < len(self._items):
            raise VocabularyError(f"unknown item id {item_id!r}")
        return item_id in self._annotation_like

    def annotation_like_ids(self) -> frozenset[int]:
        """All annotation and label ids interned so far."""
        return frozenset(self._annotation_like)

    def data_ids(self) -> frozenset[int]:
        """All data-value ids interned so far."""
        return frozenset(range(len(self._items))) - self._annotation_like

    def count_annotation_like(self, itemset: Iterable[int]) -> int:
        """Number of annotation/label ids inside ``itemset``."""
        return sum(1 for item_id in itemset if item_id in self._annotation_like)

    # -- display -----------------------------------------------------------

    def render(self, itemset: Iterable[int]) -> str:
        """Human-readable rendering of an itemset, data items first."""
        items = [self.item(item_id) for item_id in sorted_tuple(itemset)]
        items.sort(key=lambda item: (item.is_annotation_like, item.token))
        return " ".join(item.token for item in items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._ids

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)


class TransactionDatabase:
    """A vocabulary plus an ordered list of transactions.

    This is the neutral container that all miners consume.  Transaction
    index == tuple id (tid) for databases built from a relation, which is
    what lets the incremental layer talk about "newly annotated tuples".
    """

    def __init__(self, vocabulary: ItemVocabulary | None = None) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else ItemVocabulary()
        self._transactions: list[Transaction] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_encoded(cls, vocabulary: ItemVocabulary,
                     transactions: Iterable[Transaction]
                     ) -> "TransactionDatabase":
        """Trusted bulk constructor for already-encoded transactions.

        The caller guarantees every id was issued by ``vocabulary`` and
        every transaction is a frozenset — the contract of a bulk
        encoder that interned the ids itself.  Skipping the per-id
        validation of :meth:`add` is what makes partition-substrate
        construction scale with tokens, not with vocabulary probes.
        """
        database = cls(vocabulary)
        database._transactions = list(transactions)
        return database

    def add(self, item_ids: Iterable[int]) -> int:
        """Append a transaction of already-interned ids; returns its tid."""
        transaction = frozenset(item_ids)
        for item_id in transaction:
            # Raises VocabularyError on ids the vocabulary never issued.
            self.vocabulary.item(item_id)
        self._transactions.append(transaction)
        return len(self._transactions) - 1

    def add_tokens(self, data_tokens: Sequence[str],
                   annotation_tokens: Sequence[str] = ()) -> int:
        """Intern raw tokens and append the resulting transaction."""
        ids = [self.vocabulary.intern_data(token) for token in data_tokens]
        ids += [self.vocabulary.intern_annotation(token)
                for token in annotation_tokens]
        self._transactions.append(frozenset(ids))
        return len(self._transactions) - 1

    def extend_transaction(self, tid: int, item_ids: Iterable[int]) -> None:
        """Add items to an existing transaction (Case 3 annotation adds)."""
        self._transactions[tid] = self._transactions[tid] | frozenset(item_ids)

    def shrink_transaction(self, tid: int, item_ids: Iterable[int]) -> None:
        """Remove items from a transaction (annotation detachment)."""
        self._transactions[tid] = self._transactions[tid] - frozenset(item_ids)

    def clear_transaction(self, tid: int) -> Transaction:
        """Empty a transaction (tuple deletion); returns the old items."""
        old = self._transactions[tid]
        self._transactions[tid] = frozenset()
        return old

    # -- access ------------------------------------------------------------

    def transaction(self, tid: int) -> Transaction:
        return self._transactions[tid]

    @property
    def transactions(self) -> Sequence[Transaction]:
        return self._transactions

    def annotation_projection(self) -> list[Transaction]:
        """Transactions restricted to annotation-like items (A2A mining)."""
        keep = self.vocabulary.annotation_like_ids()
        return [transaction & keep for transaction in self._transactions]

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)


def canonical(items: Iterable[int]) -> Itemset:
    """Canonical itemset form: sorted, deduplicated tuple."""
    return sorted_tuple(items)


def contains(transaction: Transaction, itemset: Itemset) -> bool:
    """True when every item of ``itemset`` occurs in ``transaction``."""
    return all(item in transaction for item in itemset)

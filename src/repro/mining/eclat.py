"""Vertical (tidset) mining, including the seeded search of Figure 13.

The incremental discovery algorithm of the paper computes the support of
candidate rules "by checking only the data tuples in the database having
[the] annotation" — i.e. by walking an inverted index from annotation to
tuple ids.  :func:`mine_containing` is exactly that operation: it
enumerates every frequent itemset that *contains a given seed item*,
intersecting tidsets so that only transactions holding the seed are ever
touched.  :func:`mine_frequent_itemsets_vertical` is the unrestricted
Eclat counterpart used for cross-checking the horizontal miners.

Every function here is *tidset-polymorphic*: it only asks a tidset for
``a & b``, ``len``, truthiness and iteration, so the same search runs
over classic ``set``/``frozenset`` tidsets and over the bitmap-backed
:class:`~repro.mining.bitmap.BitTidset` representation (the fast path
every maintained index uses).  :func:`build_vertical_index` survives as
the set-based reference builder for tests and comparisons.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.mining.bitmap import BitmapIndex, BitTidset
from repro.mining.constraints import CandidateConstraint, UnrestrictedConstraint
from repro.mining.itemsets import Itemset, Transaction

#: Any value usable as a tidset: set, frozenset, or BitTidset —
#: including its buffer-backed subclass
#: :class:`~repro.mining.pages.BufferTidset`, whose bits live in a
#: shared-memory page; every miner here runs on either without change.
Tidset = "set[int] | frozenset[int] | BitTidset"


def build_vertical_index(transactions: Sequence[Transaction]
                         ) -> dict[int, set[int]]:
    """Item id -> set of tids containing it (set-based reference form)."""
    index: dict[int, set[int]] = {}
    for tid, transaction in enumerate(transactions):
        for item in transaction:
            index.setdefault(item, set()).add(tid)
    return index


def _dfs(prefix: Itemset,
         prefix_tids,
         extensions: list,
         min_count: int,
         constraint: CandidateConstraint,
         max_length: int | None,
         out: dict[Itemset, int]) -> None:
    for position, (item, item_tids) in enumerate(extensions):
        tids = prefix_tids & item_tids
        if len(tids) < min_count:
            continue
        itemset = tuple(sorted(prefix + (item,)))
        if not constraint.admits(itemset):
            # Violations are monotone under supersets: prune the branch.
            continue
        out[itemset] = len(tids)
        if max_length is not None and len(itemset) >= max_length:
            continue
        _dfs(itemset, tids, extensions[position + 1:], min_count,
             constraint, max_length, out)


def mine_frequent_itemsets_vertical(transactions: Sequence[Transaction],
                                    *,
                                    min_count: int,
                                    constraint: CandidateConstraint | None = None,
                                    max_length: int | None = None,
                                    index: Mapping[int, Tidset] | None = None,
                                    ) -> dict[Itemset, int]:
    """Eclat over a horizontal database; same contract as the Apriori miner.

    The database is indexed into bitmaps first, so every intersection in
    the depth-first search is one big-int ``&`` plus a popcount.  A
    caller that already maintains that index (the partitioned-substrate
    mine path) passes it via ``index`` and skips the rebuild; it must
    cover exactly ``transactions`` *after* the constraint's projection
    (the engine-side constraint projects nothing, so its maintained
    index qualifies as-is).
    """
    constraint = constraint if constraint is not None else UnrestrictedConstraint()
    if index is None:
        projected = [constraint.project(transaction)
                     for transaction in transactions]
        index = BitmapIndex.from_transactions(projected).as_mapping()
    out: dict[Itemset, int] = {}
    extensions = [
        (item, tids)
        for item, tids in sorted(index.items())
        if len(tids) >= min_count and constraint.admits_item(item)
    ]
    for position, (item, tids) in enumerate(extensions):
        out[(item,)] = len(tids)
        _dfs((item,), tids, extensions[position + 1:], min_count,
             constraint, max_length, out)
    return out


def mine_containing(index: Mapping[int, Tidset],
                    seed_item: int,
                    *,
                    min_count: int,
                    constraint: CandidateConstraint | None = None,
                    candidate_items: Iterable[int] | None = None,
                    max_length: int | None = None) -> dict[Itemset, int]:
    """All frequent itemsets that contain ``seed_item``.

    Counts are global (an itemset containing the seed can only occur in
    transactions that hold the seed), yet the search touches only the
    seed's tidset — the access pattern the paper's Figure 13 prescribes.

    ``candidate_items`` optionally restricts which other items may join
    the seed (e.g. only items actually co-occurring with it).
    """
    constraint = constraint if constraint is not None else UnrestrictedConstraint()
    seed_tids = index.get(seed_item)
    if seed_tids is None or len(seed_tids) < min_count \
            or not constraint.admits_item(seed_item):
        return {}

    if candidate_items is None:
        candidate_items = index.keys()
    extensions = []
    for item in sorted(set(candidate_items) - {seed_item}):
        other_tids = index.get(item)
        if other_tids is None:
            continue
        item_tids = seed_tids & other_tids
        if len(item_tids) >= min_count:
            extensions.append((item, item_tids))

    out: dict[Itemset, int] = {(seed_item,): len(seed_tids)}
    _dfs((seed_item,), seed_tids, extensions, min_count, constraint,
         max_length, out)
    return out


def count_itemset(index: Mapping[int, Tidset],
                  itemset: Itemset,
                  *,
                  universe_size: int | None = None) -> int:
    """Exact count of ``itemset`` by tidset intersection.

    The empty itemset counts every transaction, hence ``universe_size``
    is required for it.
    """
    if not itemset:
        if universe_size is None:
            raise ValueError("universe_size required to count the empty itemset")
        return universe_size
    tidsets = []
    for item in itemset:
        tids = index.get(item)
        if tids is None or not tids:
            return 0
        tidsets.append(tids)
    # Intersect starting from the rarest item to keep intermediates small.
    tidsets.sort(key=len)
    result = tidsets[0]
    for tids in tidsets[1:]:
        result = result & tids
        if not result:
            return 0
    return len(result)


def tids_of(index: Mapping[int, Tidset],
            itemset: Itemset) -> set[int]:
    """Tids of transactions containing every item of ``itemset``."""
    if not itemset:
        raise ValueError("tids_of requires a non-empty itemset")
    tidsets = []
    for item in itemset:
        tids = index.get(item)
        if tids is None:
            return set()
        tidsets.append(tids)
    tidsets.sort(key=len)
    result = tidsets[0]
    for tids in tidsets[1:]:
        result = result & tids
    return set(result)

"""Candidate constraints implementing the paper's "early elimination".

Section 3.1 of the paper describes a single modification to Apriori:
candidate patterns that cannot contribute to an annotation-RHS rule are
eliminated early.  For Apriori's level-wise pruning to stay *exact*, an
eliminated pattern must never be a subset of a wanted pattern — i.e. the
violation condition must be monotone under supersets.  The three concrete
constraints below all have that property:

* :class:`AnnotationOnlyConstraint` (A2A mining, Definition 4.3): every
  data item is projected away before mining even starts.
* :class:`AtMostOneAnnotationConstraint` (D2A mining, Definition 4.2):
  patterns with two or more annotation items are pruned — a D2A rule has
  exactly one annotation and it is the RHS.  Data-only patterns are kept
  because they are the confidence denominators.
* :class:`CombinedRelevanceConstraint` (used by the incremental manager's
  single pattern table): a pattern is kept when it is data-only, has
  exactly one annotation, or is annotation-only.  The violation
  ("two or more annotations mixed with data") is monotone.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.mining.itemsets import ItemVocabulary, Itemset, Transaction


class MiningTask(enum.Enum):
    """Which family of correlations a mining pass targets."""

    DATA_TO_ANNOTATION = "data-to-annotation"
    ANNOTATION_TO_ANNOTATION = "annotation-to-annotation"
    COMBINED = "combined"
    UNRESTRICTED = "unrestricted"


class CandidateConstraint(ABC):
    """Filter applied to candidate itemsets and, optionally, transactions."""

    @abstractmethod
    def admits(self, itemset: Iterable[int]) -> bool:
        """True when the pattern may still contribute to a target rule."""

    def project(self, transaction: Transaction) -> Transaction:
        """Optionally strip items that can never appear in a candidate."""
        return transaction

    def admits_item(self, item_id: int) -> bool:
        """Fast-path check for singleton candidates."""
        return self.admits((item_id,))


class UnrestrictedConstraint(CandidateConstraint):
    """Classic Apriori: every pattern admitted (cross-check baseline)."""

    def admits(self, itemset: Iterable[int]) -> bool:
        return True


class AnnotationOnlyConstraint(CandidateConstraint):
    """Admit only patterns made purely of annotation-like items."""

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary

    def admits(self, itemset: Iterable[int]) -> bool:
        keep = self._vocabulary.annotation_like_ids()
        return all(item_id in keep for item_id in itemset)

    def project(self, transaction: Transaction) -> Transaction:
        return transaction & self._vocabulary.annotation_like_ids()


class AtMostOneAnnotationConstraint(CandidateConstraint):
    """Admit data-only patterns and patterns with exactly one annotation."""

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary

    def admits(self, itemset: Iterable[int]) -> bool:
        return self._vocabulary.count_annotation_like(itemset) <= 1


class CombinedRelevanceConstraint(CandidateConstraint):
    """Admit every pattern relevant to either rule family.

    Kept patterns: data-only (D2A denominators), exactly one annotation
    (D2A numerators), annotation-only of any size (A2A numerators and
    denominators).  Rejected: two or more annotations mixed with at least
    one data item — no rule of either family is derived from those.
    """

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary

    def admits(self, itemset: Iterable[int]) -> bool:
        itemset = tuple(itemset)
        annotations = self._vocabulary.count_annotation_like(itemset)
        if annotations <= 1:
            return True
        return annotations == len(itemset)


class FrozenRelevanceConstraint(CandidateConstraint):
    """:class:`CombinedRelevanceConstraint` against a *frozen* snapshot
    of the annotation-like id set.

    Process-parallel shard mining cannot ship an
    :class:`~repro.mining.itemsets.ItemVocabulary` to workers (it is a
    mutable interning structure; pickling it would fork the id space),
    but all interning completes before the concurrent phase-1 mines, so
    a frozen copy of ``vocabulary.annotation_like_ids()`` decides
    admission identically.  Instances are plain picklable data.
    """

    __slots__ = ("_annotation_like",)

    def __init__(self, annotation_like: Iterable[int]) -> None:
        self._annotation_like = frozenset(annotation_like)

    def admits(self, itemset: Iterable[int]) -> bool:
        itemset = tuple(itemset)
        keep = self._annotation_like
        annotations = sum(1 for item_id in itemset if item_id in keep)
        if annotations <= 1:
            return True
        return annotations == len(itemset)


def constraint_for_task(task: MiningTask,
                        vocabulary: ItemVocabulary) -> CandidateConstraint:
    """The constraint the paper's modified Apriori applies for ``task``."""
    if task is MiningTask.DATA_TO_ANNOTATION:
        return AtMostOneAnnotationConstraint(vocabulary)
    if task is MiningTask.ANNOTATION_TO_ANNOTATION:
        return AnnotationOnlyConstraint(vocabulary)
    if task is MiningTask.COMBINED:
        return CombinedRelevanceConstraint(vocabulary)
    return UnrestrictedConstraint()


def violation_is_monotone(constraint: CandidateConstraint,
                          itemset: Itemset,
                          superset: Itemset) -> bool:
    """Property-test helper: once violated, all supersets stay violated."""
    if constraint.admits(itemset):
        return True
    return not constraint.admits(superset)

"""FP-growth backend, used to cross-validate the Apriori miner.

The paper relies on Apriori; FP-growth is provided as an alternative
"state-of-the-art technique" (section 4) so the test suite can assert
that every backend produces identical itemset tables.  Constraints are
honoured by projecting transactions up front and post-filtering emitted
patterns — counts are unaffected because a pattern's count never depends
on other patterns.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.mining.constraints import CandidateConstraint, UnrestrictedConstraint
from repro.mining.itemsets import Itemset, Transaction


class _FPNode:
    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int | None, parent: "_FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}


class _FPTree:
    """Prefix tree over frequency-ordered transactions with header links."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[int, list[_FPNode]] = {}

    def insert(self, items: Sequence[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base for ``item``."""
        paths = []
        for node in self.header.get(item, ()):
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                path.reverse()
            paths.append((path, node.count))
        return paths

    def is_single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is one chain, return its (item, count) list."""
        chain: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            chain.append((node.item, node.count))
        return chain


def _build_tree(weighted_transactions: list[tuple[Sequence[int], int]],
                min_count: int) -> tuple[_FPTree, dict[int, int]]:
    item_counts: Counter[int] = Counter()
    for items, count in weighted_transactions:
        for item in items:
            item_counts[item] += count
    frequent = {item: count for item, count in item_counts.items()
                if count >= min_count}
    order = {item: (-count, item) for item, count in frequent.items()}
    tree = _FPTree()
    for items, count in weighted_transactions:
        kept = sorted((item for item in items if item in frequent),
                      key=order.__getitem__)
        if kept:
            tree.insert(kept, count)
    return tree, frequent


def _mine_tree(tree: _FPTree,
               frequent: dict[int, int],
               suffix: Itemset,
               min_count: int,
               max_length: int | None,
               out: dict[Itemset, int]) -> None:
    chain = tree.is_single_path()
    if chain is not None:
        _emit_chain_combinations(chain, suffix, max_length, out)
        return
    for item, count in sorted(frequent.items(), key=lambda pair: pair[1]):
        pattern = tuple(sorted(suffix + (item,)))
        out[pattern] = count
        if max_length is not None and len(pattern) >= max_length:
            continue
        conditional = tree.prefix_paths(item)
        subtree, sub_frequent = _build_tree(conditional, min_count)
        if sub_frequent:
            _mine_tree(subtree, sub_frequent, pattern, min_count,
                       max_length, out)


def _emit_chain_combinations(chain: list[tuple[int, int]],
                             suffix: Itemset,
                             max_length: int | None,
                             out: dict[Itemset, int]) -> None:
    """All combinations along a single path, counted by the deepest node."""

    def recurse(start: int, picked: tuple[int, ...], count: int) -> None:
        if picked:
            pattern = tuple(sorted(suffix + picked))
            out[pattern] = count
        if max_length is not None and len(suffix) + len(picked) >= max_length:
            return
        for position in range(start, len(chain)):
            item, item_count = chain[position]
            recurse(position + 1, picked + (item,), min(count, item_count)
                    if picked else item_count)

    recurse(0, (), 0)


def mine_frequent_itemsets_fp(transactions: Sequence[Transaction],
                              *,
                              min_count: int,
                              constraint: CandidateConstraint | None = None,
                              max_length: int | None = None
                              ) -> dict[Itemset, int]:
    """FP-growth; same table contract as the Apriori and Eclat miners."""
    constraint = constraint if constraint is not None else UnrestrictedConstraint()
    projected = [(tuple(constraint.project(transaction)), 1)
                 for transaction in transactions]
    tree, frequent = _build_tree(projected, min_count)
    out: dict[Itemset, int] = {}
    _mine_tree(tree, frequent, (), min_count, max_length, out)
    return {pattern: count for pattern, count in out.items()
            if constraint.admits(pattern)}

"""Shared-memory bitmap pages: the fixed-width counting substrate.

:mod:`repro.mining.bitmap` stores every tidset as one Python big int —
the cheapest *in-process* exact representation, but one that cannot be
placed in a ``multiprocessing.shared_memory`` block: big ints are
PyObjects, private to their interpreter.  This module gives the same
bitmaps a second, process-portable form: each item's tidset is a
**page** of little-endian bytes (bit ``t`` set iff tid ``t`` holds the
item), and all pages of all shards are packed into one shared-memory
**segment** a worker process attaches by name and reads zero-copy.

Three layers:

* :class:`BufferTidset` — a :class:`~repro.mining.bitmap.BitTidset`
  whose bit vector lives in a buffer page.  The big int is materialized
  lazily (one C-level ``int.from_bytes`` pass, cached), so every
  inherited set operation — ``&``, ``|``, ``-``, ``len``, ``in``,
  iteration, truthiness — runs at big-int speed on first touch and the
  page itself is never copied before that.
* :class:`BitmapPageSegment` — the page allocator.  :meth:`~BitmapPageSegment.pack`
  lays out per-shard item directories and pages into one segment;
  :meth:`~BitmapPageSegment.attach` opens an existing segment by name
  (the whole transfer between processes is that name string — no
  pickling of indexes in either direction).
* :class:`PagedBitmapIndex` — the read-only index view over one
  shard's pages, implementing the same counting surface and
  ``as_mapping()`` contract as :class:`~repro.mining.bitmap.BitmapIndex`,
  so the vertical miners and the SON phase-2 merge run on it unchanged.

Lifecycle discipline: the *owner* (the process that packed the
segment) must :meth:`~BitmapPageSegment.close` and
:meth:`~BitmapPageSegment.unlink` it; attachers only close.  A
module-level ``atexit`` net unlinks any segment its creating process
leaked, so a crashed mine cannot strand ``/dev/shm`` blocks.  (Forked
``multiprocessing`` workers exit via ``os._exit`` and never run the
net, so a worker can never unlink its parent's live segment.)
"""

from __future__ import annotations

import atexit
import os
import secrets
from collections.abc import Iterator, Mapping, Sequence

from repro.errors import MiningError
from repro.mining.bitmap import BitTidset
from repro.mining.itemsets import Itemset

#: Page payloads and directory words are fixed-width little-endian.
WORD_BYTES = 8
#: First directory word of every segment — catches attaching to a
#: foreign shared-memory block by name collision.
_MAGIC = 0x5245_5052_4F50_4731  # "REPROPG1"

#: Segments created (and not yet unlinked) by *this* process, for the
#: atexit net and the leak assertions in tests.  Keyed by name.
_LIVE_SEGMENTS: dict[str, "BitmapPageSegment"] = {}
_OWNER_PID = os.getpid()


def live_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked.

    Test hook: after any mine/drain/restore this must be empty — a
    non-empty result is a leaked ``/dev/shm`` block.
    """
    return tuple(sorted(_LIVE_SEGMENTS))


def _cleanup_at_exit() -> None:
    # Only the creating process may unlink; a fork that somehow reaches
    # interpreter exit (it normally leaves via os._exit) must not tear
    # down segments its parent is still serving from.
    if os.getpid() != _OWNER_PID:
        return
    for segment in list(_LIVE_SEGMENTS.values()):
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - best-effort net
            pass


atexit.register(_cleanup_at_exit)


def _untrack(shm) -> None:
    """Remove ``shm`` from this process's multiprocessing resource
    tracker.

    Python < 3.13 registers every ``SharedMemory`` construction with
    the tracker — *attaches* included.  An attacher must back that
    registration out: under spawn its private tracker would otherwise
    unlink the owner's live segment when the worker exits, and under
    fork the extra unregister-on-attach pairing against the *shared*
    tracker's deduplicated register set makes the owner's later
    ``unlink()`` print ``KeyError`` noise.  (:meth:`BitmapPageSegment.unlink`
    re-registers just before unlinking so the tracker's books stay
    balanced on the owner side — see :func:`_track`.)
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _track(shm) -> None:
    """(Re-)register ``shm`` with the resource tracker.

    The tracker's register set is deduplicated, so this is a no-op when
    the owner's create-time registration still stands; when a forked
    worker's attach-side :func:`_untrack` consumed it, this restores
    the entry the ``SharedMemory.unlink`` internals are about to
    unregister.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class BufferTidset(BitTidset):
    """A :class:`BitTidset` whose bits live in a (shared) buffer page.

    The instance holds ``(base, start, stop)`` into the segment's
    buffer; the inherited big int is materialized on first use via
    ``__getattr__`` (an unset slot raises ``AttributeError``, which
    routes here exactly once) and cached in the ``_bits`` slot, after
    which the object is indistinguishable from a plain ``BitTidset``.
    Set operations therefore cost the same as big-int tidsets, and a
    page that no candidate ever touches is never copied at all.

    Instances are only valid while their segment is open; materializing
    after ``close()`` raises ``ValueError`` (released memoryview).
    """

    __slots__ = ("_base", "_start", "_stop")

    def __init__(self, base: memoryview, start: int, stop: int) -> None:
        # Deliberately no super().__init__: the _bits slot stays unset
        # until first materialization.
        self._base = base
        self._start = start
        self._stop = stop

    def __getattr__(self, name: str):
        if name == "_bits":
            view = self._base[self._start:self._stop]
            try:
                bits = int.from_bytes(view, "little")
            finally:
                view.release()
            self._bits = bits
            return bits
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @property
    def page_bytes(self) -> int:
        """Size of the backing page in bytes (fixed at pack time)."""
        return self._stop - self._start


def _bits_of(value) -> int:
    """Raw bit vector of a tidset-like packing input (int or BitTidset)."""
    if isinstance(value, int):
        return value
    return value.bits


class BitmapPageSegment:
    """All shards' bitmap pages in one shared-memory block.

    Layout (offsets in bytes, every word little-endian ``u64``)::

        [magic][header_words][shard_count]
        per shard: [n_items] then n_items x [item][offset][nbytes]
        ... pages (offset/nbytes are absolute within the segment) ...

    The directory is embedded, so :meth:`attach` needs nothing but the
    segment name — the parent never pickles an index to a worker and a
    worker never pickles one back.
    """

    def __init__(self, shm, directory: list[list[tuple[int, int, int]]],
                 *, owner: bool) -> None:
        self._shm = shm
        self._directory = directory
        self._owner = owner
        self._views: dict[int, "_PagedView"] = {}
        self._closed = False

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _create_shm(total: int):
        """A fresh uniquely-named zero-filled shared-memory block."""
        from multiprocessing.shared_memory import SharedMemory

        for _ in range(16):
            name = f"repro_pages_{os.getpid():x}_{secrets.token_hex(4)}"
            try:
                return SharedMemory(name=name, create=True, size=total)
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
        raise MiningError(  # pragma: no cover - exhausted retries
            "could not allocate a shared bitmap segment")

    @classmethod
    def _build(cls, prepared: Sequence[Sequence[tuple[int, int | None, int]]]
               ) -> "BitmapPageSegment":
        """Create a segment from per-shard ``(item, bits|None, nbytes)``
        entries: the directory is written for every entry, the payload
        only for entries with bits (``None`` pages stay zeroed — the
        :meth:`allocate` shape, filled later by :meth:`write_pages`)."""
        header_words = 3 + sum(1 + 3 * len(entries) for entries in prepared)
        payload_bytes = sum(nbytes for entries in prepared
                            for _item, _bits, nbytes in entries)
        header_bytes = header_words * WORD_BYTES
        shm = cls._create_shm(max(header_bytes + payload_bytes, 1))

        buf = shm.buf
        words = [_MAGIC, header_words, len(prepared)]
        directory: list[list[tuple[int, int, int]]] = []
        offset = header_bytes
        for entries in prepared:
            words.append(len(entries))
            shard_dir = []
            for item, bits, nbytes in entries:
                words.extend((item, offset, nbytes))
                if bits is not None:
                    buf[offset:offset + nbytes] = bits.to_bytes(
                        nbytes, "little")
                shard_dir.append((item, offset, nbytes))
                offset += nbytes
            directory.append(shard_dir)
        buf[:header_bytes] = b"".join(
            word.to_bytes(WORD_BYTES, "little") for word in words)

        segment = cls(shm, directory, owner=True)
        _LIVE_SEGMENTS[shm.name] = segment
        return segment

    @classmethod
    def pack(cls, shard_maps: Sequence[Mapping[int, object]]
             ) -> "BitmapPageSegment":
        """Allocate a segment holding one page per (shard, item).

        ``shard_maps`` is one item -> tidset mapping per shard — raw
        ``int`` bit vectors or anything with a ``.bits`` property
        (:class:`BitTidset`, a :meth:`BitmapIndex.as_mapping` view).
        """
        prepared: list[list[tuple[int, int | None, int]]] = []
        for shard_map in shard_maps:
            entries: list[tuple[int, int | None, int]] = []
            for item in sorted(shard_map):
                bits = _bits_of(shard_map[item])
                entries.append((item, bits, (bits.bit_length() + 7) // 8))
            prepared.append(entries)
        return cls._build(prepared)

    @classmethod
    def allocate(cls, shard_layouts: Sequence[tuple[Sequence[int], int]]
                 ) -> "BitmapPageSegment":
        """A zeroed segment with the directory pre-written: one
        fixed-width page per (shard, item).

        ``shard_layouts`` is one ``(items, page_bytes)`` pair per shard
        — the parent computes the layout (it knows each shard's item
        set and transaction count) and worker processes fill their
        shard's pages in place via :meth:`write_pages`.  Fixed-width
        pages may carry trailing zero bytes; ``int.from_bytes`` ignores
        them, so readers see the identical bit vectors a tightly packed
        segment would hold.
        """
        prepared = [
            [(item, None, page_bytes) for item in sorted(items)]
            for items, page_bytes in shard_layouts
        ]
        return cls._build(prepared)

    def write_pages(self, shard: int,
                    bitmaps: Mapping[int, object]) -> None:
        """Fill one shard's pages in place (attacher-side is the point:
        worker processes build their shard's bitmaps and write them
        straight into the shared block).

        ``bitmaps`` must cover exactly the items the shard's directory
        was allocated for, and every bit vector must fit its page —
        both are drift checks against the parent-computed layout.
        Shards' page regions are disjoint, so concurrent writers of
        *different* shards need no synchronization.
        """
        if self._closed:
            raise MiningError("bitmap segment is closed")
        if not 0 <= shard < len(self._directory):
            raise MiningError(
                f"segment holds shards 0..{len(self._directory) - 1}, "
                f"asked for {shard}")
        entries = self._directory[shard]
        if set(bitmaps) != {item for item, _offset, _nbytes in entries}:
            raise MiningError(
                f"shard {shard} page layout drift: directory holds "
                f"{len(entries)} item(s), writer brought {len(bitmaps)}")
        buf = self._shm.buf
        for item, offset, nbytes in entries:
            bits = _bits_of(bitmaps[item])
            if bits.bit_length() > nbytes * 8:
                raise MiningError(
                    f"item {item} bitmap needs "
                    f"{(bits.bit_length() + 7) // 8} bytes but shard "
                    f"{shard} pages are {nbytes} bytes wide")
            buf[offset:offset + nbytes] = bits.to_bytes(nbytes, "little")

    @classmethod
    def attach(cls, name: str) -> "BitmapPageSegment":
        """Open an existing segment read-only by name (worker side)."""
        from multiprocessing.shared_memory import SharedMemory

        shm = SharedMemory(name=name)
        _untrack(shm)
        try:
            directory = cls._read_directory(shm.buf)
        except Exception:
            shm.close()
            raise
        return cls(shm, directory, owner=False)

    @staticmethod
    def _read_directory(buf: memoryview) -> list[list[tuple[int, int, int]]]:
        def word(index: int) -> int:
            view = buf[index * WORD_BYTES:(index + 1) * WORD_BYTES]
            try:
                return int.from_bytes(view, "little")
            finally:
                view.release()

        if word(0) != _MAGIC:
            raise MiningError(
                "shared-memory block is not a repro bitmap segment "
                "(bad magic)")
        header_words = word(1)
        shard_count = word(2)
        cursor = 3
        directory: list[list[tuple[int, int, int]]] = []
        for _ in range(shard_count):
            n_items = word(cursor)
            cursor += 1
            entries = []
            for _ in range(n_items):
                entries.append((word(cursor), word(cursor + 1),
                                word(cursor + 2)))
                cursor += 3
            directory.append(entries)
        if cursor != header_words:
            raise MiningError(
                f"bitmap segment directory is inconsistent: parsed "
                f"{cursor} header words, header claims {header_words}")
        return directory

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        """The attach key: the only thing workers receive."""
        return self._shm.name

    @property
    def shard_count(self) -> int:
        return len(self._directory)

    @property
    def is_owner(self) -> bool:
        return self._owner

    def shard_mapping(self, shard: int) -> "_PagedView":
        """Read-only item -> :class:`BufferTidset` mapping of one shard
        (the ``as_mapping()`` shape the vertical miners and the SON
        merge consume).  Views are cached, so each item materializes
        its big int at most once per attached process.
        """
        if self._closed:
            raise MiningError("bitmap segment is closed")
        view = self._views.get(shard)
        if view is None:
            if not 0 <= shard < len(self._directory):
                raise MiningError(
                    f"segment holds shards 0..{len(self._directory) - 1}, "
                    f"asked for {shard}")
            base = self._shm.buf
            view = _PagedView({
                item: BufferTidset(base, offset, offset + nbytes)
                for item, offset, nbytes in self._directory[shard]})
            self._views[shard] = view
        return view

    def shard_index(self, shard: int) -> "PagedBitmapIndex":
        """The full read-only counting index over one shard's pages."""
        return PagedBitmapIndex(self.shard_mapping(shard))

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; implies :meth:`close`)."""
        if not self._owner:
            raise MiningError("only the owning process may unlink a segment")
        self.close()
        _LIVE_SEGMENTS.pop(self._shm.name, None)
        try:
            # Balance the unregister inside SharedMemory.unlink (a
            # forked worker's attach-side _untrack may have consumed
            # this process's create-time registration).
            _track(self._shm)
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            _untrack(self._shm)

    def __enter__(self) -> "BitmapPageSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()


class _PagedView(Mapping):
    """Read-only item -> :class:`BufferTidset` view over one shard.

    Same contract as :class:`repro.mining.bitmap._TidsetView`: the
    Mapping ABC exposes no setters and every value is an (immutable)
    tidset, so a consumer cannot corrupt the segment through it.
    """

    __slots__ = ("_pages",)

    def __init__(self, pages: dict[int, BufferTidset]) -> None:
        self._pages = pages

    def __getitem__(self, item: int) -> BufferTidset:
        return self._pages[item]

    def __iter__(self) -> Iterator[int]:
        return iter(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, item: object) -> bool:
        return item in self._pages


class PagedBitmapIndex:
    """Read-only :class:`~repro.mining.bitmap.BitmapIndex` counterpart
    over a segment's pages: same queries, same ``as_mapping()`` shape,
    no maintenance surface (pages are immutable once packed)."""

    __slots__ = ("_view",)

    def __init__(self, view: _PagedView) -> None:
        self._view = view

    def tidset(self, item: int) -> BitTidset:
        tids = self._view._pages.get(item)
        return tids if tids is not None else BitTidset(0)

    def frequency(self, item: int) -> int:
        return len(self.tidset(item))

    def count(self, itemset: Itemset) -> int:
        """Support of ``itemset`` by page intersection."""
        if not itemset:
            raise ValueError(
                "PagedBitmapIndex.count requires a non-empty itemset")
        result = -1  # all-ones: identity for &
        pages = self._view._pages
        for item in itemset:
            tids = pages.get(item)
            if tids is None:
                return 0
            result &= tids.bits
            if not result:
                return 0
        return result.bit_count()

    def tids_of(self, itemset: Itemset) -> set[int]:
        if not itemset:
            raise ValueError("tids_of requires a non-empty itemset")
        result = -1
        pages = self._view._pages
        for item in itemset:
            tids = pages.get(item)
            if tids is None:
                return set()
            result &= tids.bits
        return set(BitTidset(result))

    def items(self) -> list[int]:
        return sorted(self._view._pages)

    def as_mapping(self) -> _PagedView:
        return self._view

    def __contains__(self, item: int) -> bool:
        return item in self._view._pages

    def __len__(self) -> int:
        return len(self._view._pages)

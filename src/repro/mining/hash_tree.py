"""Hash tree for candidate support counting.

The paper's Apriori "uses breadth-first search and a hash tree structure
to count candidate item sets" (its Figure 3).  This module implements the
classic structure from Agrawal & Srikant [2]: interior nodes hash the
item at the current depth into a fixed fanout of children; leaves hold a
small bucket of candidates.  Counting a transaction walks every branch
the transaction can reach and checks only the candidates in reached
leaves, instead of enumerating all ``C(|t|, k)`` sub-patterns.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import MiningError
from repro.mining.itemsets import Itemset, Transaction


class _Node:
    __slots__ = ("children", "bucket")

    def __init__(self) -> None:
        self.children: dict[int, _Node] | None = None
        self.bucket: list[int] | None = []  # candidate indexes


class HashTree:
    """Counts occurrences of fixed-length candidates inside transactions."""

    def __init__(self, candidates: Sequence[Itemset], *,
                 fanout: int = 8, max_leaf_size: int = 16) -> None:
        if fanout < 2:
            raise MiningError(f"hash tree fanout must be >= 2, got {fanout}")
        if max_leaf_size < 1:
            raise MiningError(
                f"hash tree leaf size must be >= 1, got {max_leaf_size}")
        lengths = {len(candidate) for candidate in candidates}
        if len(lengths) > 1:
            raise MiningError(
                f"hash tree candidates must share one length, got {sorted(lengths)}")
        self._candidates: list[Itemset] = list(candidates)
        self._length = lengths.pop() if lengths else 0
        if self._length == 0 and self._candidates:
            raise MiningError("hash tree candidates must be non-empty itemsets")
        self._fanout = fanout
        self._max_leaf_size = max_leaf_size
        self.counts: list[int] = [0] * len(self._candidates)
        self._root = _Node()
        for index in range(len(self._candidates)):
            self._insert(index)

    # -- construction ------------------------------------------------------

    def _insert(self, index: int) -> None:
        node = self._root
        depth = 0
        while node.children is not None:
            item = self._candidates[index][depth]
            node = node.children.setdefault(item % self._fanout, _Node())
            depth += 1
        assert node.bucket is not None
        node.bucket.append(index)
        if len(node.bucket) > self._max_leaf_size and depth < self._length:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        bucket, node.bucket = node.bucket, None
        node.children = {}
        assert bucket is not None
        for index in bucket:
            item = self._candidates[index][depth]
            child = node.children.setdefault(item % self._fanout, _Node())
            assert child.bucket is not None
            child.bucket.append(index)
        for child in node.children.values():
            assert child.bucket is not None
            if len(child.bucket) > self._max_leaf_size and depth + 1 < self._length:
                self._split(child, depth + 1)

    # -- counting ----------------------------------------------------------

    def count_transaction(self, transaction: Transaction) -> None:
        """Add 1 to every candidate contained in ``transaction``."""
        if self._length == 0 or len(transaction) < self._length:
            return
        items = sorted(transaction)
        self._walk(self._root, items, 0, transaction)

    def _walk(self, node: _Node, items: list[int], start: int,
              transaction: Transaction) -> None:
        if node.bucket is not None:
            for index in node.bucket:
                candidate = self._candidates[index]
                if all(item in transaction for item in candidate):
                    self.counts[index] += 1
            return
        assert node.children is not None
        # Remaining depth bounds how few items we may leave unconsumed.
        seen_buckets: set[int] = set()
        for position in range(start, len(items)):
            bucket_key = items[position] % self._fanout
            if bucket_key in seen_buckets:
                continue
            seen_buckets.add(bucket_key)
            child = node.children.get(bucket_key)
            if child is not None:
                self._walk(child, items, position + 1, transaction)

    def count_all(self, transactions: Iterable[Transaction]) -> dict[Itemset, int]:
        """Count every transaction and return the candidate -> count map."""
        for transaction in transactions:
            self.count_transaction(transaction)
        return self.result()

    def result(self) -> dict[Itemset, int]:
        return {candidate: count
                for candidate, count in zip(self._candidates, self.counts)}

    def __len__(self) -> int:
        return len(self._candidates)

"""FUP-style exact maintenance of an itemset table under tuple inserts.

The paper defers Cases 1 and 2 (adding annotated / un-annotated tuples)
to "existing techniques" [its reference 1].  This module implements the
classic Fast-UPdate argument those techniques rest on:

* an itemset **in** the table has its count refreshed by scanning *only
  the inserted transactions* (its old count is exact);
* an itemset **not in** the table had ``count < keep_fraction * old_n``;
  if its count in the increment is also below ``keep_fraction * inc_n``
  then its total is below ``keep_fraction * new_n`` and it correctly
  stays out.  Hence the only possible *new* table entries are itemsets
  frequent **within the increment**, which are found by mining the
  increment alone and counted exactly against the full database through
  the vertical index.

The table therefore stays exactly equal to "all admitted itemsets with
support >= keep_fraction" after any insert batch — the property every
equivalence test in this repository checks.

The exact global count in step 2 runs through whatever vertical index
the engine maintains; with the bitmap substrate
(:mod:`repro.mining.bitmap`) each such count is one big-int AND chain
plus a popcount, never a database scan.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro._util import min_count_for
from repro.errors import MaintenanceError
from repro.mining.bitmap import BitTidset
from repro.mining.constraints import CandidateConstraint
from repro.mining.eclat import count_itemset
from repro.mining.itemsets import Itemset, Transaction
from repro.mining.tables import increment_counts
from repro.mining import apriori


@dataclass
class FupReport:
    """What an insert batch did to the itemset table."""

    new_size: int
    #: Number of (pattern, transaction) count refreshes performed.
    refreshed: int = 0
    #: Distinct pre-existing entries whose counts step 1 refreshed —
    #: the dirty set consumed by the engine's scoped rule refresh.
    touched: set[Itemset] = field(default_factory=set)
    added: list[Itemset] = field(default_factory=list)
    pruned: list[Itemset] = field(default_factory=list)


def fup_update(table: dict[Itemset, int],
               increment: Sequence[Transaction],
               *,
               index: Mapping[int, "set[int] | frozenset[int] | BitTidset"],
               new_size: int,
               keep_fraction: float,
               constraint: CandidateConstraint,
               max_length: int | None = None,
               counter: str = "auto",
               miner: Callable[..., dict[Itemset, int]] | None = None
               ) -> FupReport:
    """Update ``table`` in place for ``increment`` newly inserted tuples.

    ``index`` must be the vertical index of the **already updated**
    database (increment included); ``new_size`` its transaction count.
    ``keep_fraction`` is the support floor the table maintains.

    The FUP argument is miner-agnostic: any exact frequent-itemset
    miner may enumerate the increment-local candidates.  ``miner``
    (keyword signature ``(transactions, *, min_count, constraint,
    max_length)``) substitutes for the default Apriori pass — this is
    how the Eclat and FP-growth backends run the whole incremental
    lifecycle on their own algorithms.
    """
    if new_size < len(increment):
        raise MaintenanceError(
            f"new_size={new_size} smaller than the increment "
            f"({len(increment)} transactions)")
    report = FupReport(new_size=new_size)

    # Step 1: refresh counts of existing entries by scanning the increment.
    for transaction in increment:
        report.refreshed += increment_counts(
            table, constraint.project(transaction),
            touched_out=report.touched)

    # Step 2: find itemsets frequent inside the increment; any genuinely
    # new table entry must be among them (FUP argument above).
    if increment:
        local_threshold = min_count_for(keep_fraction, len(increment))
        if miner is None:
            local = apriori.mine_frequent_itemsets(
                increment,
                min_count=local_threshold,
                constraint=constraint,
                counter=counter,
                max_length=max_length,
            )
        else:
            local = miner(
                increment,
                min_count=local_threshold,
                constraint=constraint,
                max_length=max_length,
            )
        global_threshold = min_count_for(keep_fraction, new_size)
        for itemset in sorted(local, key=len):
            if itemset in table:
                continue
            total = count_itemset(index, itemset)
            if total >= global_threshold:
                table[itemset] = total
                report.added.append(itemset)

    # Step 3: prune entries that fell below the floor (|DB| grew).  The
    # floor is monotone in itemset size, so pruning preserves closure.
    floor = min_count_for(keep_fraction, new_size)
    for itemset in [itemset for itemset, count in table.items()
                    if count < floor]:
        del table[itemset]
        report.pruned.append(itemset)

    # An itemset added in step 2 might have a subset that was only kept
    # via step 2 as well; closure holds because apriori tables are closed
    # and counting is monotone.  Still, adds below the floor are a bug.
    for itemset in report.added:
        if itemset not in table:
            raise MaintenanceError(
                f"FUP added then pruned {itemset}; thresholds inconsistent")
    return report

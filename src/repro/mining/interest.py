"""Rule interestingness measures beyond support and confidence.

The paper ranks and filters rules purely by the two classic statistics.
Curators triaging recommendation queues usually want more
discriminating measures; this module implements the standard set over
the exact counts every :class:`~repro.core.rules.AssociationRule`
carries, plus the RHS count, which the caller supplies from the
annotation frequency table (a rule alone cannot know how often its RHS
occurs *without* its LHS).

All measures are pure functions of four integers: ``n`` (database
size), ``n_lhs``, ``n_rhs``, and ``n_both``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rules import AssociationRule
from repro.errors import MiningError


@dataclass(frozen=True, slots=True)
class RuleCounts:
    """The contingency counts every measure is computed from."""

    n: int
    n_lhs: int
    n_rhs: int
    n_both: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise MiningError(f"n must be >= 0, got {self.n}")
        if not 0 <= self.n_both <= min(self.n_lhs, self.n_rhs):
            raise MiningError(
                f"n_both={self.n_both} must be within "
                f"[0, min(n_lhs={self.n_lhs}, n_rhs={self.n_rhs})]")
        if max(self.n_lhs, self.n_rhs) > self.n:
            raise MiningError("marginals cannot exceed n")

    @classmethod
    def from_rule(cls, rule: AssociationRule, rhs_count: int
                  ) -> "RuleCounts":
        return cls(n=rule.db_size, n_lhs=rule.lhs_count,
                   n_rhs=rhs_count, n_both=rule.union_count)

    # -- base probabilities --------------------------------------------------

    @property
    def p_lhs(self) -> float:
        return self.n_lhs / self.n if self.n else 0.0

    @property
    def p_rhs(self) -> float:
        return self.n_rhs / self.n if self.n else 0.0

    @property
    def p_both(self) -> float:
        return self.n_both / self.n if self.n else 0.0

    @property
    def confidence(self) -> float:
        return self.n_both / self.n_lhs if self.n_lhs else 0.0


def lift(counts: RuleCounts) -> float:
    """P(LHS ∧ RHS) / (P(LHS)·P(RHS)); 1.0 == independence."""
    denominator = counts.p_lhs * counts.p_rhs
    return counts.p_both / denominator if denominator else 0.0


def leverage(counts: RuleCounts) -> float:
    """P(LHS ∧ RHS) − P(LHS)·P(RHS); 0.0 == independence."""
    return counts.p_both - counts.p_lhs * counts.p_rhs


def conviction(counts: RuleCounts) -> float:
    """P(LHS)·P(¬RHS) / P(LHS ∧ ¬RHS); ∞ for exceptionless rules."""
    violations = counts.confidence
    if violations >= 1.0:
        return math.inf
    return (1.0 - counts.p_rhs) / (1.0 - violations) \
        if (1.0 - violations) else math.inf


def chi_square(counts: RuleCounts) -> float:
    """Pearson chi-square of the 2x2 LHS/RHS contingency table.

    Per Chanda et al., the significance layer ranks rules by
    statistical strength rather than raw counts: with cells
    ``a = n_both``, ``b = n_lhs - a``, ``c = n_rhs - a`` and
    ``d = n - n_lhs - n_rhs + a``, the statistic is
    ``n(ad - bc)^2 / (n_lhs · n_rhs · (n - n_lhs) · (n - n_rhs))``.
    Degenerate tables (an empty margin) score 0.0 — no evidence of
    dependence either way.
    """
    n = counts.n
    a = counts.n_both
    b = counts.n_lhs - a
    c = counts.n_rhs - a
    d = n - counts.n_lhs - counts.n_rhs + a
    denominator = (counts.n_lhs * counts.n_rhs
                   * (n - counts.n_lhs) * (n - counts.n_rhs))
    if denominator == 0:
        return 0.0
    return n * (a * d - b * c) ** 2 / denominator


def p_value(counts: RuleCounts) -> float:
    """Upper-tail probability of :func:`chi_square` under independence.

    One degree of freedom, so the chi-square survival function reduces
    to ``erfc(sqrt(x/2))`` — smaller means stronger evidence that LHS
    and RHS are associated.
    """
    return math.erfc(math.sqrt(chi_square(counts) / 2.0))


def jaccard(counts: RuleCounts) -> float:
    """|LHS ∧ RHS| / |LHS ∨ RHS| — co-occurrence overlap."""
    union = counts.n_lhs + counts.n_rhs - counts.n_both
    return counts.n_both / union if union else 0.0


def kulczynski(counts: RuleCounts) -> float:
    """Mean of the two conditional probabilities (null-invariant)."""
    forward = counts.n_both / counts.n_lhs if counts.n_lhs else 0.0
    backward = counts.n_both / counts.n_rhs if counts.n_rhs else 0.0
    return (forward + backward) / 2.0


def imbalance_ratio(counts: RuleCounts) -> float:
    """|P(LHS) − P(RHS)| / P(LHS ∨ RHS) — skew of the two sides."""
    union = counts.n_lhs + counts.n_rhs - counts.n_both
    if union == 0:
        return 0.0
    return abs(counts.n_lhs - counts.n_rhs) / union


#: Name -> function registry for the ranking layer and the CLI.
MEASURES = {
    "lift": lift,
    "leverage": leverage,
    "conviction": conviction,
    "chi_square": chi_square,
    "p_value": p_value,
    "jaccard": jaccard,
    "kulczynski": kulczynski,
    "imbalance": imbalance_ratio,
}


def evaluate(rule: AssociationRule, rhs_count: int,
             measures: tuple[str, ...] = ("lift", "leverage", "conviction")
             ) -> dict[str, float]:
    """Named measures for one rule (``rhs_count`` from the frequency
    table)."""
    counts = RuleCounts.from_rule(rule, rhs_count)
    out: dict[str, float] = {}
    for name in measures:
        try:
            out[name] = MEASURES[name](counts)
        except KeyError:
            raise MiningError(
                f"unknown interestingness measure {name!r}; "
                f"choose from {sorted(MEASURES)}") from None
    return out

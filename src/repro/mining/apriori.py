"""Level-wise Apriori with the paper's candidate constraint hook.

This is the miner of the paper's Figure 3: breadth-first candidate
generation with hash-tree support counting, "modified … to introduce the
early elimination of any candidate patterns that didn't include at least
one annotation" — expressed here as a pluggable, supersets-stay-violated
:class:`~repro.mining.constraints.CandidateConstraint`.

The entry points return itemset -> exact count tables; rule derivation
is a separate, cheap step (:mod:`repro.core.derive`).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: counting needs no shared-memory machinery
    from repro.mining.pages import PagedBitmapIndex

from repro.errors import MiningError
from repro._util import min_count_for, validate_fraction
from repro.mining.bitmap import BitmapIndex
from repro.mining.constraints import (
    CandidateConstraint,
    MiningTask,
    UnrestrictedConstraint,
    constraint_for_task,
)
from repro.mining.hash_tree import HashTree
from repro.mining.itemsets import Itemset, Transaction, TransactionDatabase

#: Below this many candidates a direct scan beats building a hash tree.
_SCAN_THRESHOLD = 12

#: Every candidate-counting strategy a config may select.  ``"auto"``
#: picks scan or hashtree by candidate volume; ``"vertical"`` counts by
#: bitmap-tidset intersection (:mod:`repro.mining.bitmap`).
COUNTER_STRATEGIES = ("auto", "scan", "hashtree", "vertical")


def resolve_min_count(n_transactions: int,
                      min_support: float | None,
                      min_count: int | None) -> int:
    """Turn a fractional or absolute threshold into an absolute count."""
    if (min_support is None) == (min_count is None):
        raise MiningError(
            "exactly one of min_support / min_count must be given")
    if min_count is not None:
        if min_count < 1:
            raise MiningError(f"min_count must be >= 1, got {min_count}")
        return min_count
    validate_fraction(min_support, "min_support")
    return min_count_for(min_support, n_transactions)


def generate_candidates(previous_level: set[Itemset]) -> list[Itemset]:
    """Apriori-gen: join (k-1)-itemsets sharing a (k-2)-prefix, then prune.

    Every generated candidate has all of its (k-1)-subsets in
    ``previous_level``; the caller applies the candidate constraint.
    """
    by_prefix: dict[Itemset, list[int]] = {}
    for itemset in previous_level:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])

    candidates: list[Itemset] = []
    for prefix, tails in by_prefix.items():
        tails.sort()
        for first in range(len(tails)):
            for second in range(first + 1, len(tails)):
                candidate = prefix + (tails[first], tails[second])
                if _all_subsets_present(candidate, previous_level):
                    candidates.append(candidate)
    return candidates


def _all_subsets_present(candidate: Itemset,
                         previous_level: set[Itemset]) -> bool:
    # The two subsets formed by dropping one of the joined tail items are
    # the join parents and are present by construction; check the rest.
    for drop in range(len(candidate) - 2):
        subset = candidate[:drop] + candidate[drop + 1:]
        if subset not in previous_level:
            return False
    return True


def count_candidates(candidates: Sequence[Itemset],
                     transactions: Sequence[Transaction],
                     *,
                     counter: str = "auto",
                     index: "BitmapIndex | PagedBitmapIndex | None" = None,
                     ) -> dict[Itemset, int]:
    """Exact support counts for same-length candidates.

    ``counter`` selects the strategy: ``"hashtree"`` (paper default),
    ``"scan"`` (per-candidate containment scan), ``"vertical"`` (bitmap
    tidset intersection), or ``"auto"``.  For ``"vertical"``, ``index``
    may carry a prebuilt index over ``transactions`` so level-wise
    callers index the database once — a
    :class:`~repro.mining.bitmap.BitmapIndex` or any object with its
    ``count(itemset)`` query, such as the read-only
    :class:`~repro.mining.pages.PagedBitmapIndex` over shared-memory
    bitmap pages.
    """
    if not candidates:
        return {}
    if counter == "auto":
        counter = "scan" if len(candidates) <= _SCAN_THRESHOLD else "hashtree"
    if counter == "vertical":
        if index is None:
            index = BitmapIndex.from_transactions(transactions)
        return {candidate: index.count(candidate)
                for candidate in candidates}
    if counter == "hashtree":
        tree = HashTree(candidates)
        return tree.count_all(transactions)
    if counter == "scan":
        counts = dict.fromkeys(candidates, 0)
        candidate_sets = [(candidate, frozenset(candidate))
                          for candidate in candidates]
        for transaction in transactions:
            for candidate, needed in candidate_sets:
                if needed <= transaction:
                    counts[candidate] += 1
        return counts
    raise MiningError(f"unknown counter strategy {counter!r}; "
                      f"choose from {', '.join(COUNTER_STRATEGIES)}")


def mine_frequent_itemsets(transactions: Sequence[Transaction],
                           *,
                           min_support: float | None = None,
                           min_count: int | None = None,
                           constraint: CandidateConstraint | None = None,
                           counter: str = "auto",
                           max_length: int | None = None
                           ) -> dict[Itemset, int]:
    """All constraint-admitted itemsets with count >= the threshold.

    The returned table maps canonical itemsets to exact counts over the
    full transaction list and is downward closed under the constraint.
    """
    constraint = constraint if constraint is not None else UnrestrictedConstraint()
    threshold = resolve_min_count(len(transactions), min_support, min_count)
    projected = [constraint.project(transaction)
                 for transaction in transactions]
    # With the vertical counter, index the database once up front; every
    # level then counts candidates by bitmap intersection against it.
    index = (BitmapIndex.from_transactions(projected)
             if counter == "vertical" else None)

    item_counts: Counter[int] = Counter()
    for transaction in projected:
        item_counts.update(transaction)
    table: dict[Itemset, int] = {
        (item,): count
        for item, count in item_counts.items()
        if count >= threshold and constraint.admits_item(item)
    }

    level = set(table)
    length = 1
    while level and (max_length is None or length < max_length):
        length += 1
        candidates = [candidate
                      for candidate in generate_candidates(level)
                      if constraint.admits(candidate)]
        counts = count_candidates(candidates, projected, counter=counter,
                                  index=index)
        level = set()
        for candidate, count in counts.items():
            if count >= threshold:
                table[candidate] = count
                level.add(candidate)
    return table


def mine_task(database: TransactionDatabase,
              task: MiningTask,
              *,
              min_support: float | None = None,
              min_count: int | None = None,
              counter: str = "auto",
              max_length: int | None = None) -> dict[Itemset, int]:
    """Mine ``database`` under the candidate constraint of ``task``."""
    constraint = constraint_for_task(task, database.vocabulary)
    return mine_frequent_itemsets(
        database.transactions,
        min_support=min_support,
        min_count=min_count,
        constraint=constraint,
        counter=counter,
        max_length=max_length,
    )

"""Bottom-k (KMV) tidset sketches for approximate correlation serving.

Exact SON re-mining is seconds away at fig7-plus scale, so the serving
tier needs a read path that answers *now* and quantifies how wrong it
might be.  Following Santos et al. (*Correlation Sketches for
Approximate Join-Correlation Queries*), each item keeps the ``k``
smallest 64-bit hash values of its tidset — a bottom-k / K-Minimum-
Values sample.  Because every item hashes tids through the same
bijective mixer, the samples are *coordinated*: the same tid lands on
the same hash everywhere, so sample intersection witnesses real tidset
intersection and a multiway KMV estimator turns the witnesses into a
support estimate with a computable error bound.

Three properties the rest of the stack relies on:

* **Exact at small scale.**  The mixer is a bijection on 64-bit
  integers, so distinct tids never collide.  While an item's
  cardinality is <= ``k`` the sample *is* the tidset and every
  estimate degrades gracefully to an exact count with bound 0.
* **O(1) maintenance per (item, tid) delta.**  ``insert`` is a bounded
  insort; ``discard`` only rebuilds an item's sample when a sampled
  hash leaves a non-exhaustive sketch, which happens with probability
  ``k/n`` — amortized O(k log k) per delete.  This is what lets the
  engine keep sketches fresh on every ``apply_batch`` without ever
  re-mining.
* **Plain-data shipping.**  A sketch round-trips through
  ``to_payload``/``from_payload`` as sorted hash lists + cardinalities,
  so process-mode shard workers build sketches next to the bitmap
  substrate and send them back without pickling live objects.

Estimates are count-level (:class:`Estimate`) so shard-local answers
compose by summation (values and bounds both add, exactness AND-s);
:func:`combine_rule_estimate` then assembles support / confidence /
lift figures with propagated bounds from the summed counts.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Iterable, Mapping
from heapq import nsmallest
from dataclasses import dataclass
from statistics import NormalDist

from repro.errors import MiningError

_MASK64 = (1 << 64) - 1
_SCALE = float(1 << 64)

#: Default bottom-k sample size; 256 keeps per-item state under 2 KiB
#: while the 1/sqrt(k) relative error lands around 6%.
DEFAULT_SKETCH_K = 256

#: Default hash salt (any fixed odd constant works; exposed so shard
#: layouts that want decorrelated samples can vary it).
DEFAULT_SALT = 0x9E3779B97F4A7C15


def mix64(value: int, salt: int = DEFAULT_SALT) -> int:
    """SplitMix64 finalizer — a *bijection* on 64-bit integers.

    Bijectivity matters more than avalanche here: distinct tids can
    never collide, so an exhaustive sample is exactly the tidset and
    cross-item hash equality certifies tid equality.
    """
    x = (value + salt) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def z_score(confidence_level: float) -> float:
    """Two-sided normal quantile for a coverage target in (0, 1)."""
    if not 0.0 < confidence_level < 1.0:
        raise MiningError(
            f"confidence level must be in (0, 1), got {confidence_level}")
    return NormalDist().inv_cdf((1.0 + confidence_level) / 2.0)


@dataclass(frozen=True, slots=True)
class Estimate:
    """A point estimate with a symmetric error bound (same units)."""

    value: float
    bound: float
    exact: bool

    def __post_init__(self) -> None:
        if self.bound < 0.0:
            raise MiningError(f"bound must be >= 0, got {self.bound}")

    @classmethod
    def exactly(cls, value: float) -> "Estimate":
        return cls(value=value, bound=0.0, exact=True)


def sum_estimates(estimates: Iterable[Estimate]) -> Estimate:
    """Combine independent per-shard counts: values and bounds add."""
    value = bound = 0.0
    exact = True
    for estimate in estimates:
        value += estimate.value
        bound += estimate.bound
        exact = exact and estimate.exact
    return Estimate(value=value, bound=bound, exact=exact)


@dataclass(frozen=True, slots=True)
class RuleEstimate:
    """Approximate support/confidence/lift for one rule, with bounds."""

    support: float
    support_bound: float
    confidence: float
    confidence_bound: float
    lift: float
    lift_bound: float
    count: float
    exact: bool


def combine_rule_estimate(both: Estimate, lhs: Estimate, rhs_count: int,
                          db_size: int) -> RuleEstimate:
    """Assemble rule metrics from (possibly summed) count estimates.

    ``rhs_count`` is the *exact* RHS marginal (sketches track
    cardinalities exactly), so the lift denominator contributes no
    extra error; confidence propagates the ratio bound
    ``|d(a/b)| <= (da + (a/b)·db) / b``.
    """
    n = max(db_size, 0)
    support = both.value / n if n else 0.0
    support_bound = min(both.bound / n, 1.0) if n else 0.0
    lhs_floor = max(lhs.value, 1.0)
    confidence = min(both.value / lhs_floor, 1.0) if lhs.value > 0 else 0.0
    confidence_bound = min(
        (both.bound + confidence * lhs.bound) / lhs_floor, 1.0)
    p_rhs = rhs_count / n if n else 0.0
    lift = confidence / p_rhs if p_rhs else 0.0
    lift_bound = confidence_bound / p_rhs if p_rhs else 0.0
    return RuleEstimate(
        support=support, support_bound=support_bound,
        confidence=confidence, confidence_bound=confidence_bound,
        lift=lift, lift_bound=lift_bound,
        count=both.value, exact=both.exact and lhs.exact)


class TidsetSketch:
    """Bottom-k sample of one item's tidset + its exact cardinality."""

    __slots__ = ("_k", "_salt", "_hashes", "_members", "_cardinality")

    def __init__(self, k: int, salt: int = DEFAULT_SALT) -> None:
        if k < 8:
            raise MiningError(f"sketch k must be >= 8, got {k}")
        self._k = k
        self._salt = salt
        self._hashes: list[int] = []       # sorted ascending
        self._members: set[int] = set()    # same contents, O(1) lookup
        self._cardinality = 0

    @classmethod
    def from_tids(cls, tids: Iterable[int], k: int,
                  salt: int = DEFAULT_SALT) -> "TidsetSketch":
        sketch = cls(k, salt)
        sketch._rebuild(tids)
        return sketch

    # -- maintenance ---------------------------------------------------------

    def insert(self, tid: int) -> None:
        self._cardinality += 1
        value = mix64(tid, self._salt)
        if len(self._hashes) < self._k:
            insort(self._hashes, value)
            self._members.add(value)
        elif value < self._hashes[-1]:
            evicted = self._hashes.pop()
            self._members.discard(evicted)
            insort(self._hashes, value)
            self._members.add(value)

    def discard(self, tid: int, tids: Iterable[int] | None = None) -> None:
        """Remove ``tid``; ``tids`` is the *remaining* tidset, consulted
        only when a sampled hash leaves a non-exhaustive sketch (the
        bottom-k of the survivors is then unknowable from the sample
        alone and the sketch rebuilds in one sweep)."""
        was_exhaustive = self.is_exhaustive
        value = mix64(tid, self._salt)
        self._cardinality -= 1
        if value not in self._members:
            return  # sample unchanged: still the bottom-k of survivors
        if was_exhaustive:
            self._hashes.remove(value)
            self._members.discard(value)
            return
        if tids is None:
            raise MiningError(
                "discard of a sampled tid from a non-exhaustive sketch "
                "requires the remaining tidset to rebuild from")
        self._rebuild(tids)

    def _rebuild(self, tids: Iterable[int]) -> None:
        salt = self._salt
        hashes = [mix64(tid, salt) for tid in tids]
        self._cardinality = len(hashes)
        # nsmallest returns ascending order: O(n log k), not a full sort.
        self._hashes = nsmallest(self._k, hashes)
        self._members = set(self._hashes)

    # -- introspection -------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def is_exhaustive(self) -> bool:
        """True while the sample holds *every* tid's hash."""
        return self._cardinality <= self._k

    @property
    def max_hash(self) -> int:
        if not self._hashes:
            raise MiningError("empty sketch has no max hash")
        return self._hashes[-1]

    @property
    def sample(self) -> frozenset[int]:
        return frozenset(self._members)

    def __contains__(self, hash_value: int) -> bool:
        return hash_value in self._members

    def __len__(self) -> int:
        return len(self._hashes)

    # -- shipping ------------------------------------------------------------

    def to_payload(self) -> tuple[tuple[int, ...], int]:
        return tuple(self._hashes), self._cardinality

    @classmethod
    def from_payload(cls, payload: tuple[Iterable[int], int], k: int,
                     salt: int = DEFAULT_SALT) -> "TidsetSketch":
        hashes, cardinality = payload
        sketch = cls(k, salt)
        sketch._hashes = sorted(hashes)
        sketch._members = set(sketch._hashes)
        sketch._cardinality = cardinality
        if len(sketch._hashes) > k:
            raise MiningError(
                f"payload carries {len(sketch._hashes)} hashes for k={k}")
        if cardinality < len(sketch._hashes):
            raise MiningError(
                f"payload cardinality {cardinality} below sample size "
                f"{len(sketch._hashes)}")
        return sketch


class SketchIndex:
    """Item -> :class:`TidsetSketch` registry with KMV estimation.

    Mirrors the maintained item -> tidset map of
    :class:`~repro.core.annotation_index.VerticalIndex`: one sketch per
    live item, dropped when the item's last tid disappears.  All
    estimation happens at *count* level so shard-local indexes compose
    by summing (:func:`sum_estimates`).
    """

    __slots__ = ("_k", "_salt", "_sketches")

    def __init__(self, k: int = DEFAULT_SKETCH_K,
                 salt: int = DEFAULT_SALT) -> None:
        if k < 8:
            raise MiningError(f"sketch k must be >= 8, got {k}")
        self._k = k
        self._salt = salt
        self._sketches: dict[int, TidsetSketch] = {}

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Iterable[int]],
                     k: int = DEFAULT_SKETCH_K,
                     salt: int = DEFAULT_SALT) -> "SketchIndex":
        """One-sweep build alongside a bitmap substrate (item ->
        iterable of tids, e.g. ``VerticalIndex.as_mapping()``)."""
        index = cls(k, salt)
        for item, tids in mapping.items():
            sketch = TidsetSketch.from_tids(tids, k, salt)
            if sketch.cardinality:
                index._sketches[item] = sketch
        return index

    # -- maintenance (the VerticalIndex observer protocol) -------------------

    def on_add(self, item: int, tid: int) -> None:
        sketch = self._sketches.get(item)
        if sketch is None:
            sketch = self._sketches[item] = TidsetSketch(self._k, self._salt)
        sketch.insert(tid)

    def on_discard(self, item: int, tid: int,
                   tids: Iterable[int] | None = None) -> None:
        sketch = self._sketches.get(item)
        if sketch is None:
            return
        sketch.discard(tid, tids)
        if sketch.cardinality <= 0:
            del self._sketches[item]

    # -- introspection -------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def salt(self) -> int:
        return self._salt

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, item: int) -> bool:
        return item in self._sketches

    def items(self) -> list[int]:
        return sorted(self._sketches)

    def cardinality(self, item: int) -> int:
        """Exact tidset cardinality (sketches count inserts/deletes)."""
        sketch = self._sketches.get(item)
        return sketch.cardinality if sketch is not None else 0

    def sketch(self, item: int) -> TidsetSketch | None:
        return self._sketches.get(item)

    # -- estimation ----------------------------------------------------------

    def itemset_estimate(self, items: Iterable[int], *,
                         z: float = 2.0) -> Estimate:
        """Estimated ``|intersection of the items' tidsets|``.

        Exhaustive everywhere -> exact count, bound 0.  Otherwise the
        multiway KMV estimator: take tau = the smallest "full sample"
        threshold across the non-exhaustive sketches; every union
        element hashing <= tau is present in *some* sample (bottom-k
        property) and its membership in *every* set is decidable, so
        ``K = {h <= tau}`` is a valid bottom-|K| union sample.  Then
        ``U = (|K|-1)/norm(tau)`` estimates the union size,
        ``p = hits/|K|`` the intersection share, and the bound
        propagates the binomial error of ``p`` plus the 1/sqrt(|K|-2)
        relative error of ``U``.
        """
        sketches = []
        for item in items:
            sketch = self._sketches.get(item)
            if sketch is None or sketch.cardinality == 0:
                return Estimate.exactly(0.0)
            sketches.append(sketch)
        if not sketches:
            raise MiningError("itemset estimate requires at least one item")
        ceiling = float(min(s.cardinality for s in sketches))
        if all(s.is_exhaustive for s in sketches):
            count = len(frozenset.intersection(
                *(s.sample for s in sketches)))
            return Estimate.exactly(float(count))
        tau = min(s.max_hash for s in sketches if not s.is_exhaustive)
        union: set[int] = set()
        for sketch in sketches:
            union.update(h for h in sketch.sample if h <= tau)
        k_union = len(union)
        hits = sum(1 for h in union
                   if all(h in sketch for sketch in sketches))
        if k_union < 3:
            # Degenerate sample; answer with the witnesses and a bound
            # covering the whole feasible range.
            return Estimate(value=float(hits), bound=ceiling, exact=False)
        tau_norm = (tau + 1) / _SCALE
        union_size = (k_union - 1) / tau_norm
        share = hits / k_union
        value = min(share * union_size, ceiling)
        spread = (share * (1.0 - share) / k_union) ** 0.5
        bound = z * union_size * (spread + (k_union - 2) ** -0.5)
        return Estimate(value=value, bound=min(bound, ceiling), exact=False)

    def rule_estimate(self, lhs: Iterable[int], rhs: int, db_size: int, *,
                      z: float = 2.0) -> RuleEstimate:
        """Approximate support/confidence/lift of ``lhs -> rhs``."""
        lhs_items = tuple(lhs)
        both = self.itemset_estimate(lhs_items + (rhs,), z=z)
        lhs_estimate = self.itemset_estimate(lhs_items, z=z)
        return combine_rule_estimate(
            both, lhs_estimate, self.cardinality(rhs), db_size)

    # -- shipping ------------------------------------------------------------

    def to_payload(self) -> dict[int, tuple[tuple[int, ...], int]]:
        """Plain-data form (sorted hash tuples + cardinalities) for
        shipping from process-mode shard workers."""
        return {item: sketch.to_payload()
                for item, sketch in self._sketches.items()}

    @classmethod
    def from_payload(cls, payload: Mapping[int, tuple[Iterable[int], int]],
                     k: int = DEFAULT_SKETCH_K,
                     salt: int = DEFAULT_SALT) -> "SketchIndex":
        index = cls(k, salt)
        for item, entry in payload.items():
            sketch = TidsetSketch.from_payload(entry, k, salt)
            if sketch.cardinality:
                index._sketches[item] = sketch
        return index

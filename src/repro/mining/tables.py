"""Helpers for itemset-count tables.

A *table* is a plain ``dict`` mapping canonical itemsets to exact integer
counts.  Tables produced by the miners in this package are *downward
closed* under the active candidate constraint: every admitted subset of a
stored itemset is stored too (with a count at least as large).  That
closure is what makes the subset walks below complete, and it is checked
by :func:`check_downward_closure` in tests.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Set

from repro.mining.itemsets import Itemset, Transaction


def iter_table_subsets(table: Mapping[Itemset, int] | Set,
                       transaction: Transaction,
                       *,
                       required_items: frozenset[int] | None = None
                       ) -> Iterator[Itemset]:
    """Yield every table itemset contained in ``transaction``.

    Relies on downward closure: an itemset can only be in the table when
    its prefix (all but the largest item) is too, so a depth-first walk
    that extends only itemsets already found is exhaustive.

    When ``required_items`` is given, only itemsets containing at least
    one of those items are yielded (used to touch only patterns affected
    by a batch of newly added annotations) — the walk itself still visits
    unrequired prefixes, as required supersets may extend them.
    """
    items = sorted(transaction)

    def walk(prefix: Itemset, start: int, satisfied: bool) -> Iterator[Itemset]:
        if satisfied:
            yield prefix
        for position in range(start, len(items)):
            item = items[position]
            candidate = prefix + (item,)
            if candidate in table:
                hit = satisfied or required_items is None \
                    or item in required_items
                yield from walk(candidate, position + 1, hit)

    for position, item in enumerate(items):
        if (item,) in table:
            satisfied = required_items is None or item in required_items
            yield from walk((item,), position + 1, satisfied)


def increment_counts(table: dict[Itemset, int],
                     transaction: Transaction,
                     *,
                     required_items: frozenset[int] | None = None,
                     delta: int = 1,
                     touched_out: set[Itemset] | None = None) -> int:
    """Add ``delta`` to every table itemset contained in ``transaction``.

    Returns the number of table entries touched; with ``touched_out``,
    also collects their identities there (the dirty set consumed by the
    engine's scoped rule refresh).
    """
    touched = 0
    for itemset in iter_table_subsets(table, transaction,
                                      required_items=required_items):
        table[itemset] += delta
        touched += 1
        if touched_out is not None:
            touched_out.add(itemset)
    return touched


def level_partition(table: Mapping[Itemset, int]) -> dict[int, set[Itemset]]:
    """Group table itemsets by length (level)."""
    levels: dict[int, set[Itemset]] = {}
    for itemset in table:
        levels.setdefault(len(itemset), set()).add(itemset)
    return levels


def check_downward_closure(table: Mapping[Itemset, int],
                           admits=lambda itemset: True) -> list[str]:
    """Return closure violations (empty list == closed); test helper.

    Checks both containment (admitted subsets present) and monotonicity
    (subset counts are no smaller than superset counts).
    """
    problems: list[str] = []
    for itemset, count in table.items():
        if len(itemset) == 1:
            continue
        for drop in range(len(itemset)):
            subset = itemset[:drop] + itemset[drop + 1:]
            if not admits(subset):
                continue
            if subset not in table:
                problems.append(f"{subset} missing but {itemset} present")
            elif table[subset] < count:
                problems.append(
                    f"count({subset})={table[subset]} < count({itemset})={count}")
    return problems

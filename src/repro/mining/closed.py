"""Closed and maximal itemset filters, and rule compression.

Low support thresholds make the paper's Apriori "take magnitudes
longer" partly because of combinatorial redundancy: if ``{x, y}`` and
``{x, y, a}`` occur in exactly the same tuples, every subset-rule the
pair generates is implied by the triple.  These classic filters
post-process an itemset-count table:

* an itemset is **closed** when no strict superset has the same count;
* it is **maximal** when no strict superset is frequent at all.

``compress_rules`` uses closure to drop rules whose LHS can be extended
without changing either statistic — the standard minimal-generator
presentation, exposed in the CLI so curators read fewer, stronger rules.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.rules import AssociationRule, RuleSet
from repro.mining.itemsets import Itemset
from repro.mining.tables import level_partition


def closed_itemsets(table: Mapping[Itemset, int]) -> dict[Itemset, int]:
    """The closed subsets of a (downward-closed) itemset-count table.

    An entry survives when every stored immediate superset has a
    strictly smaller count.  On a closed table that is equivalent to
    checking all supersets, because counts are monotone.
    """
    levels = level_partition(table)
    out: dict[Itemset, int] = {}
    for itemset, count in table.items():
        supersets = levels.get(len(itemset) + 1, ())
        itemset_set = set(itemset)
        is_closed = True
        for superset in supersets:
            if itemset_set < set(superset) and table[superset] == count:
                is_closed = False
                break
        if is_closed:
            out[itemset] = count
    return out


def maximal_itemsets(table: Mapping[Itemset, int]) -> dict[Itemset, int]:
    """Entries with no frequent strict superset in the table."""
    levels = level_partition(table)
    out: dict[Itemset, int] = {}
    for itemset, count in table.items():
        supersets = levels.get(len(itemset) + 1, ())
        itemset_set = set(itemset)
        if not any(itemset_set < set(superset) for superset in supersets):
            out[itemset] = count
    return out


def compression_ratio(table: Mapping[Itemset, int]) -> float:
    """|closed| / |all| — how much redundancy closure removes."""
    if not table:
        return 1.0
    return len(closed_itemsets(table)) / len(table)


def compress_rules(rules: RuleSet | Iterable[AssociationRule]
                   ) -> list[AssociationRule]:
    """Keep one representative per (RHS, statistics) equivalence class.

    Two rules with the same kind, RHS, confidence-counts and
    union-counts where one LHS contains the other say the same thing;
    the shorter LHS (the minimal generator) is kept.  Deterministic:
    ties break on the canonical LHS ordering.
    """
    rules = list(rules)
    by_class: dict[tuple, list[AssociationRule]] = {}
    for rule in rules:
        key = (rule.kind, rule.rhs, rule.union_count, rule.lhs_count)
        by_class.setdefault(key, []).append(rule)

    kept: list[AssociationRule] = []
    for bucket in by_class.values():
        bucket.sort(key=lambda rule: (len(rule.lhs), rule.lhs))
        representatives: list[AssociationRule] = []
        for rule in bucket:
            lhs_set = set(rule.lhs)
            if any(set(shorter.lhs) <= lhs_set
                   for shorter in representatives):
                continue  # implied by an already-kept shorter LHS
            representatives.append(rule)
        kept.extend(representatives)
    kept.sort(key=lambda rule: (rule.kind.value, rule.lhs, rule.rhs))
    return kept

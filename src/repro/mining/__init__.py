"""Frequent-itemset mining substrate (Apriori, Eclat, FP-growth, FUP)."""

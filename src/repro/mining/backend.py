"""Pluggable mining backends behind one protocol.

The engine never calls a miner directly; it talks to a
:class:`MiningBackend`, which owns both halves of the incremental
lifecycle:

* :meth:`MiningBackend.mine_initial` — the from-scratch pass that
  builds the frequent-pattern table;
* :meth:`MiningBackend.apply_increment` — FUP-style exact maintenance
  of that table under a batch of inserted transactions.

All backends maintain the identical table contract — every
constraint-admitted itemset at or above the floor, with its exact
count — so they are interchangeable under the engine's
``signature()``-equivalence checks.  The FUP argument (see
:mod:`repro.mining.fup`) is miner-agnostic: the only backend-specific
step is *which* algorithm enumerates the itemsets frequent within the
increment, so each backend routes that local search through its own
miner.

Backends register under a short name (``"apriori-fup"``, ``"eclat"``,
``"fpgrowth"``) so configuration can select them by string; third
parties may add their own via :func:`register_backend`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.errors import MiningError
from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.bitmap import BitTidset
from repro.mining.constraints import CandidateConstraint
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.fpgrowth import mine_frequent_itemsets_fp
from repro.mining.fup import FupReport, fup_update
from repro.mining.itemsets import Itemset, Transaction

#: Registry default — the paper's own pipeline.
DEFAULT_BACKEND = "apriori-fup"


@runtime_checkable
class MiningBackend(Protocol):
    """What the engine requires of a mining strategy."""

    #: Registry name, echoed in configs, snapshots and reports.
    name: str

    def mine_initial(self,
                     transactions: Sequence[Transaction],
                     *,
                     min_count: int,
                     constraint: CandidateConstraint,
                     max_length: int | None = None,
                     counter: str = "auto") -> dict[Itemset, int]:
        """From-scratch pass: every admitted itemset with count >= floor."""
        ...

    def apply_increment(self,
                        table: dict[Itemset, int],
                        increment: Sequence[Transaction],
                        *,
                        index: Mapping[int, "set[int] | frozenset[int] | BitTidset"],
                        new_size: int,
                        keep_fraction: float,
                        constraint: CandidateConstraint,
                        max_length: int | None = None,
                        counter: str = "auto") -> FupReport:
        """Exact in-place table maintenance for an insert batch."""
        ...


class AprioriFupBackend:
    """The paper's pipeline: modified Apriori + classic FUP (default)."""

    name = DEFAULT_BACKEND

    def mine_initial(self, transactions, *, min_count, constraint,
                     max_length=None, counter="auto"):
        return mine_frequent_itemsets(
            transactions,
            min_count=min_count,
            constraint=constraint,
            counter=counter,
            max_length=max_length,
        )

    def apply_increment(self, table, increment, *, index, new_size,
                        keep_fraction, constraint, max_length=None,
                        counter="auto"):
        return fup_update(
            table, increment,
            index=index,
            new_size=new_size,
            keep_fraction=keep_fraction,
            constraint=constraint,
            max_length=max_length,
            counter=counter,
        )


class _FupOverLocalMiner:
    """Shared FUP skeleton for backends that swap the local miner."""

    name = "abstract"

    def _mine(self, transactions, *, min_count, constraint, max_length):
        raise NotImplementedError

    def _reject_counter(self, counter: str) -> None:
        # The horizontal counter strategies select an Apriori counting
        # structure; honouring them here is impossible, and silently
        # ignoring the knob would let a config lie about what ran.
        # "vertical" is these backends' native mode — tidset/bitmap
        # intersections — so it (like "auto") passes through.
        if counter not in ("auto", "vertical"):
            raise MiningError(
                f"backend {self.name!r} does not support counter="
                f"{counter!r}; only the apriori-fup backend honours the "
                f"horizontal counter strategies")

    def mine_initial(self, transactions, *, min_count, constraint,
                     max_length=None, counter="auto"):
        self._reject_counter(counter)
        return self._mine(transactions, min_count=min_count,
                          constraint=constraint, max_length=max_length)

    def apply_increment(self, table, increment, *, index, new_size,
                        keep_fraction, constraint, max_length=None,
                        counter="auto"):
        self._reject_counter(counter)
        return fup_update(
            table, increment,
            index=index,
            new_size=new_size,
            keep_fraction=keep_fraction,
            constraint=constraint,
            max_length=max_length,
            counter=counter,
            miner=self._mine,
        )


class EclatBackend(_FupOverLocalMiner):
    """Vertical (tidset-intersection) mining; FUP over the Eclat miner."""

    name = "eclat"

    def _mine(self, transactions, *, min_count, constraint, max_length):
        return mine_frequent_itemsets_vertical(
            transactions, min_count=min_count, constraint=constraint,
            max_length=max_length)


class FPGrowthBackend(_FupOverLocalMiner):
    """Pattern-growth mining; FUP over the FP-growth miner."""

    name = "fpgrowth"

    def _mine(self, transactions, *, min_count, constraint, max_length):
        return mine_frequent_itemsets_fp(
            transactions, min_count=min_count, constraint=constraint,
            max_length=max_length)


_REGISTRY: dict[str, Callable[[], MiningBackend]] = {}


def register_backend(name: str, factory: Callable[[], MiningBackend],
                     *, replace: bool = False) -> None:
    """Expose ``factory`` under ``name`` for configs to select."""
    if not replace and name in _REGISTRY:
        raise MiningError(f"mining backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (for help texts and errors)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> MiningBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise MiningError(
            f"unknown mining backend {name!r}; available: {known}") from None
    backend = factory()
    if not isinstance(backend, MiningBackend):
        raise MiningError(
            f"backend factory for {name!r} produced {backend!r}, which "
            f"does not satisfy the MiningBackend protocol")
    return backend


register_backend(AprioriFupBackend.name, AprioriFupBackend)
register_backend(EclatBackend.name, EclatBackend)
register_backend(FPGrowthBackend.name, FPGrowthBackend)

"""``python -m repro`` — dispatch to a sub-command.

``serve`` starts the HTTP serving tier; ``journal`` / ``recover`` /
``rebalance`` are the offline durability operations on a journal
store; anything else goes to the interactive menu application (the
paper's Figure 5 CLI), preserving its existing argument surface.
"""

import sys

_OPS_COMMANDS = ("journal", "recover", "rebalance")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from repro.server.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] in _OPS_COMMANDS:
        from repro.app.ops_cli import main as ops_main
        return ops_main(argv)
    from repro.app.cli import main as app_main
    return app_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

"""The dataset file format of the paper's Figure 4.

One tuple per line: whitespace-separated opaque tokens, where data
values are plain ids and annotations are recognized by a configurable
prefix (``Annot_`` in the paper)::

    28 85 17 Annot_4 Annot_5
    28 85 3
    41 12 17 Annot_1

Data values keep their order (they are positional attributes);
annotations are a set.  Blank lines and ``#`` comments are skipped.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator

from repro.errors import FormatError
from repro.relation.relation import AnnotatedRelation

DEFAULT_ANNOTATION_PREFIX = "Annot_"

#: ``(data_values, annotation_ids)`` as parsed from one dataset line.
ParsedRow = tuple[tuple[str, ...], tuple[str, ...]]


def parse_line(line: str, *,
               annotation_prefix: str = DEFAULT_ANNOTATION_PREFIX,
               line_number: int | None = None) -> ParsedRow:
    """Split one dataset line into data values and annotation ids."""
    tokens = line.split()
    values = tuple(token for token in tokens
                   if not token.startswith(annotation_prefix))
    annotations = tuple(token for token in tokens
                        if token.startswith(annotation_prefix))
    if not values:
        raise FormatError("dataset line has no data values",
                          line_number=line_number, line=line)
    return values, annotations


def iter_rows(lines: Iterable[str], *,
              annotation_prefix: str = DEFAULT_ANNOTATION_PREFIX
              ) -> Iterator[ParsedRow]:
    """Parse an iterable of dataset lines, skipping blanks and comments."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_line(line, annotation_prefix=annotation_prefix,
                         line_number=line_number)


def read_dataset(source: str | os.PathLike | io.TextIOBase |
                 Iterable[str], *,
                 annotation_prefix: str = DEFAULT_ANNOTATION_PREFIX,
                 relation: AnnotatedRelation | None = None
                 ) -> AnnotatedRelation:
    """Load a Figure 4 dataset file into an annotated relation.

    ``source`` may be a path, an open text stream, or an iterable of
    lines.  Rows may have varying arity (the format is schema-less).
    """
    relation = relation if relation is not None else AnnotatedRelation()
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            for values, annotations in iter_rows(
                    handle, annotation_prefix=annotation_prefix):
                relation.insert(values, annotations)
        return relation
    for values, annotations in iter_rows(
            source, annotation_prefix=annotation_prefix):
        relation.insert(values, annotations)
    return relation


def format_row(values: Iterable[str], annotations: Iterable[str]) -> str:
    """One dataset line: values in order, then sorted annotations."""
    parts = [str(value) for value in values]
    parts += sorted(str(annotation) for annotation in annotations)
    return " ".join(parts)


def write_dataset(relation: AnnotatedRelation,
                  destination: str | os.PathLike | io.TextIOBase) -> int:
    """Write all live tuples; returns the number of lines written."""
    lines = [format_row(row.values, row.annotation_ids)
             for row in relation]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)

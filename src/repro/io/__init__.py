"""Readers/writers for the paper's file formats (Figures 4, 7, 9, 14)."""

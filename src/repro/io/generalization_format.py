"""The generalization-rules file of the paper's Figure 9.

Concrete grammar (the paper's figure shows the id-mapping style; the
keyword style implements its "Invalid / wrong / incorrect ->
Invalidation" example from section 4.1)::

    # label <= sources
    Annot_X <= Annot_1 | Annot_5
    Invalidation <= text has "invalid" "wrong" "incorrect"
    Versioning <= text ~ "v[0-9]+"
    Provenance <= category = lineage

    # optional hierarchy section: child -> parent
    [hierarchy]
    Invalidation -> QualityIssue
    Correction -> QualityIssue
"""

from __future__ import annotations

import io
import os
import re
from collections.abc import Iterable

from repro.errors import FormatError
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    CategoryMatcher,
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
    KeywordMatcher,
    Matcher,
    RegexMatcher,
)

_QUOTED = re.compile(r'"([^"]*)"')


def _parse_matcher(source: str, line_number: int, line: str) -> Matcher:
    source = source.strip()
    if source.startswith("text has"):
        keywords = _QUOTED.findall(source[len("text has"):])
        if not keywords:
            raise FormatError("'text has' needs quoted keywords",
                              line_number=line_number, line=line)
        return KeywordMatcher(frozenset(keywords))
    if source.startswith("text ~"):
        patterns = _QUOTED.findall(source[len("text ~"):])
        if len(patterns) != 1:
            raise FormatError("'text ~' needs exactly one quoted regex",
                              line_number=line_number, line=line)
        return RegexMatcher(patterns[0])
    if source.startswith("category"):
        _, _, category = source.partition("=")
        category = category.strip()
        if not category:
            raise FormatError("'category =' needs a category name",
                              line_number=line_number, line=line)
        return CategoryMatcher(category)
    annotation_ids = [token.strip() for token in source.split("|")]
    if not all(annotation_ids):
        raise FormatError("empty annotation id in id list",
                          line_number=line_number, line=line)
    return IdMatcher(frozenset(annotation_ids))


def parse_generalization_rules(source: str | os.PathLike | io.TextIOBase |
                               Iterable[str]
                               ) -> tuple[GeneralizationRuleSet,
                                          ConceptHierarchy | None]:
    """Parse a Figure 9 file into (rules, optional hierarchy)."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            return parse_generalization_rules(list(handle))

    rules = GeneralizationRuleSet()
    hierarchy: ConceptHierarchy | None = None
    in_hierarchy = False
    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower() == "[hierarchy]":
            in_hierarchy = True
            hierarchy = ConceptHierarchy()
            continue
        if in_hierarchy:
            child, arrow, parent = line.partition("->")
            if not arrow or not child.strip() or not parent.strip():
                raise FormatError("hierarchy lines are 'child -> parent'",
                                  line_number=line_number, line=line)
            assert hierarchy is not None
            hierarchy.add_edge(child.strip(), parent.strip())
            continue
        label, arrow, matcher_source = line.partition("<=")
        if not arrow or not label.strip() or not matcher_source.strip():
            raise FormatError("rule lines are 'label <= sources'",
                              line_number=line_number, line=line)
        matcher = _parse_matcher(matcher_source, line_number, line)
        rules.add(GeneralizationRule(label.strip(), matcher))
    return rules, hierarchy


def write_generalization_rules(rules: GeneralizationRuleSet,
                               destination: str | os.PathLike |
                               io.TextIOBase,
                               hierarchy: ConceptHierarchy | None = None
                               ) -> int:
    """Write rules (and hierarchy) back in the Figure 9 grammar."""
    lines = [rule.describe() for rule in rules]
    if hierarchy is not None and hierarchy.labels():
        lines.append("[hierarchy]")
        lines.extend(_direct_edges(hierarchy))
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def _direct_edges(hierarchy: ConceptHierarchy) -> list[str]:
    edges = []
    graph = hierarchy._graph  # same package boundary: io renders internals
    for child, parent in sorted(graph.edges):
        edges.append(f"{child} -> {parent}")
    return edges

"""The association-rules output file of the paper's Figure 7.

One rule per line, LHS tokens, an arrow, the RHS annotation, then
confidence and support (the paper's example reads "the presence of IDs
28 and 85 indicate the presence of Annot_1 with a confidence of 0.9659
and a support value of 0.4194")::

    28 85 ==> Annot_1, 0.9659, 0.4194

Writing is lossy by design (floats are rounded to four digits, exactly
as the paper's output shows); :func:`parse_rules` reads the textual
form back for round-trip and diffing tools.
"""

from __future__ import annotations

import io
import os
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.rules import AssociationRule, RuleSet
from repro.errors import FormatError
from repro.mining.itemsets import ItemVocabulary

_RULE_LINE = re.compile(
    r"^(?P<lhs>.+?)\s*==>\s*(?P<rhs>\S+)\s*,\s*"
    r"(?P<confidence>[0-9.]+)\s*,\s*(?P<support>[0-9.]+)\s*$")


@dataclass(frozen=True, slots=True)
class ParsedRule:
    """The textual form of one output rule."""

    lhs_tokens: tuple[str, ...]
    rhs_token: str
    confidence: float
    support: float


def format_rule(rule: AssociationRule, vocabulary: ItemVocabulary) -> str:
    """Figure 7 line for one rule."""
    return rule.render(vocabulary)


def write_rules(rules: RuleSet | Iterable[AssociationRule],
                vocabulary: ItemVocabulary,
                destination: str | os.PathLike | io.TextIOBase) -> int:
    """Write rules in deterministic order; returns lines written."""
    if isinstance(rules, RuleSet):
        ordered = rules.sorted_rules()
    else:
        ordered = sorted(rules, key=lambda rule: (rule.kind.value,
                                                  rule.lhs, rule.rhs))
    lines = [format_rule(rule, vocabulary) for rule in ordered]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def parse_rule_line(line: str, *,
                    line_number: int | None = None) -> ParsedRule:
    match = _RULE_LINE.match(line.strip())
    if match is None:
        raise FormatError("unparseable rule line",
                          line_number=line_number, line=line)
    lhs_tokens = tuple(sorted(match.group("lhs").split()))
    try:
        confidence = float(match.group("confidence"))
        support = float(match.group("support"))
    except ValueError as exc:  # pragma: no cover - regex keeps digits only
        raise FormatError(f"bad rule statistics: {exc}",
                          line_number=line_number, line=line) from exc
    for name, value in (("confidence", confidence), ("support", support)):
        if not 0.0 <= value <= 1.0:
            raise FormatError(f"{name} {value} outside [0, 1]",
                              line_number=line_number, line=line)
    return ParsedRule(lhs_tokens=lhs_tokens,
                      rhs_token=match.group("rhs"),
                      confidence=confidence,
                      support=support)


def parse_rules(source: str | os.PathLike | io.TextIOBase | Iterable[str]
                ) -> Iterator[ParsedRule]:
    """Parse a Figure 7 rules file (path, stream, or lines)."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            yield from parse_rules(handle)
        return
    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_rule_line(line, line_number=line_number)

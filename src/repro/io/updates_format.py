"""The annotation-update batch file of the paper's Figure 14.

One ``tid: annotation`` pair per line — "the number to the left of the
colon represents which record is to be modified, and the annotation to
the right of the colon is the new annotation being added"::

    150: Annot_3
    7: Annot_1

The same format serves the removal extension (``read_removals``).
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator

from repro.core.events import AddAnnotations, RemoveAnnotations
from repro.errors import FormatError


def _iter_pairs(source: Iterable[str]) -> Iterator[tuple[int, str]]:
    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tid_text, colon, annotation_id = line.partition(":")
        annotation_id = annotation_id.strip()
        if not colon or not annotation_id:
            raise FormatError("update lines are 'tid: annotation'",
                              line_number=line_number, line=line)
        try:
            tid = int(tid_text.strip())
        except ValueError:
            raise FormatError(f"bad tuple id {tid_text.strip()!r}",
                              line_number=line_number, line=line) from None
        if tid < 0:
            raise FormatError(f"tuple id must be >= 0, got {tid}",
                              line_number=line_number, line=line)
        if " " in annotation_id:
            raise FormatError("annotation ids cannot contain spaces",
                              line_number=line_number, line=line)
        yield tid, annotation_id


def read_pairs(source: str | os.PathLike | io.TextIOBase | Iterable[str]
               ) -> list[tuple[int, str]]:
    """All ``(tid, annotation_id)`` pairs from a Figure 14 file."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            return list(_iter_pairs(handle))
    return list(_iter_pairs(source))


def read_updates(source: str | os.PathLike | io.TextIOBase | Iterable[str]
                 ) -> AddAnnotations:
    """Parse a Figure 14 file into a Case 3 δ batch event."""
    return AddAnnotations.build(read_pairs(source))


def read_removals(source: str | os.PathLike | io.TextIOBase | Iterable[str]
                  ) -> RemoveAnnotations:
    """Parse the same format into the removal extension's event."""
    return RemoveAnnotations.build(read_pairs(source))


def write_updates(event: AddAnnotations | RemoveAnnotations,
                  destination: str | os.PathLike | io.TextIOBase) -> int:
    """Write an annotation batch back in the Figure 14 format."""
    pairs = (event.additions if isinstance(event, AddAnnotations)
             else event.removals)
    lines = [f"{tid}: {annotation_id}" for tid, annotation_id in pairs]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)

"""Small internal helpers shared across subsystems."""

from __future__ import annotations

import math
import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InvalidThresholdError

#: Tolerance used when comparing fractional thresholds computed from
#: integer counts.  Both the from-scratch miner and the incremental
#: maintenance path use the same helpers below, so thresholding is applied
#: identically on both sides of every equivalence check.
EPSILON = 1e-9


def validate_fraction(value: float, name: str) -> float:
    """Validate that ``value`` is a usable threshold in ``(0, 1]``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidThresholdError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or not 0.0 < value <= 1.0:
        raise InvalidThresholdError(
            f"{name} must be in (0, 1], got {value!r}"
        )
    return float(value)


def min_count_for(fraction: float, total: int) -> int:
    """Smallest integer count whose ratio to ``total`` is >= ``fraction``.

    ``count / total >= fraction`` for integer counts is equivalent to
    ``count >= ceil(fraction * total)`` up to floating point noise, which
    :data:`EPSILON` absorbs.  A minimum of 1 is enforced so empty patterns
    never count as frequent.
    """
    if total <= 0:
        return 1
    return max(1, math.ceil(fraction * total - EPSILON))


def meets_fraction(numerator: int, denominator: int, fraction: float) -> bool:
    """Check ``numerator / denominator >= fraction`` without division noise."""
    if denominator <= 0:
        return False
    return numerator >= fraction * denominator - EPSILON


def sorted_tuple(items: Iterable[int]) -> tuple[int, ...]:
    """Canonical (sorted, deduplicated) tuple form of an itemset."""
    return tuple(sorted(set(items)))


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer used by maintenance reports."""

    elapsed: float = 0.0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            return self.elapsed
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed


@contextmanager
def timed():
    """Context manager yielding a stopwatch that is running inside the block."""
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        watch.stop()

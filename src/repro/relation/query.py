"""Annotation-propagating relational algebra.

The paper's related work (§2.1) surveys annotation management systems
that "extend SQL with new commands and clauses" so that annotations
flow through queries — the pSQL/DBNotes model: a selection keeps the
annotations of the tuples it keeps, a projection keeps the annotations
anchored to surviving cells (plus row-level ones), and a join unions
the annotations of the joined tuples.  This module implements that
propagation semantics over :class:`AnnotatedRelation` so the library is
usable as the annotation-management substrate those systems provide,
not only as a miner.

Operators return *new* relations; inputs are never mutated.  Provenance
of every output tuple (the input tids it came from) is returned
alongside, because the exploitation layer can push recommendations back
through it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema
from repro.relation.tuples import AnchorScope

#: Predicate over a tuple's values, e.g. ``lambda row: row[0] == "28"``.
RowPredicate = Callable[[tuple[str, ...]], bool]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """An output relation plus per-tuple provenance.

    ``provenance[out_tid]`` is the tuple of input tids that produced
    the output tuple (one tid for select/project, two for join).
    """

    relation: AnnotatedRelation
    provenance: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.relation)


def _copy_registry(source: AnnotatedRelation,
                   target: AnnotatedRelation) -> None:
    for annotation in source.registry:
        target.registry.register(annotation)


def select(relation: AnnotatedRelation,
           predicate: RowPredicate,
           *, name: str | None = None) -> QueryResult:
    """σ — keep tuples satisfying ``predicate`` with all annotations.

    Propagation: every annotation of a surviving tuple survives with
    its anchor (selection does not change the tuple's shape).
    """
    out = AnnotatedRelation(relation.schema,
                            name=name or f"select({relation.name})")
    _copy_registry(relation, out)
    provenance: list[tuple[int, ...]] = []
    for row in relation:
        if not predicate(row.values):
            continue
        new_tid = out.insert(row.values)
        for annotation_id, anchor in row.annotations.items():
            out.annotate(new_tid, annotation_id, anchor)
        out.set_labels(new_tid, row.labels)
        provenance.append((row.tid,))
    return QueryResult(out, tuple(provenance))


def project(relation: AnnotatedRelation,
            columns: Sequence[int],
            *, name: str | None = None,
            distinct: bool = False) -> QueryResult:
    """π — keep a subset of columns.

    Propagation (pSQL semantics): row-anchored annotations always
    survive; cell-anchored annotations survive only when their column
    survives, re-anchored to the column's new position.  With
    ``distinct=True``, duplicate output rows are merged and their
    annotation sets unioned — the "union of annotations of duplicate
    answers" rule of annotation-propagating query systems.
    """
    if not columns:
        raise SchemaError("projection needs at least one column")
    arity = (relation.schema.arity if relation.schema is not None
             else None)
    for column in columns:
        if column < 0 or (arity is not None and column >= arity):
            raise SchemaError(f"projection column {column} out of range")

    new_schema = None
    if relation.schema is not None:
        new_schema = Schema([relation.schema.attributes[column].name
                             for column in columns])
    out = AnnotatedRelation(new_schema,
                            name=name or f"project({relation.name})")
    _copy_registry(relation, out)

    position_of = {column: position
                   for position, column in enumerate(columns)}
    provenance: list[tuple[int, ...]] = []
    merged: dict[tuple[str, ...], int] = {}

    for row in relation:
        try:
            values = tuple(row.values[column] for column in columns)
        except IndexError:
            raise SchemaError(
                f"tuple {row.tid} has arity {len(row.values)}; cannot "
                f"project column {max(columns)}") from None
        if distinct and values in merged:
            new_tid = merged[values]
            provenance[new_tid] = provenance[new_tid] + (row.tid,)
        else:
            new_tid = out.insert(values)
            provenance.append((row.tid,))
            if distinct:
                merged[values] = new_tid
        for annotation_id, anchor in row.annotations.items():
            if anchor.scope is AnchorScope.ROW:
                out.annotate(new_tid, annotation_id)
            elif anchor.scope is AnchorScope.CELL \
                    and anchor.column in position_of:
                from repro.relation.tuples import AnnotationAnchor
                out.annotate(new_tid, annotation_id,
                             AnnotationAnchor.cell(
                                 position_of[anchor.column]))
        out.add_labels(new_tid, row.labels)
    return QueryResult(out, tuple(provenance))


def join(left: AnnotatedRelation,
         right: AnnotatedRelation,
         on: tuple[int, int],
         *, name: str | None = None) -> QueryResult:
    """⋈ — equi-join on ``left[on[0]] == right[on[1]]``.

    Propagation: an output tuple carries the union of both inputs'
    annotations (re-anchored: right cell anchors shift by the left
    arity).  This is how "exchanged knowledge from different users"
    meets across relations in the paper's motivating scenario.
    """
    left_column, right_column = on
    new_schema = None
    if left.schema is not None and right.schema is not None:
        names = [attribute.name for attribute in left.schema.attributes]
        for attribute in right.schema.attributes:
            candidate = attribute.name
            while candidate in names:
                candidate = f"{candidate}_r"
            names.append(candidate)
        new_schema = Schema(names)
    out = AnnotatedRelation(new_schema,
                            name=name or f"join({left.name},{right.name})")
    _copy_registry(left, out)
    _copy_registry(right, out)

    from repro.relation.tuples import AnnotationAnchor

    by_key: dict[str, list] = {}
    for row in right:
        if right_column >= len(row.values):
            raise SchemaError(
                f"right tuple {row.tid} has no column {right_column}")
        by_key.setdefault(row.values[right_column], []).append(row)

    provenance: list[tuple[int, ...]] = []
    for left_row in left:
        if left_column >= len(left_row.values):
            raise SchemaError(
                f"left tuple {left_row.tid} has no column {left_column}")
        for right_row in by_key.get(left_row.values[left_column], ()):
            new_tid = out.insert(left_row.values + right_row.values)
            for annotation_id, anchor in left_row.annotations.items():
                out.annotate(new_tid, annotation_id, anchor)
            for annotation_id, anchor in right_row.annotations.items():
                if anchor.scope is AnchorScope.CELL:
                    shifted = AnnotationAnchor.cell(
                        anchor.column + len(left_row.values))
                    out.annotate(new_tid, annotation_id, shifted)
                else:
                    out.annotate(new_tid, annotation_id)
            out.add_labels(new_tid,
                           left_row.labels | right_row.labels)
            provenance.append((left_row.tid, right_row.tid))
    return QueryResult(out, tuple(provenance))


def union(left: AnnotatedRelation,
          right: AnnotatedRelation,
          *, name: str | None = None,
          distinct: bool = True) -> QueryResult:
    """∪ — append both inputs; duplicates merge annotation sets.

    With ``distinct=True`` (bag-to-set semantics), equal rows from the
    two inputs become one output tuple annotated with the union of
    both sides' annotations.
    """
    if left.schema is not None and right.schema is not None \
            and left.schema != right.schema:
        raise SchemaError("union requires identical schemas")
    out = AnnotatedRelation(left.schema or right.schema,
                            name=name or f"union({left.name},{right.name})")
    _copy_registry(left, out)
    _copy_registry(right, out)

    provenance: list[tuple[int, ...]] = []
    merged: dict[tuple[str, ...], int] = {}

    def absorb(relation: AnnotatedRelation) -> None:
        for row in relation:
            if distinct and row.values in merged:
                new_tid = merged[row.values]
                provenance[new_tid] = provenance[new_tid] + (row.tid,)
            else:
                new_tid = out.insert(row.values)
                provenance.append((row.tid,))
                if distinct:
                    merged[row.values] = new_tid
            for annotation_id, anchor in row.annotations.items():
                out.annotate(new_tid, annotation_id, anchor)
            out.add_labels(new_tid, row.labels)

    absorb(left)
    absorb(right)
    return QueryResult(out, tuple(provenance))

"""Annotated relational storage substrate (Definition 4.1)."""

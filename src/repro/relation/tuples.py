"""Tuples of an annotated relation and annotation anchoring.

Definition 4.1 of the paper attaches a variable number of annotations to
each tuple.  The related-work section notes that annotation systems also
anchor annotations to single cells or whole columns; the
:class:`AnnotationAnchor` captures all three scopes.  Mining operates on
the row projection (cell anchors contribute to their row; column anchors
are relation-level and handled by :class:`~repro.relation.relation.AnnotatedRelation`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class AnchorScope(enum.Enum):
    """What part of the relation an annotation attachment refers to."""

    ROW = "row"
    CELL = "cell"
    COLUMN = "column"


@dataclass(frozen=True, slots=True)
class AnnotationAnchor:
    """Where an annotation is attached."""

    scope: AnchorScope = AnchorScope.ROW
    column: int | None = None

    def __post_init__(self) -> None:
        needs_column = self.scope in (AnchorScope.CELL, AnchorScope.COLUMN)
        if needs_column and self.column is None:
            raise SchemaError(f"{self.scope.value} anchors require a column")
        if not needs_column and self.column is not None:
            raise SchemaError("row anchors must not name a column")

    @classmethod
    def row(cls) -> "AnnotationAnchor":
        return cls(AnchorScope.ROW)

    @classmethod
    def cell(cls, column: int) -> "AnnotationAnchor":
        return cls(AnchorScope.CELL, column)

    @classmethod
    def column_anchor(cls, column: int) -> "AnnotationAnchor":
        return cls(AnchorScope.COLUMN, column)


@dataclass
class AnnotatedTuple:
    """One row: immutable data values plus a mutable annotation set.

    ``annotations`` maps annotation id to the anchor it was attached
    with; mining cares only about the key set.  ``labels`` holds
    generalization labels (section 4.1), kept separate from raw
    annotations so re-labelling can be recomputed without touching
    curator-provided annotations.
    """

    tid: int
    values: tuple[str, ...]
    annotations: dict[str, AnnotationAnchor] = field(default_factory=dict)
    labels: set[str] = field(default_factory=set)
    alive: bool = True

    @property
    def annotation_ids(self) -> frozenset[str]:
        return frozenset(self.annotations)

    @property
    def is_annotated(self) -> bool:
        return bool(self.annotations)

    def has_annotation(self, annotation_id: str) -> bool:
        return annotation_id in self.annotations

    def attach(self, annotation_id: str,
               anchor: AnnotationAnchor | None = None) -> bool:
        """Attach an annotation; False when it was already present.

        A tuple carries a given annotation id at most once (the paper
        makes the same at-most-once guarantee for generalization labels).
        """
        if annotation_id in self.annotations:
            return False
        self.annotations[annotation_id] = anchor or AnnotationAnchor.row()
        return True

    def detach(self, annotation_id: str) -> bool:
        """Remove an annotation; False when it was not present."""
        return self.annotations.pop(annotation_id, None) is not None

"""The annotated relation: Definition 4.1 as a storage engine.

``R = { r = <x1 … xn, a1, a2, …> }`` — tuples of data values with a
variable number of attached annotations.  The relation is tid-addressed
and append-only for data (updates arrive as the paper's three cases:
annotated tuples, un-annotated tuples, new annotations on existing
tuples), plus the future-work extensions (annotation detachment, tuple
deletion) implemented behind the same API.

Deletion uses tombstones so tids remain stable; every consumer that
cares about database size must use :attr:`AnnotatedRelation.live_count`,
never the tid range.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import SchemaError, UnknownTupleError
from repro.relation.annotation import Annotation, AnnotationRegistry
from repro.relation.schema import Schema, opaque_token
from repro.relation.triggers import TriggerRegistry
from repro.relation.tuples import AnchorScope, AnnotatedTuple, AnnotationAnchor


class AnnotatedRelation:
    """In-memory annotated relation with trigger support."""

    def __init__(self, schema: Schema | None = None, *,
                 name: str = "R") -> None:
        self.name = name
        self.schema = schema
        self.registry = AnnotationRegistry()
        self.triggers = TriggerRegistry()
        self._tuples: list[AnnotatedTuple] = []
        self._column_annotations: dict[int, set[str]] = {}
        self._live = 0
        #: Monotone counter bumped by every mutation; the incremental
        #: manager records it to detect out-of-band modifications.
        self.version = 0

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of live tuples (the |DB| of support computations)."""
        return self._live

    @property
    def live_count(self) -> int:
        return self._live

    @property
    def tid_range(self) -> int:
        """Upper bound on tids (includes tombstoned tuples)."""
        return len(self._tuples)

    def tuple(self, tid: int) -> AnnotatedTuple:
        row = self._row(tid)
        if not row.alive:
            raise UnknownTupleError(f"tuple {tid} has been deleted")
        return row

    def _row(self, tid: int) -> AnnotatedTuple:
        if not isinstance(tid, int) or not 0 <= tid < len(self._tuples):
            raise UnknownTupleError(f"unknown tuple id {tid!r}")
        return self._tuples[tid]

    def __iter__(self) -> Iterator[AnnotatedTuple]:
        return (row for row in self._tuples if row.alive)

    def tids(self) -> Iterator[int]:
        return (row.tid for row in self._tuples if row.alive)

    def is_live(self, tid: int) -> bool:
        return 0 <= tid < len(self._tuples) and self._tuples[tid].alive

    def data_tokens(self, tid: int) -> tuple[str, ...]:
        """The item tokens of a tuple's data values."""
        row = self.tuple(tid)
        if self.schema is None:
            return tuple(opaque_token(value) for value in row.values)
        return tuple(self.schema.data_token(position, value)
                     for position, value in enumerate(row.values))

    def column_annotations(self, column: int) -> frozenset[str]:
        """Annotations anchored to a whole column (relation-level)."""
        return frozenset(self._column_annotations.get(column, ()))

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Sequence[str],
               annotations: Iterable[str] = ()) -> int:
        """Append a tuple; returns its tid.  Fires ``on_insert``."""
        self.triggers.guard()
        if self.schema is not None:
            row_values = self.schema.validate_row(values)
        else:
            if not values:
                raise SchemaError("a tuple needs at least one data value")
            row_values = tuple(str(value) for value in values)
        tid = len(self._tuples)
        row = AnnotatedTuple(tid=tid, values=row_values)
        for annotation_id in annotations:
            self.registry.ensure(annotation_id)
            row.attach(annotation_id)
        self._tuples.append(row)
        self._live += 1
        self.version += 1
        self.triggers.fire_insert(tid, row_values, row.annotation_ids)
        return tid

    def insert_many(self, rows: Iterable[tuple[Sequence[str], Iterable[str]]]
                    ) -> list[int]:
        """Insert ``(values, annotations)`` pairs; returns their tids."""
        return [self.insert(values, annotations)
                for values, annotations in rows]

    def annotate(self, tid: int, annotation: str | Annotation,
                 anchor: AnnotationAnchor | None = None) -> bool:
        """Attach an annotation to a live tuple; False if already present.

        Fires ``on_annotate`` only when the attachment is new, so
        downstream maintenance counts each (tuple, annotation) pair once.
        """
        self.triggers.guard()
        row = self.tuple(tid)
        if isinstance(annotation, Annotation):
            self.registry.register(annotation)
            annotation_id = annotation.annotation_id
        else:
            self.registry.ensure(annotation)
            annotation_id = annotation
        anchor = anchor or AnnotationAnchor.row()
        if anchor.scope is AnchorScope.COLUMN:
            raise SchemaError(
                "column anchors attach to the relation; use annotate_column")
        if anchor.column is not None and (
                not 0 <= anchor.column < len(row.values)):
            raise SchemaError(
                f"cell anchor column {anchor.column} outside tuple arity "
                f"{len(row.values)}")
        attached = row.attach(annotation_id, anchor)
        if attached:
            self.version += 1
            self.triggers.fire_annotate(tid, annotation_id)
        return attached

    def annotate_column(self, column: int,
                        annotation: str | Annotation) -> bool:
        """Attach an annotation to a whole column (relation-level)."""
        self.triggers.guard()
        arity = self.schema.arity if self.schema is not None else None
        if column < 0 or (arity is not None and column >= arity):
            raise SchemaError(f"column {column} outside schema")
        if isinstance(annotation, Annotation):
            self.registry.register(annotation)
            annotation_id = annotation.annotation_id
        else:
            self.registry.ensure(annotation)
            annotation_id = annotation
        bucket = self._column_annotations.setdefault(column, set())
        if annotation_id in bucket:
            return False
        bucket.add(annotation_id)
        self.version += 1
        return True

    def detach(self, tid: int, annotation_id: str) -> bool:
        """Remove an annotation from a tuple (future-work extension)."""
        self.triggers.guard()
        row = self.tuple(tid)
        detached = row.detach(annotation_id)
        if detached:
            self.version += 1
            self.triggers.fire_detach(tid, annotation_id)
        return detached

    def delete(self, tid: int) -> None:
        """Tombstone a tuple (future-work extension)."""
        self.triggers.guard()
        row = self.tuple(tid)
        row.alive = False
        self._live -= 1
        self.version += 1
        self.triggers.fire_delete(tid)

    # -- labels (generalization, section 4.1) ------------------------------

    def set_labels(self, tid: int, labels: Iterable[str]) -> None:
        """Replace the generalization labels of a tuple (no-op safe)."""
        row = self.tuple(tid)
        new_labels = set(labels)
        if new_labels != row.labels:
            row.labels = new_labels
            self.version += 1

    def add_labels(self, tid: int, labels: Iterable[str]) -> frozenset[str]:
        """Add labels to a tuple; returns those that were actually new."""
        row = self.tuple(tid)
        new = frozenset(labels) - row.labels
        if new:
            row.labels |= new
            self.version += 1
        return new

    # -- copying -------------------------------------------------------------

    def subset(self, tids: Iterable[int]) -> "AnnotatedRelation":
        """A fresh relation holding copies of the given live tuples.

        Tuples are renumbered densely in the order of ``tids`` (the
        shard-local tid space of a partitioned engine).  The annotation
        registry is copied whole so annotation metadata survives;
        triggers, like in :meth:`copy`, do not carry over.
        """
        clone = AnnotatedRelation(self.schema, name=self.name)
        for annotation in self.registry:
            clone.registry.register(annotation)
        for local_tid, tid in enumerate(tids):
            row = self.tuple(tid)
            clone._tuples.append(AnnotatedTuple(
                tid=local_tid,
                values=row.values,
                annotations=dict(row.annotations),
                labels=set(row.labels),
                alive=True,
            ))
        clone._live = len(clone._tuples)
        return clone

    def copy(self) -> "AnnotatedRelation":
        """Deep copy of data, annotations and labels (not triggers).

        Used by the re-mine baseline so that verification never mutates
        the relation an incremental manager is tracking.
        """
        clone = AnnotatedRelation(self.schema, name=self.name)
        for annotation in self.registry:
            clone.registry.register(annotation)
        for row in self._tuples:
            copied = AnnotatedTuple(
                tid=row.tid,
                values=row.values,
                annotations=dict(row.annotations),
                labels=set(row.labels),
                alive=row.alive,
            )
            clone._tuples.append(copied)
        clone._live = self._live
        clone._column_annotations = {
            column: set(ids)
            for column, ids in self._column_annotations.items()
        }
        clone.version = 0
        return clone

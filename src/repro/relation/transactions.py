"""Encoding annotated relations as transaction databases.

Mining sees each live tuple as the set of its data-value items, raw
annotation items and generalization-label items.  The encoding keeps
transaction index == tid (tombstoned tuples encode as empty sets), which
is what lets the incremental maintenance algorithms speak about "newly
annotated tuples" by tid.

Column-anchored annotations are *not* folded into row transactions by
default: a column annotation holds for the attribute, not for any
specific row, and folding it in would make it co-occur with everything
(support 1.0) and drown real correlations.  Callers who do want that
behaviour opt in via ``include_column_annotations=True``.
"""

from __future__ import annotations

from repro.mining.itemsets import ItemVocabulary, Transaction, TransactionDatabase
from repro.relation.relation import AnnotatedRelation


def encode_tuple(relation: AnnotatedRelation, tid: int,
                 vocabulary: ItemVocabulary, *,
                 include_labels: bool = True,
                 include_column_annotations: bool = False) -> Transaction:
    """The transaction (set of interned item ids) for one live tuple."""
    row = relation.tuple(tid)
    ids = [vocabulary.intern_data(token)
           for token in relation.data_tokens(tid)]
    ids += [vocabulary.intern_annotation(annotation_id)
            for annotation_id in row.annotation_ids]
    if include_labels:
        ids += [vocabulary.intern_label(label) for label in row.labels]
    if include_column_annotations:
        for column in range(len(row.values)):
            ids += [vocabulary.intern_annotation(annotation_id)
                    for annotation_id in relation.column_annotations(column)]
    return frozenset(ids)


def encode_relation(relation: AnnotatedRelation,
                    vocabulary: ItemVocabulary | None = None, *,
                    include_labels: bool = True,
                    include_column_annotations: bool = False
                    ) -> TransactionDatabase:
    """Encode every tuple of ``relation``; transaction index == tid.

    Tombstoned tuples become empty transactions so that tid alignment is
    preserved; they contribute to no pattern count, and |DB| for support
    purposes must be taken from ``relation.live_count``.
    """
    database = TransactionDatabase(vocabulary)
    for tid in range(relation.tid_range):
        if relation.is_live(tid):
            database.add(encode_tuple(
                relation, tid, database.vocabulary,
                include_labels=include_labels,
                include_column_annotations=include_column_annotations))
        else:
            database.add(frozenset())
    return database


def annotation_item_ids(relation: AnnotatedRelation,
                        vocabulary: ItemVocabulary,
                        tid: int) -> frozenset[int]:
    """Interned ids of the raw annotations currently on a tuple."""
    row = relation.tuple(tid)
    return frozenset(vocabulary.intern_annotation(annotation_id)
                     for annotation_id in row.annotation_ids)

"""Relation schemas.

The paper's reference dataset uses opaque value ids with no attribute
names ("knowledge of the true values was never necessary"), so schemas
are optional throughout the library: an :class:`AnnotatedRelation` built
without a schema treats each value as an opaque token.  When a schema is
present, data items are qualified as ``attribute=value`` so that equal
values in different columns stay distinct items.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named, positioned column."""

    name: str
    position: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.position < 0:
            raise SchemaError(
                f"attribute position must be >= 0, got {self.position}")


class Schema:
    """An ordered list of uniquely named attributes."""

    def __init__(self, names: Sequence[str]) -> None:
        if not names:
            raise SchemaError("a schema needs at least one attribute")
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {list(names)!r}")
        self._attributes = tuple(Attribute(name, position)
                                 for position, name in enumerate(names))
        self._by_name = {attribute.name: attribute
                         for attribute in self._attributes}

    @classmethod
    def positional(cls, arity: int, prefix: str = "attr") -> "Schema":
        """A schema of ``arity`` generated names (``attr0``, ``attr1``…)."""
        if arity < 1:
            raise SchemaError(f"arity must be >= 1, got {arity}")
        return cls([f"{prefix}{position}" for position in range(arity)])

    @property
    def arity(self) -> int:
        return len(self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def validate_row(self, values: Sequence[str]) -> tuple[str, ...]:
        """Check arity and coerce a row to a tuple of strings."""
        if len(values) != self.arity:
            raise SchemaError(
                f"row has {len(values)} values, schema expects {self.arity}")
        return tuple(str(value) for value in values)

    def data_token(self, position: int, value: str) -> str:
        """The item token for ``value`` in column ``position``."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"position {position} outside schema of arity {self.arity}")
        return f"{self._attributes[position].name}={value}"

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return self.arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        names = ", ".join(attribute.name for attribute in self._attributes)
        return f"Schema([{names}])"


def opaque_token(value: str) -> str:
    """The item token for a value in a schema-less relation."""
    return str(value)

"""Annotation value objects and the per-database annotation registry.

An annotation in the paper is an opaque id (``Annot_4``) optionally
carrying free text ("this value is invalid"), a category, an author and a
timestamp — the metadata kinds listed in the paper's introduction
(versioning timestamps, related articles, corrections, exchanged user
knowledge).  Only the id participates in mining; the text is consumed by
the generalization engine (section 4.1).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import DuplicateAnnotationError, UnknownAnnotationError


@dataclass(frozen=True, slots=True)
class Annotation:
    """An immutable annotation record."""

    annotation_id: str
    text: str = ""
    category: str = ""
    author: str = ""
    created: str = ""

    def __post_init__(self) -> None:
        if not self.annotation_id or not isinstance(self.annotation_id, str):
            raise UnknownAnnotationError(
                f"annotation id must be a non-empty string, "
                f"got {self.annotation_id!r}")

    def with_text(self, text: str) -> "Annotation":
        return Annotation(self.annotation_id, text, self.category,
                          self.author, self.created)


class AnnotationRegistry:
    """Id -> :class:`Annotation` map with conflict detection.

    Dataset files mention annotations by bare id; richer records may be
    registered later.  Registering the *same* content twice is a no-op;
    registering *conflicting* content for one id raises, because silently
    replacing curator-entered metadata would corrupt provenance.
    """

    def __init__(self) -> None:
        self._by_id: dict[str, Annotation] = {}

    def register(self, annotation: Annotation) -> Annotation:
        existing = self._by_id.get(annotation.annotation_id)
        if existing is None:
            self._by_id[annotation.annotation_id] = annotation
            return annotation
        if existing == annotation:
            return existing
        if existing == Annotation(annotation.annotation_id):
            # A bare id seen in a dataset file, now enriched.
            self._by_id[annotation.annotation_id] = annotation
            return annotation
        if annotation == Annotation(annotation.annotation_id):
            return existing
        raise DuplicateAnnotationError(
            f"annotation {annotation.annotation_id!r} already registered "
            f"with different content")

    def ensure(self, annotation_id: str) -> Annotation:
        """Register a bare annotation for ``annotation_id`` if unseen."""
        existing = self._by_id.get(annotation_id)
        if existing is not None:
            return existing
        return self.register(Annotation(annotation_id))

    def get(self, annotation_id: str) -> Annotation:
        try:
            return self._by_id[annotation_id]
        except KeyError:
            raise UnknownAnnotationError(
                f"unknown annotation id {annotation_id!r}") from None

    def __contains__(self, annotation_id: str) -> bool:
        return annotation_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self._by_id.values())


@dataclass(frozen=True, slots=True)
class AnnotationStats:
    """Simple registry statistics used by the CLI's status display."""

    total: int
    with_text: int
    categories: tuple[str, ...] = field(default=())


def registry_stats(registry: AnnotationRegistry) -> AnnotationStats:
    categories = sorted({annotation.category for annotation in registry
                         if annotation.category})
    with_text = sum(1 for annotation in registry if annotation.text)
    return AnnotationStats(total=len(registry), with_text=with_text,
                           categories=tuple(categories))

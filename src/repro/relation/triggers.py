"""Trigger registry for annotated relations.

Section 5 of the paper uses database triggers so that "when a patch of
new tuples is added to the database, the system automatically compares
these tuples to the association rules".  The standalone reproduction
fires the equivalent callbacks from the relation's mutation methods.

Trigger callbacks must not mutate the relation re-entrantly; the
registry guards against that because a trigger inserting tuples would
fire further triggers and make maintenance ordering undefined.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ReproError

#: ``(tid, values, annotation_ids)`` for a freshly inserted tuple.
InsertCallback = Callable[[int, tuple[str, ...], frozenset[str]], None]
#: ``(tid, annotation_id)`` for a freshly attached annotation.
AnnotateCallback = Callable[[int, str], None]
#: ``(tid, annotation_id)`` for a detached annotation.
DetachCallback = Callable[[int, str], None]
#: ``(tid,)`` for a deleted tuple.
DeleteCallback = Callable[[int], None]


class TriggerReentrancyError(ReproError):
    """A trigger callback attempted to mutate the relation."""


@dataclass
class TriggerRegistry:
    """Named lists of callbacks fired after relation mutations."""

    on_insert: list[InsertCallback] = field(default_factory=list)
    on_annotate: list[AnnotateCallback] = field(default_factory=list)
    on_detach: list[DetachCallback] = field(default_factory=list)
    on_delete: list[DeleteCallback] = field(default_factory=list)
    _firing: bool = field(default=False, repr=False)

    def guard(self) -> None:
        """Raise when called from inside a trigger callback."""
        if self._firing:
            raise TriggerReentrancyError(
                "relation mutation attempted from inside a trigger callback")

    def fire_insert(self, tid: int, values: tuple[str, ...],
                    annotation_ids: frozenset[str]) -> None:
        self._fire(self.on_insert, tid, values, annotation_ids)

    def fire_annotate(self, tid: int, annotation_id: str) -> None:
        self._fire(self.on_annotate, tid, annotation_id)

    def fire_detach(self, tid: int, annotation_id: str) -> None:
        self._fire(self.on_detach, tid, annotation_id)

    def fire_delete(self, tid: int) -> None:
        self._fire(self.on_delete, tid)

    def _fire(self, callbacks: Sequence[Callable], *args) -> None:
        if not callbacks:
            return
        self._firing = True
        try:
            for callback in list(callbacks):
                callback(*args)
        finally:
            self._firing = False

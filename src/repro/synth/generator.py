"""Planted-rule synthetic workload generator.

The paper evaluates on a private ~8000-line dataset of opaque value ids
(its Figure 4) whose "association rules would be the same regardless" of
the true values.  This generator produces datasets with the same shape
and *known ground truth*: data-to-annotation and annotation-to-annotation
rules are planted with target support and confidence, on top of
background value distributions and noise annotations.  Everything is
driven by a seeded :class:`random.Random`, so every workload in the
benchmark suite is exactly reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.relation.relation import AnnotatedRelation


@dataclass(frozen=True, slots=True)
class PlantedD2A:
    """A data-to-annotation rule to plant.

    ``pattern`` maps column index -> forced value index.  A fraction
    ``pattern_rate`` of tuples receives the pattern; each of those
    carries ``annotation`` with probability ``confidence``.  The planted
    rule's expected support is therefore ``pattern_rate * confidence``.
    """

    pattern: tuple[tuple[int, int], ...]
    annotation: str
    pattern_rate: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.pattern:
            raise MiningError("planted D2A rule needs a non-empty pattern")
        if not 0.0 < self.pattern_rate <= 1.0:
            raise MiningError(
                f"pattern_rate must be in (0, 1], got {self.pattern_rate}")
        if not 0.0 < self.confidence <= 1.0:
            raise MiningError(
                f"confidence must be in (0, 1], got {self.confidence}")

    @property
    def expected_support(self) -> float:
        return self.pattern_rate * self.confidence


@dataclass(frozen=True, slots=True)
class PlantedA2A:
    """An annotation-to-annotation rule to plant.

    Whenever every annotation of ``lhs`` ended up on a tuple, the tuple
    additionally receives ``rhs`` with probability ``confidence``.
    """

    lhs: tuple[str, ...]
    rhs: str
    confidence: float

    def __post_init__(self) -> None:
        if not self.lhs:
            raise MiningError("planted A2A rule needs a non-empty LHS")
        if self.rhs in self.lhs:
            raise MiningError(f"A2A RHS {self.rhs!r} also in the LHS")
        if not 0.0 < self.confidence <= 1.0:
            raise MiningError(
                f"confidence must be in (0, 1], got {self.confidence}")


@dataclass(frozen=True)
class SyntheticConfig:
    """Full description of a synthetic annotated database."""

    n_tuples: int
    n_columns: int = 6
    values_per_column: int = 40
    #: Zipf-ish skew: value v in a column has weight ``1 / (v + 1) ** skew``.
    skew: float = 1.1
    planted_d2a: tuple[PlantedD2A, ...] = ()
    planted_a2a: tuple[PlantedA2A, ...] = ()
    #: Pool of noise annotations sprinkled independently of the data.
    noise_annotations: int = 4
    noise_rate: float = 0.03
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_tuples < 1:
            raise MiningError(f"n_tuples must be >= 1, got {self.n_tuples}")
        if self.n_columns < 1:
            raise MiningError(f"n_columns must be >= 1, got {self.n_columns}")
        if self.values_per_column < 2:
            raise MiningError("values_per_column must be >= 2")
        for rule in self.planted_d2a:
            for column, value in rule.pattern:
                if not 0 <= column < self.n_columns:
                    raise MiningError(
                        f"planted pattern column {column} outside schema")
                if not 0 <= value < self.values_per_column:
                    raise MiningError(
                        f"planted pattern value {value} outside domain")


def value_token(column: int, value: int) -> str:
    """The opaque token for value index ``value`` of column ``column``."""
    return f"c{column}v{value}"


def noise_annotation_id(index: int) -> str:
    return f"Annot_N{index}"


@dataclass
class GroundTruth:
    """What was planted, kept for recall/precision scoring (E7)."""

    d2a: tuple[PlantedD2A, ...]
    a2a: tuple[PlantedA2A, ...]
    #: tids that carry each planted D2A pattern (with or without the
    #: annotation) — the denominator of the rule's true confidence.
    pattern_tids: dict[int, set[int]] = field(default_factory=dict)
    #: tids where the planted annotation was actually attached.
    annotated_tids: dict[int, set[int]] = field(default_factory=dict)


def generate(config: SyntheticConfig) -> tuple[AnnotatedRelation, GroundTruth]:
    """Build the relation and its ground truth."""
    rng = random.Random(config.seed)
    weights = [1.0 / (value + 1) ** config.skew
               for value in range(config.values_per_column)]
    truth = GroundTruth(d2a=config.planted_d2a, a2a=config.planted_a2a)
    for rule_index in range(len(config.planted_d2a)):
        truth.pattern_tids[rule_index] = set()
        truth.annotated_tids[rule_index] = set()

    relation = AnnotatedRelation()
    for tid in range(config.n_tuples):
        values = [rng.choices(range(config.values_per_column),
                              weights=weights)[0]
                  for _ in range(config.n_columns)]
        annotations: set[str] = set()
        for rule_index, rule in enumerate(config.planted_d2a):
            if rng.random() < rule.pattern_rate:
                for column, value in rule.pattern:
                    values[column] = value
                truth.pattern_tids[rule_index].add(tid)
                if rng.random() < rule.confidence:
                    annotations.add(rule.annotation)
                    truth.annotated_tids[rule_index].add(tid)
        for rule in config.planted_a2a:
            if all(annotation in annotations for annotation in rule.lhs):
                if rng.random() < rule.confidence:
                    annotations.add(rule.rhs)
        for noise_index in range(config.noise_annotations):
            if rng.random() < config.noise_rate:
                annotations.add(noise_annotation_id(noise_index))
        tokens = [value_token(column, value)
                  for column, value in enumerate(values)]
        relation.insert(tokens, annotations)
    return relation, truth


def generate_annotation_batch(relation: AnnotatedRelation,
                              *,
                              size: int,
                              seed: int,
                              annotation_pool: Sequence[str] | None = None
                              ) -> list[tuple[int, str]]:
    """A Case 3 δ batch: ``size`` random (tid, annotation) pairs.

    Pairs always target live tuples and annotations the tuple does not
    already carry; annotations come from the relation's registry unless
    a pool is supplied.  Returns fewer pairs only if the database is
    saturated.
    """
    rng = random.Random(seed)
    if annotation_pool is None:
        annotation_pool = sorted(
            annotation.annotation_id for annotation in relation.registry)
    if not annotation_pool:
        raise MiningError("no annotations available for a δ batch")
    live_tids = list(relation.tids())
    batch: list[tuple[int, str]] = []
    seen: set[tuple[int, str]] = set()
    attempts = 0
    while len(batch) < size and attempts < size * 50:
        attempts += 1
        tid = rng.choice(live_tids)
        annotation_id = rng.choice(list(annotation_pool))
        pair = (tid, annotation_id)
        if pair in seen:
            continue
        if relation.tuple(tid).has_annotation(annotation_id):
            continue
        seen.add(pair)
        batch.append(pair)
    return batch


def hide_annotations(relation: AnnotatedRelation,
                     *,
                     fraction: float,
                     seed: int) -> list[tuple[int, str]]:
    """Remove a random fraction of (tuple, annotation) attachments.

    Returns the hidden pairs — the ground truth for the exploitation
    experiment (predicting missing annotations, paper section 5).
    The relation is mutated in place; callers typically copy first.
    """
    if not 0.0 < fraction < 1.0:
        raise MiningError(f"fraction must be in (0, 1), got {fraction}")
    rng = random.Random(seed)
    pairs = [(row.tid, annotation_id)
             for row in relation
             for annotation_id in sorted(row.annotation_ids)]
    rng.shuffle(pairs)
    hidden = pairs[:int(len(pairs) * fraction)]
    for tid, annotation_id in hidden:
        relation.detach(tid, annotation_id)
    return hidden

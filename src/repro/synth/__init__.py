"""Synthetic planted-rule workload generation."""

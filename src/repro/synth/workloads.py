"""Named workloads used by tests, examples and the benchmark harness.

``paper_scale()`` mirrors the paper's evaluation setting: roughly 8000
entries mined at minimum support 0.4 and minimum confidence 0.8 (the
"conservative" configuration of its Figure 16), with planted rules whose
statistics resemble the sample output of its Figure 7 (e.g. ``28 85 ==>
Annot_1, 0.9659, 0.4194`` — a two-value LHS at support ≈ 0.42 and
confidence ≈ 0.97).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.generator import (
    GroundTruth,
    PlantedA2A,
    PlantedD2A,
    SyntheticConfig,
    generate,
)
from repro.relation.relation import AnnotatedRelation


@dataclass(frozen=True)
class Workload:
    """A generated relation, its truth, and the thresholds to mine at."""

    name: str
    relation: AnnotatedRelation
    truth: GroundTruth
    min_support: float
    min_confidence: float


def _build(name: str, config: SyntheticConfig,
           min_support: float, min_confidence: float) -> Workload:
    relation, truth = generate(config)
    return Workload(name=name, relation=relation, truth=truth,
                    min_support=min_support, min_confidence=min_confidence)


def paper_scale(n_tuples: int = 8000, seed: int = 11) -> Workload:
    """The Figure 16 setting: ~8000 entries, α = 0.4, β = 0.8."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_columns=6,
        values_per_column=40,
        skew=1.2,
        planted_d2a=(
            # Figure 7 shape: "28 85 ==> Annot_1" at sup .42 / conf .97.
            # Patterns sit on value index 1 — away from the skewed
            # background mode — so background co-occurrence does not
            # dilute the planted confidences below the paper's β = 0.8.
            PlantedD2A(pattern=((0, 1), (1, 1)), annotation="Annot_1",
                       pattern_rate=0.44, confidence=0.97),
            PlantedD2A(pattern=((2, 1),), annotation="Annot_2",
                       pattern_rate=0.55, confidence=0.95),
            PlantedD2A(pattern=((3, 1), (4, 1)), annotation="Annot_3",
                       pattern_rate=0.50, confidence=0.93),
        ),
        planted_a2a=(
            PlantedA2A(lhs=("Annot_1",), rhs="Annot_4", confidence=0.95),
            PlantedA2A(lhs=("Annot_2", "Annot_3"), rhs="Annot_5",
                       confidence=0.92),
        ),
        noise_annotations=4,
        noise_rate=0.05,
        seed=seed,
    )
    return _build("paper-scale", config, min_support=0.4, min_confidence=0.8)


def dev_scale(n_tuples: int = 400, seed: int = 23) -> Workload:
    """Small version of the paper workload for fast tests."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_columns=4,
        values_per_column=12,
        skew=1.0,
        planted_d2a=(
            PlantedD2A(pattern=((0, 0), (1, 0)), annotation="Annot_1",
                       pattern_rate=0.5, confidence=0.95),
            PlantedD2A(pattern=((2, 0),), annotation="Annot_2",
                       pattern_rate=0.45, confidence=0.85),
        ),
        planted_a2a=(
            PlantedA2A(lhs=("Annot_1",), rhs="Annot_3", confidence=0.9),
        ),
        noise_annotations=3,
        noise_rate=0.06,
        seed=seed,
    )
    return _build("dev-scale", config, min_support=0.3, min_confidence=0.7)


def sparse_annotations(n_tuples: int = 1500, seed: int = 31) -> Workload:
    """Generalization workload (E6): each concept is split across many
    raw annotation ids, so no raw rule clears the support threshold but
    the generalized label does — the situation of paper section 4.1."""
    variants = tuple(f"Annot_inv{i}" for i in range(6))
    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_columns=4,
        values_per_column=20,
        skew=1.1,
        planted_d2a=tuple(
            # Same data pattern, but the "invalidation" concept arrives
            # under six different raw ids, each individually infrequent.
            # Value index 1 avoids the skewed background mode, which
            # would dilute the generalized rule's confidence.
            PlantedD2A(pattern=((0, 1),), annotation=variant,
                       pattern_rate=0.08, confidence=0.95)
            for variant in variants
        ),
        noise_annotations=2,
        noise_rate=0.04,
        seed=seed,
    )
    return _build("sparse-annotations", config,
                  min_support=0.15, min_confidence=0.6)


def dense_correlations(n_tuples: int = 2000, seed: int = 41) -> Workload:
    """A heavier rule load for the E5 (α, β) grid sweep."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        n_columns=8,
        values_per_column=25,
        skew=1.3,
        planted_d2a=tuple(
            PlantedD2A(pattern=((column, 0),),
                       annotation=f"Annot_{column}",
                       pattern_rate=0.30 + 0.05 * column,
                       confidence=0.75 + 0.03 * column)
            for column in range(5)
        ),
        planted_a2a=(
            PlantedA2A(lhs=("Annot_3",), rhs="Annot_6", confidence=0.9),
            PlantedA2A(lhs=("Annot_4",), rhs="Annot_7", confidence=0.85),
            PlantedA2A(lhs=("Annot_3", "Annot_4"), rhs="Annot_8",
                       confidence=0.8),
        ),
        noise_annotations=5,
        noise_rate=0.08,
        seed=seed,
    )
    return _build("dense-correlations", config,
                  min_support=0.2, min_confidence=0.6)

"""Random update-event streams for soak testing the incremental engine.

A stream interleaves all five event types (the paper's three cases plus
the removal extensions) with configurable weights, targeting a live
relation — the "database in production" the paper's incremental
maintenance is built for.  Streams are seeded and therefore exactly
replayable, which the soak tests and the E8 ablations rely on.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.errors import MiningError
from repro.relation.relation import AnnotatedRelation
from repro.synth.generator import value_token


def apply_to_relation(relation: AnnotatedRelation,
                      event: UpdateEvent) -> None:
    """Apply ``event`` to a bare relation (no mining state).

    Lets callers pre-draw a whole event sequence against a *shadow*
    copy of a relation — each draw sees the effect of the previous
    events — and then replay the recorded sequence against engines
    under test or benchmark (per-event vs. one coalesced batch).
    """
    if isinstance(event, AddAnnotatedTuples):
        for values, annotations in event.rows:
            relation.insert(values, annotations)
    elif isinstance(event, AddUnannotatedTuples):
        for values in event.rows:
            relation.insert(values)
    elif isinstance(event, AddAnnotations):
        for tid, annotation_id in event.additions:
            relation.annotate(tid, annotation_id)
    elif isinstance(event, RemoveAnnotations):
        for tid, annotation_id in event.removals:
            relation.detach(tid, annotation_id)
    elif isinstance(event, RemoveTuples):
        for tid in event.tids:
            relation.delete(tid)
    else:
        raise MiningError(f"unknown stream event {event!r}")


@dataclass(frozen=True)
class StreamConfig:
    """Mix and sizing of a random event stream."""

    #: Relative weights of the five event types.
    weight_add_annotations: float = 4.0
    weight_insert_annotated: float = 2.0
    weight_insert_unannotated: float = 2.0
    weight_remove_annotations: float = 1.0
    weight_remove_tuples: float = 0.5
    #: Rows/pairs per event.
    batch_size: int = 10
    #: Data shape for inserted tuples.
    n_columns: int = 4
    values_per_column: int = 12
    annotation_pool_size: int = 6
    seed: int = 13
    #: Annotation traffic locality: with probability ``hot_tuple_bias``
    #: an annotation add/remove targets one of the first
    #: ``hot_tuple_count`` live tuples instead of a uniform draw —
    #: the "trending records get annotated by many curators at once"
    #: shape of served write streams.  0 disables the hot set.
    hot_tuple_count: int = 0
    hot_tuple_bias: float = 0.0

    def __post_init__(self) -> None:
        weights = (self.weight_add_annotations,
                   self.weight_insert_annotated,
                   self.weight_insert_unannotated,
                   self.weight_remove_annotations,
                   self.weight_remove_tuples)
        if any(weight < 0 for weight in weights) or not any(weights):
            raise MiningError("stream weights must be >= 0, not all zero")
        if self.batch_size < 1:
            raise MiningError("batch_size must be >= 1")
        if self.hot_tuple_count < 0 or not 0.0 <= self.hot_tuple_bias <= 1.0:
            raise MiningError(
                "hot_tuple_count must be >= 0 and hot_tuple_bias in [0, 1]")


@dataclass
class EventStream:
    """Seeded generator of update events against a live relation.

    The stream inspects the relation *at draw time* so events always
    reference live tuples — apply each event before drawing the next.
    """

    relation: AnnotatedRelation
    config: StreamConfig = field(default_factory=StreamConfig)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.config.seed)
        self._annotation_pool = [f"Annot_s{index}" for index
                                 in range(self.config.annotation_pool_size)]

    # -- drawing -------------------------------------------------------------

    def draw(self) -> UpdateEvent:
        """One event valid against the relation's current state."""
        kinds = ["add_annotations", "insert_annotated",
                 "insert_unannotated", "remove_annotations",
                 "remove_tuples"]
        weights = [self.config.weight_add_annotations,
                   self.config.weight_insert_annotated,
                   self.config.weight_insert_unannotated,
                   self.config.weight_remove_annotations,
                   self.config.weight_remove_tuples]
        # Removals need live targets; inserts always work.
        live = list(self.relation.tids())
        for attempt in range(20):
            kind = self._rng.choices(kinds, weights=weights)[0]
            event = self._build(kind, live)
            if event is not None:
                return event
        # Degenerate state (e.g. nearly empty relation): insert.
        return self._insert_unannotated()

    def take(self, count: int, apply=None) -> Iterator[UpdateEvent]:
        """Yield ``count`` events; ``apply(event)`` runs between draws
        so each event sees the effect of the previous one."""
        for _ in range(count):
            event = self.draw()
            if apply is not None:
                apply(event)
            yield event

    # -- builders ---------------------------------------------------------------

    def _build(self, kind: str, live: list[int]) -> UpdateEvent | None:
        if kind == "insert_annotated":
            return self._insert_annotated()
        if kind == "insert_unannotated":
            return self._insert_unannotated()
        if kind == "add_annotations":
            return self._add_annotations(live)
        if kind == "remove_annotations":
            return self._remove_annotations(live)
        if kind == "remove_tuples":
            return self._remove_tuples(live)
        raise MiningError(f"unknown stream event kind {kind!r}")

    def _random_values(self) -> tuple[str, ...]:
        return tuple(
            value_token(column,
                        self._rng.randrange(self.config.values_per_column))
            for column in range(self.config.n_columns))

    def _insert_annotated(self) -> AddAnnotatedTuples:
        rows = []
        for _ in range(self.config.batch_size):
            annotations = self._rng.sample(
                self._annotation_pool,
                self._rng.randint(1, min(3, len(self._annotation_pool))))
            rows.append((self._random_values(), annotations))
        return AddAnnotatedTuples.build(rows)

    def _insert_unannotated(self) -> AddUnannotatedTuples:
        return AddUnannotatedTuples.build(
            [self._random_values() for _ in range(self.config.batch_size)])

    def _pick_tid(self, candidates: list[int]) -> int:
        """A target tuple, biased toward the hot set when configured."""
        config = self.config
        if (config.hot_tuple_count and config.hot_tuple_bias
                and self._rng.random() < config.hot_tuple_bias):
            hot = candidates[:config.hot_tuple_count]
            if hot:
                return self._rng.choice(hot)
        return self._rng.choice(candidates)

    def _add_annotations(self, live: list[int]) -> AddAnnotations | None:
        if not live:
            return None
        pairs = []
        for _ in range(self.config.batch_size):
            tid = self._pick_tid(live)
            annotation_id = self._rng.choice(self._annotation_pool)
            if not self.relation.tuple(tid).has_annotation(annotation_id):
                pairs.append((tid, annotation_id))
        return AddAnnotations.build(pairs) if pairs else None

    def _remove_annotations(self, live: list[int]
                            ) -> RemoveAnnotations | None:
        annotated = [tid for tid in live
                     if self.relation.tuple(tid).is_annotated]
        if not annotated:
            return None
        pairs = []
        for _ in range(min(self.config.batch_size, len(annotated))):
            tid = self._pick_tid(annotated)
            annotation_id = self._rng.choice(
                sorted(self.relation.tuple(tid).annotation_ids))
            pairs.append((tid, annotation_id))
        return RemoveAnnotations.build(pairs)

    def _remove_tuples(self, live: list[int]) -> RemoveTuples | None:
        # Never drain the relation below a handful of tuples.
        if len(live) <= self.config.batch_size + 5:
            return None
        victims = self._rng.sample(live, min(3, len(live)))
        return RemoveTuples.build(victims)

"""Experiment kits: complete on-disk workloads in the paper's formats.

A *kit* is a directory holding everything the paper's application (and
this reproduction's CLI) consumes for one experiment run:

```
kit/
  dataset.txt            # Figure 4 dataset
  generalizations.txt    # Figure 9 rules (optional)
  updates_01.txt …       # Figure 14 δ batches, in application order
  annotated_tuples.txt   # Case 1 increment (dataset format)
  unannotated_tuples.txt # Case 2 increment
  MANIFEST.txt           # what was generated, with the seed
```

Kits make experiments shareable and replayable outside Python — the
same role the paper's text files played — and power the
``repro-gendata`` console script.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from pathlib import Path

from repro.core.events import AddAnnotations
from repro.io import dataset_format, updates_format
from repro.synth.generator import generate_annotation_batch, value_token
from repro.synth.workloads import Workload, dev_scale, paper_scale

GENERALIZATIONS_TEMPLATE = """\
# generated generalization rules (Figure 9 grammar)
Noise <= {noise_ids}
[hierarchy]
Noise -> Artifact
"""


@dataclass(frozen=True)
class KitConfig:
    """What to include in a generated kit."""

    workload: str = "dev"           # "dev" or "paper"
    n_tuples: int | None = None
    update_batches: int = 3
    update_batch_size: int = 20
    insert_rows: int = 25
    include_generalizations: bool = True
    seed: int = 7


@dataclass(frozen=True)
class KitPaths:
    """Where a written kit's files live."""

    root: Path
    dataset: Path
    manifest: Path
    updates: tuple[Path, ...]
    annotated_tuples: Path
    unannotated_tuples: Path
    generalizations: Path | None = None


def _pick_workload(config: KitConfig) -> Workload:
    if config.workload == "paper":
        return (paper_scale(config.n_tuples, seed=config.seed)
                if config.n_tuples else paper_scale(seed=config.seed))
    if config.workload == "dev":
        return (dev_scale(config.n_tuples, seed=config.seed)
                if config.n_tuples else dev_scale(seed=config.seed))
    raise ValueError(f"unknown kit workload {config.workload!r} "
                     f"(choose 'dev' or 'paper')")


def write_kit(directory: str | os.PathLike,
              config: KitConfig | None = None) -> KitPaths:
    """Generate a workload and write the full kit into ``directory``."""
    config = config if config is not None else KitConfig()
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    workload = _pick_workload(config)
    relation = workload.relation
    rng = random.Random(config.seed)

    dataset = root / "dataset.txt"
    dataset_format.write_dataset(relation, dataset)

    # δ batches are generated against a scratch copy so successive
    # batches never repeat a (tid, annotation) pair.
    scratch = relation.copy()
    update_paths = []
    for batch_number in range(1, config.update_batches + 1):
        batch = generate_annotation_batch(
            scratch, size=config.update_batch_size,
            seed=config.seed + batch_number)
        for tid, annotation_id in batch:
            scratch.annotate(tid, annotation_id)
        path = root / f"updates_{batch_number:02d}.txt"
        updates_format.write_updates(AddAnnotations.build(batch), path)
        update_paths.append(path)

    arity = len(next(iter(relation)).values)
    annotation_pool = sorted(
        annotation.annotation_id for annotation in relation.registry)

    annotated = root / "annotated_tuples.txt"
    with open(annotated, "w", encoding="utf-8") as handle:
        for _ in range(config.insert_rows):
            values = [value_token(column, rng.randrange(8))
                      for column in range(arity)]
            annotations = rng.sample(annotation_pool,
                                     rng.randint(1, 2))
            handle.write(dataset_format.format_row(values, annotations)
                         + "\n")

    unannotated = root / "unannotated_tuples.txt"
    with open(unannotated, "w", encoding="utf-8") as handle:
        for _ in range(config.insert_rows):
            values = [value_token(column, rng.randrange(8))
                      for column in range(arity)]
            handle.write(dataset_format.format_row(values, ()) + "\n")

    generalizations = None
    if config.include_generalizations:
        noise_ids = [annotation_id for annotation_id in annotation_pool
                     if annotation_id.startswith("Annot_N")]
        if noise_ids:
            generalizations = root / "generalizations.txt"
            generalizations.write_text(GENERALIZATIONS_TEMPLATE.format(
                noise_ids=" | ".join(noise_ids)))

    manifest = root / "MANIFEST.txt"
    manifest.write_text("\n".join([
        f"workload: {workload.name}",
        f"tuples: {len(relation)}",
        f"seed: {config.seed}",
        f"min_support: {workload.min_support}",
        f"min_confidence: {workload.min_confidence}",
        f"update_batches: {config.update_batches} "
        f"x {config.update_batch_size} pairs",
        f"insert_rows: {config.insert_rows} annotated "
        f"+ {config.insert_rows} un-annotated",
        f"generalizations: {generalizations is not None}",
    ]) + "\n")

    return KitPaths(
        root=root,
        dataset=dataset,
        manifest=manifest,
        updates=tuple(update_paths),
        annotated_tuples=annotated,
        unannotated_tuples=unannotated,
        generalizations=generalizations,
    )


def replay_kit(paths: KitPaths, *, min_support: float,
               min_confidence: float):
    """Load a kit and push every file through a manager, in kit order.

    Returns the manager, for inspection; used by tests to prove kits
    are self-consistent (everything parses and applies cleanly).
    """
    from repro.core.engine import engine

    relation = dataset_format.read_dataset(paths.dataset)
    manager = engine(relation, min_support=min_support,
                     min_confidence=min_confidence)
    manager.mine()
    for update in paths.updates:
        manager.apply(updates_format.read_updates(update))
    with open(paths.annotated_tuples, encoding="utf-8") as handle:
        manager.insert_annotated(list(dataset_format.iter_rows(handle)))
    with open(paths.unannotated_tuples, encoding="utf-8") as handle:
        rows = [values for values, _annotations
                in dataset_format.iter_rows(handle)]
    manager.insert_unannotated(rows)
    return manager


def main(argv: list[str] | None = None) -> int:
    """``repro-gendata``: write an experiment kit from the command line."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-gendata",
        description="Generate a synthetic annotated-database experiment "
                    "kit (dataset, update files, generalizations)")
    parser.add_argument("directory", help="output directory for the kit")
    parser.add_argument("--workload", choices=["dev", "paper"],
                        default="dev")
    parser.add_argument("--tuples", type=int, default=None,
                        help="override the workload's tuple count")
    parser.add_argument("--batches", type=int, default=3,
                        help="number of Figure 14 update files")
    parser.add_argument("--batch-size", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    paths = write_kit(args.directory, KitConfig(
        workload=args.workload, n_tuples=args.tuples,
        update_batches=args.batches, update_batch_size=args.batch_size,
        seed=args.seed))
    print(f"kit written to {paths.root}")
    print(paths.manifest.read_text(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an application boundary.  Subclasses are
organized by subsystem (vocabulary, relation, mining, formats, app) and
carry enough context in their messages to be actionable without a
debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class VocabularyError(ReproError):
    """An item was used with a vocabulary that does not know it."""


class ItemKindError(ReproError):
    """An item of the wrong kind was used (e.g. data value as a rule RHS)."""


class SchemaError(ReproError):
    """A tuple does not match the relation schema."""


class UnknownTupleError(ReproError):
    """A tuple id does not exist in the relation."""


class UnknownAnnotationError(ReproError):
    """An annotation id does not exist in the relation's registry."""


class DuplicateAnnotationError(ReproError):
    """An annotation id was registered twice with conflicting content."""


class InvalidThresholdError(ReproError):
    """A support/confidence threshold is outside ``(0, 1]``."""


class MiningError(ReproError):
    """A mining routine was invoked with inconsistent arguments."""


class MaintenanceError(ReproError):
    """Incremental maintenance detected an inconsistent internal state."""


class DeltaPlanError(MaintenanceError):
    """A batch of update events could not be coalesced into a delta plan.

    Raised by the plan compiler *before any state is mutated* — e.g. an
    event targets an unknown tuple, or annotates a tuple that an earlier
    event in the same batch deleted.  Callers (the serving facade) use
    this guarantee to fall back to per-event application, which isolates
    the poison event with the documented re-queue/drop semantics.
    """


class CatalogError(ReproError):
    """A rule-catalog query was composed or executed inconsistently."""


class FormatError(ReproError):
    """A paper file format could not be parsed."""

    def __init__(self, message: str, *, line_number: int | None = None,
                 line: str | None = None) -> None:
        location = "" if line_number is None else f" (line {line_number})"
        shown = "" if line is None else f": {line!r}"
        super().__init__(f"{message}{location}{shown}")
        self.line_number = line_number
        self.line = line


class GeneralizationError(ReproError):
    """A generalization rule or hierarchy is malformed."""


class RecommendationError(ReproError):
    """The exploitation layer was used inconsistently."""


class SessionError(ReproError):
    """The application session was driven through an invalid transition."""


class ServerError(ReproError):
    """The serving tier was configured or driven inconsistently.

    Client-side protocol faults (malformed event JSON, unknown tenant,
    bad query parameters) are mapped to HTTP status codes at the
    endpoint layer; this type covers the server's own misuse — bad
    :class:`~repro.server.config.ServerConfig` values, metric type
    clashes, lifecycle violations (serving before ``start()``).
    """

"""Online shard rebalancing: skew detection, layout plans, rebuilds.

A hash-partitioned session drifts: deletes hollow some shards out, a
hot-tuple write stream piles annotations onto one slice, or an operator
simply wants more (or fewer) shards than the session started with.
This module computes *plans* — the deterministic tid -> shard layout a
rebalance would cut over to — and builds the replacement engine from a
persistence snapshot, so the rebuild inherits every restore-time
verification (pattern table count-by-count, catalog shape).

The operational shape mirrors infra tooling: ``plan`` (inspect, no
mutation), ``dry_run`` (the service returns the plan without acting),
``apply`` (the service's background build + write-lock cutover, see
:meth:`repro.app.service.CorrelationService.rebalance`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import CorrelationEngine
from repro.errors import MaintenanceError


@dataclass(frozen=True)
class ShardSkew:
    """Live-tuple balance of a session's current layout."""

    counts: tuple[int, ...]
    total: int
    #: ``max(counts) / (total / shards)`` — 1.0 is perfectly balanced.
    max_ratio: float

    @property
    def shard_count(self) -> int:
        return len(self.counts)

    def skewed(self, *, threshold: float = 1.5) -> bool:
        """True when the hottest shard exceeds ``threshold`` x ideal."""
        return self.max_ratio >= threshold

    def as_dict(self) -> dict:
        return {"counts": list(self.counts), "total": self.total,
                "max_ratio": self.max_ratio}


@dataclass(frozen=True)
class RebalancePlan:
    """A deterministic target layout for one session."""

    current_shards: int
    target_shards: int
    current_counts: tuple[int, ...]
    target_counts: tuple[int, ...]
    #: Live tuples whose shard changes under the plan.
    moved: int
    total: int
    #: tid -> target shard (None for dead tids); index = tid.  Future
    #: inserts beyond the assignment fall back to ``tid % target``.
    assignment: tuple[int | None, ...]

    @property
    def noop(self) -> bool:
        return self.moved == 0 and self.target_shards == self.current_shards

    def as_dict(self) -> dict:
        """JSON-able summary (the assignment itself is omitted: it is
        O(relation) and belongs in snapshots, not status payloads)."""
        return {
            "current_shards": self.current_shards,
            "target_shards": self.target_shards,
            "current_counts": list(self.current_counts),
            "target_counts": list(self.target_counts),
            "moved": self.moved,
            "total": self.total,
            "noop": self.noop,
        }


def current_layout(engine: CorrelationEngine
                   ) -> tuple[int, list[int | None]]:
    """``(shard_count, tid -> shard | None)`` of a live engine.

    A monolithic engine is layout "one shard holds everything"; a
    :class:`~repro.shard.ShardedEngine` reports its real assignment.
    """
    from repro.shard.engine import ShardedEngine  # local: avoid cycle

    relation = engine.relation
    if isinstance(engine, ShardedEngine):
        return engine.shard_count, engine.assignment()
    assignment: list[int | None] = [
        0 if relation.is_live(tid) else None
        for tid in range(relation.tid_range)]
    return 1, assignment


def shard_skew(engine: CorrelationEngine) -> ShardSkew:
    """Live-tuple distribution across the engine's current shards."""
    count, assignment = current_layout(engine)
    counts = [0] * count
    for shard in assignment:
        if shard is not None:
            counts[shard] += 1
    total = sum(counts)
    ideal = total / count if count else 0.0
    max_ratio = (max(counts) / ideal) if total else 1.0
    return ShardSkew(counts=tuple(counts), total=total,
                     max_ratio=max_ratio)


def plan_rebalance(engine: CorrelationEngine, *,
                   target_shards: int | None = None) -> RebalancePlan:
    """A balanced round-robin layout over the engine's live tuples.

    Live tids are dealt to target shards in ascending tid order, so
    target shard sizes differ by at most one and the plan is a pure
    function of (relation state, target count) — two operators planning
    the same session get the identical layout.
    """
    count, assignment = current_layout(engine)
    if target_shards is None:
        target_shards = count
    if target_shards < 1:
        raise MaintenanceError(
            f"target_shards must be >= 1, got {target_shards}")
    live = [tid for tid, shard in enumerate(assignment)
            if shard is not None]
    target: list[int | None] = [None] * len(assignment)
    target_counts = [0] * target_shards
    moved = 0
    for position, tid in enumerate(live):
        shard = position % target_shards
        target[tid] = shard
        target_counts[shard] += 1
        if assignment[tid] != shard:
            moved += 1
    current_counts = [0] * count
    for shard in assignment:
        if shard is not None:
            current_counts[shard] += 1
    return RebalancePlan(
        current_shards=count,
        target_shards=target_shards,
        current_counts=tuple(current_counts),
        target_counts=tuple(target_counts),
        moved=moved,
        total=len(live),
        assignment=tuple(target))


def layout_document(document: dict, plan: RebalancePlan, *,
                    workers: int | None = None,
                    executor: str = "thread") -> dict:
    """A copy of a persistence snapshot with the plan's layout.

    Feeding the result to :func:`repro.core.persistence.restore`
    rebuilds the session's exact state under the *new* layout — and
    runs restore's full pattern-table and catalog verification against
    it, so a rebuild that would change any count fails before cutover.
    """
    rebuilt = dict(document)
    if plan.target_shards > 1:
        rebuilt["shards"] = {
            "count": plan.target_shards,
            "workers": workers,
            "executor": executor,
            "assignment": list(plan.assignment),
        }
    else:
        rebuilt.pop("shards", None)
    return rebuilt


def rebuild_with_plan(document: dict, plan: RebalancePlan, *,
                      workers: int | None = None,
                      executor: str = "thread",
                      generalizer=None) -> CorrelationEngine:
    """Build the replacement engine a plan cuts over to."""
    from repro.core import persistence  # local: persistence imports shard

    return persistence.restore(
        layout_document(document, plan, workers=workers,
                        executor=executor),
        generalizer=generalizer)


__all__ = [
    "RebalancePlan",
    "ShardSkew",
    "current_layout",
    "layout_document",
    "plan_rebalance",
    "rebuild_with_plan",
    "shard_skew",
]

"""The sharded correlation engine: partitioned mining with exact merge.

:class:`ShardedEngine` is a drop-in :class:`~repro.core.engine.CorrelationEngine`
whose relation is hash-partitioned by tid into N shard-local engines.
Each shard maintains its own substrate (relation slice, transaction
store, bitmap index, pattern table) with the ordinary engine machinery;
the sharded engine owns the *global* state every consumer reads — the
authoritative relation, the merged pattern table, the rule set, the
revision counter and the catalog — plus tid-translating views
(:mod:`repro.shard.views`) standing in for the monolithic
``engine.index`` / ``engine.database`` attributes.

Exactness comes from the SON partitioning argument
(:mod:`repro.mining.son`): every globally frequent pattern is locally
frequent in at least one shard, so the union of the shard tables is a
complete candidate set and one exact counting pass over the shard
bitmap indexes rebuilds the monolithic table entry for entry.  Because
each shard engine's incremental maintenance is itself exact, the same
merge stays exact after every routed update batch — a sharded engine's
rules and ``signature()`` are byte-identical to a monolithic engine's
at every point of any event stream.

Lifecycle (v8 — the whole pipeline is process-parallel, not just the
phase-1 search):

* :meth:`mine` — partition, bulk-encode each shard's transactions in
  one sequential interning pass (:func:`repro.shard.partition.encode_shards`;
  interning order is what keeps vocabulary ids deterministic), then
  with ``shard_executor="process"`` allocate one zeroed shared-memory
  segment laid out for every shard's pages and ship each shard's
  *encoded transaction lists* to worker processes that build their
  bitmap index, write the packed pages straight into the shared
  segment, and run the phase-1 vertical search — the parent never
  constructs a per-shard ``VerticalIndex``/``BitmapIndex`` on this
  path; it re-hydrates each shard's index from the worker-filled pages
  in one C-level pass.  Phase 2 then counts straight off the same
  pages.  Any platform that cannot run the pool degrades to the thread
  path; the answers are byte-identical either way;
* :meth:`apply_batch` (inherited) — compiles the global delta plan
  with all the usual guards; the overridden plan application routes
  per-shard sub-plans (:func:`repro.core.deltas.split_plan`).  On the
  process path each touched shard applies its substrate mutations
  parent-side (``apply_batch_substrate`` — same interning order as the
  thread path), repacks its pages, and re-mines its *complete* exact
  table in a pool worker; a maintained table equals the exact table at
  the keep floor, so the merge sees identical state either way.  One
  global re-merge, one revision bump;
* :meth:`close` — shut down the persistent worker pool and force-drop
  any shared segments; wired through service/server drain.  The engine
  stays usable (the pool restarts lazily).

Process resources are owned by :mod:`repro.shard.pool`: one
:class:`~repro.shard.pool.ShardPool` reused across ``mine()`` and every
routed flush, and one :class:`~repro.shard.pool.SegmentManager` whose
``release_all()`` guarantees no ``/dev/shm`` block survives an error —
including an adoption failure raised *after* the workers succeeded.
Every report carries a :class:`~repro.core.maintenance.PhaseTimings`
breakdown (partition / encode / build / mine / merge / refresh) so the
benchmarks can attribute scaling to phases instead of one opaque total.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import EngineConfig
from repro.core.deltas import DeltaPlan, split_plan
from repro.core.engine import CorrelationEngine, EncodedSubstrate
from repro.core.annotation_index import VerticalIndex
from repro.core.maintenance import (
    BatchReport,
    MaintenanceReport,
    PhaseTimings,
)
from repro.errors import MaintenanceError, MiningError
from repro.mining.bitmap import BitmapIndex
from repro.mining.constraints import FrozenRelevanceConstraint
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.itemsets import TransactionDatabase
from repro.mining.pages import BitmapPageSegment
from repro.mining.sketch import (
    Estimate,
    RuleEstimate,
    SketchIndex,
    combine_rule_estimate,
    sum_estimates,
)
from repro.mining.son import candidate_union, merge_counts
from repro.relation.relation import AnnotatedRelation
from repro.shard.partition import (
    Partitioner,
    encode_shards,
    modulo_partitioner,
    partition_relation,
    substrate_from_transactions,
)
from repro.shard.pool import SegmentManager, ShardPool, available_cpus
from repro.shard.views import ShardDatabaseView, ShardIndexView


def _mine_shard(task):
    """Thread-pool phase-1 worker.

    Module-level (not a lambda) so the exact same callable could be
    shipped to a process pool — and so tracebacks name it.
    """
    shard_engine, shard_substrate = task
    return shard_engine.mine(substrate=shard_substrate)


def _build_and_mine_shard(task):
    """Process-pool worker for the initial mine: build *and* search.

    Receives the shard's encoded transaction lists plus plain floor /
    constraint data, builds the bitmap index in this worker (the
    O(occurrences) pure-Python pass that used to serialize in the
    parent), writes the packed pages straight into the pre-allocated
    shared segment (the parent re-hydrates its shard index from them),
    then runs the identical phase-1 vertical search the thread path's
    substrate mine would run.  Returns ``(counts, sketch_payload,
    build_seconds, mine_seconds)`` — the count table, the shard's
    bottom-k sketch registry as plain data (built here, in one sweep
    next to the substrate, so the parent's approximate read tier never
    re-walks the tidsets), plus the worker-side phase timings for the
    report's per-shard breakdown.
    """
    (name, shard, transactions, min_count, annotation_like, max_length,
     sketch_k) = task
    segment = BitmapPageSegment.attach(name)
    try:
        build_started = time.perf_counter()
        index = BitmapIndex.from_transactions(transactions)
        mapping = index.as_mapping()
        segment.write_pages(shard, {item: mapping[item].bits
                                    for item in mapping})
        sketch_payload = SketchIndex.from_mapping(
            mapping, k=sketch_k).to_payload()
        build_seconds = time.perf_counter() - build_started
        mine_started = time.perf_counter()
        counts = mine_frequent_itemsets_vertical(
            (),
            min_count=min_count,
            constraint=FrozenRelevanceConstraint(annotation_like),
            max_length=max_length,
            index=mapping,
        )
        return (counts, sketch_payload, build_seconds,
                time.perf_counter() - mine_started)
    finally:
        segment.close()


def _mine_shard_from_pages(task):
    """Process-pool search worker over already-packed pages.

    Receives only plain picklable data — the segment *name*, the shard
    number, the shard's margined floor, the frozen annotation-like id
    snapshot and the length cap — attaches the shared segment, runs the
    identical vertical search the shard engine's substrate mine would
    run (same floor, same constraint decisions, same index bits, read
    zero-copy from the pages), and returns the small count table.  The
    pooled flush path re-mines each touched shard's complete table
    through this.
    """
    name, shard, min_count, annotation_like, max_length = task
    segment = BitmapPageSegment.attach(name)
    try:
        return mine_frequent_itemsets_vertical(
            (),
            min_count=min_count,
            constraint=FrozenRelevanceConstraint(annotation_like),
            max_length=max_length,
            index=segment.shard_mapping(shard),
        )
    finally:
        segment.close()


class ShardedEngine(CorrelationEngine):
    """Partitioned engines behind the monolithic engine's interface."""

    def __init__(self,
                 relation: AnnotatedRelation | None = None,
                 config: EngineConfig | None = None,
                 *,
                 partitioner: Partitioner | None = None,
                 **overrides) -> None:
        super().__init__(relation, config, **overrides)
        self.shard_count = self.config.shards
        self._partitioner = (partitioner if partitioner is not None
                             else modulo_partitioner(self.shard_count))
        self._shards: list[CorrelationEngine] = []
        #: Refcounted owner of every shared segment this engine creates;
        #: ``close()`` and the error paths force-drop through it, so no
        #: ``/dev/shm`` block can outlive the engine whatever raised.
        self._segments = SegmentManager()
        #: The persistent worker pool, created lazily on the first
        #: process-mode operation and reused across mine() and every
        #: routed flush until :meth:`close`.
        self._pool: ShardPool | None = None
        #: Shared bitmap-page segment alive only inside :meth:`mine`'s
        #: process-parallel path (phase 1 workers and the phase-2 merge
        #: read it); always released before mine() returns.
        self._segment: BitmapPageSegment | None = None
        #: shard -> local tid -> global tid (dense, grows with inserts).
        self._global_of: list[list[int]] = []
        #: global tid -> (shard, local tid); tombstones at partition
        #: time are owned by no shard and absent here.
        self._local_of: dict[int, tuple[int, int]] = {}
        # Global read views over the partitions, standing in for the
        # monolithic engine's maintained substrate attributes.
        self.index = ShardIndexView(self)
        self.database = ShardDatabaseView(self)

    # -- partition accessors (views and tests read these) ----------------------

    @property
    def shard_engines(self) -> list[CorrelationEngine]:
        """The shard-local engines, in shard order."""
        return self._shards

    def global_tids(self, shard: int) -> list[int]:
        """Local-tid -> global-tid map of one shard."""
        return self._global_of[shard]

    def locate(self, tid: int) -> tuple[int, int] | None:
        """(shard, local tid) owning a global tid; ``None`` for tuples
        no shard owns (tombstoned before partitioning)."""
        return self._local_of.get(tid)

    def shard_of(self, tid: int) -> int | None:
        located = self._local_of.get(tid)
        return located[0] if located is not None else None

    def assignment(self) -> list[int | None]:
        """Shard owning each global tid (``None`` = unowned), indexed
        by tid — the persistence format's shard layout."""
        out: list[int | None] = [None] * self.relation.tid_range
        for tid, (shard, _local) in self._local_of.items():
            out[tid] = shard
        return out

    def _workers(self) -> int:
        if self.config.shard_workers is not None:
            return self.config.shard_workers
        return max(1, min(self.shard_count, available_cpus()))

    def _shard_config(self) -> EngineConfig:
        """Shard engines are ordinary monolithic engines."""
        return self.config.replace(shards=1, shard_workers=None)

    # -- pooled resources -------------------------------------------------------

    def _ensure_pool(self) -> ShardPool:
        if self._pool is None:
            self._pool = ShardPool(workers=self._workers())
        return self._pool

    def _use_processes(self) -> bool:
        return (self.config.shard_executor == "process"
                and self._workers() > 1 and self.shard_count > 1)

    def close(self) -> None:
        """Release the persistent pool and every shared segment.

        Idempotent, and the engine stays usable: the next process-mode
        operation simply restarts the pool.  Services and the server's
        graceful drain call this for every hosted engine so no worker
        process or ``/dev/shm`` block outlives its tenant.
        """
        self._segment = None
        self._segments.release_all()
        if self._pool is not None:
            self._pool.close()

    # -- initial (partitioned) mining -------------------------------------------

    def mine(self, *, substrate=None) -> MaintenanceReport:
        """Partition, mine every shard (concurrently), merge exactly."""
        if substrate is not None:
            raise MaintenanceError(
                "a sharded engine builds its own per-shard substrates")
        started = time.perf_counter()
        phases = PhaseTimings()
        with phases.timed("partition"):
            if self.generalizer is not None:
                for row in self.relation:
                    self.relation.set_labels(
                        row.tid,
                        self.generalizer.labels_for(row.annotation_ids))

            relations, self._global_of, self._local_of = partition_relation(
                self.relation, self._partitioner, self.shard_count)
            self._shards = [
                CorrelationEngine(shard_relation, self._shard_config(),
                                  vocabulary=self.vocabulary)
                for shard_relation in relations
            ]
        # All interning happens in this sequential pass; the concurrent
        # builds and phase-1 mines below only read the shared vocabulary.
        with phases.timed("encode"):
            transactions_per_shard = encode_shards(relations, self.vocabulary)

        try:
            workers = self._workers()
            dispatched = False
            if self._use_processes():
                dispatched = self._mine_in_processes(transactions_per_shard,
                                                     phases)
            if not dispatched:
                with phases.timed("build"):
                    substrates = [
                        substrate_from_transactions(self.vocabulary,
                                                    transactions)
                        for transactions in transactions_per_shard
                    ]
                with phases.timed("mine"):
                    if workers > 1 and self.shard_count > 1:
                        with ThreadPoolExecutor(max_workers=workers) as pool:
                            # list() drains the iterator so any shard's
                            # exception surfaces here, not at garbage
                            # collection.
                            reports = list(pool.map(
                                _mine_shard, zip(self._shards, substrates)))
                    else:
                        reports = [
                            shard_engine.mine(substrate=shard_substrate)
                            for shard_engine, shard_substrate
                            in zip(self._shards, substrates)
                        ]
                phases.record_shards(
                    "mine",
                    [shard_report.duration_seconds
                     for shard_report in reports])

            self._mined = True
            self._relation_version = self.relation.version
            report = MaintenanceReport(event="mine", db_size=self.db_size,
                                       phases=phases)
            self._merge(report)
            self._revision += 1
            report.duration_seconds = time.perf_counter() - started
            self._finish(report)
            return report
        finally:
            self._release_segment()

    def _mine_in_processes(self, transactions_per_shard,
                           phases: PhaseTimings) -> bool:
        """Worker-built substrates: build + phase 1 on the shard pool.

        The parent computes each shard's page layout (item set and
        fixed page width), allocates one zeroed shared segment, and
        ships every shard's encoded transactions to a pool worker
        (:func:`_build_and_mine_shard`) that builds the bitmap index,
        fills its shard's pages in place — page regions are disjoint,
        so N writers need no synchronization — and runs the phase-1
        search.  The parent then re-hydrates each shard's
        ``VerticalIndex`` from the filled pages (one C-level
        ``int.from_bytes`` per item) and adopts index + counts via
        ``mine(substrate=..., counts=...)`` — every state transition
        after the search is then identical to the thread path, so the
        merged table and ``signature()`` are too.  The segment stays
        alive for the phase-2 merge; :meth:`mine` releases it.

        Returns ``False`` (degrade to threads, nothing mutated) when
        the platform cannot allocate shared memory or start/sustain
        the pool.  A *mining* failure inside a worker is not a platform
        problem and propagates, exactly as the thread path would raise
        it.
        """
        pool = self._ensure_pool()
        if not pool.start():
            return False
        build_started = time.perf_counter()
        layouts = [
            (sorted(frozenset().union(*transactions)) if transactions else (),
             (len(transactions) + 7) // 8)
            for transactions in transactions_per_shard
        ]
        try:
            self._segment = self._segments.adopt(
                BitmapPageSegment.allocate(layouts))
        except (OSError, MiningError):  # pragma: no cover - no /dev/shm
            return False
        phases.add("build", time.perf_counter() - build_started)
        annotation_like = frozenset(self.vocabulary.annotation_like_ids())
        tasks = [
            (self._segment.name, shard, transactions_per_shard[shard],
             shard_engine.thresholds.keep_count(shard_engine.db_size),
             annotation_like, shard_engine.max_length,
             self.config.sketch_k)
            for shard, shard_engine in enumerate(self._shards)
        ]
        with phases.timed("mine"):
            results = pool.run(_build_and_mine_shard, tasks)
        if results is None:
            # Pool never started or died under us (sandboxed fork,
            # missing sem support, OOM-killed worker): the shard
            # engines are untouched, so the thread path can take over.
            self._release_segment()
            return False
        with phases.timed("build"):
            for shard, shard_engine in enumerate(self._shards):
                counts, sketch_payload, _build, _mine = results[shard]
                mapping = self._segment.shard_mapping(shard)
                index = VerticalIndex.from_bits(
                    self.vocabulary,
                    {item: mapping[item].bits for item in mapping})
                database = TransactionDatabase.from_encoded(
                    self.vocabulary, transactions_per_shard[shard])
                shard_engine.mine(
                    substrate=EncodedSubstrate(database=database,
                                               index=index),
                    counts=counts)
                # Adopt the worker-built sketches after the substrate
                # they describe is installed; the observer then keeps
                # them fresh through every routed flush.
                shard_engine.adopt_sketches(SketchIndex.from_payload(
                    sketch_payload, k=self.config.sketch_k))
        phases.record_shards("build", [result[2] for result in results])
        phases.record_shards("mine", [result[3] for result in results])
        return True

    def _release_segment(self) -> None:
        """Release the initial-mine segment through the refcounted
        manager (idempotent; the last lease closes and unlinks)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            self._segments.release(segment.name)

    # -- the approximate read tier ----------------------------------------------

    def sketches(self) -> SketchIndex:
        raise MaintenanceError(
            "a sharded engine has no single sketch registry — estimates "
            "compose per-shard; use estimate_itemset / estimate_rule")

    @property
    def sketches_ready(self) -> bool:
        return all(shard.sketches_ready for shard in self._shards)

    def warm_sketches(self) -> None:
        for shard in self._shards:
            shard.warm_sketches()

    def sketch_cardinality(self, item: int) -> int:
        self._require_mined()
        return sum(shard.sketch_cardinality(item)
                   for shard in self._shards)

    def estimate_itemset(self, items, *, z: float = 2.0) -> Estimate:
        """Approximate global count: shard-local KMV estimates summed
        (tid spaces are disjoint, so values and bounds both add)."""
        self._require_mined()
        itemset = tuple(items)
        return sum_estimates(
            shard.estimate_itemset(itemset, z=z) for shard in self._shards)

    def estimate_rule(self, lhs, rhs: int, *, z: float = 2.0) -> RuleEstimate:
        """Approximate support/confidence/lift of ``lhs -> rhs`` from
        the per-shard registries (shared vocabulary: item ids need no
        translation; only tids are shard-local, and counts compose)."""
        self._require_mined()
        lhs_items = tuple(lhs)
        both = sum_estimates(
            shard.estimate_itemset(lhs_items + (rhs,), z=z)
            for shard in self._shards)
        lhs_estimate = sum_estimates(
            shard.estimate_itemset(lhs_items, z=z) for shard in self._shards)
        rhs_count = sum(shard.sketches().cardinality(rhs)
                        for shard in self._shards)
        return combine_rule_estimate(both, lhs_estimate, rhs_count,
                                     self.db_size)

    # -- the SON merge ----------------------------------------------------------

    def _merge(self, report) -> None:
        """Rebuild the global table from the shard states and re-derive
        the global rules (phase 2 of the SON protocol).  ``report`` is
        a :class:`MaintenanceReport` or :class:`BatchReport`."""
        with report.phases.timed("merge"):
            floor = self.thresholds.keep_count(self.db_size)
            union = candidate_union(
                shard.table for shard in self._shards)
            if self._segment is not None:
                # Initial process-parallel mine: count straight off the
                # shared pages.  They hold the same bits as the freshly
                # adopted shard indexes (the indexes were hydrated from
                # them and nothing has mutated since), so the merged
                # table is identical — without touching per-shard
                # Python state.
                shard_indexes = [self._segment.shard_mapping(shard)
                                 for shard in range(self.shard_count)]
            else:
                shard_indexes = [shard.index.as_mapping()
                                 for shard in self._shards]
            merged = merge_counts(union, shard_indexes, floor=floor)
            self.table.replace(merged)
        with report.phases.timed("refresh"):
            self._refresh_rules(report)

    # -- routed incremental maintenance ------------------------------------------

    def _apply_plan(self, plan: DeltaPlan) -> BatchReport:
        """Split the compiled plan into per-shard sub-plans, apply the
        global relation mutation once, run each touched shard's own
        batch — in pool workers on the process path, via the shard's
        dirty-scoped maintenance otherwise — then one global re-merge
        and revision bump.  The inherited :meth:`apply_batch` already
        compiled and validated the plan against the global relation."""
        started = time.perf_counter()
        batch = BatchReport(db_size=self.db_size)
        batch.audits = list(plan.audits)
        batch.plan_stats = plan.stats
        if len(plan.audits) == 1:
            batch.event = plan.audits[0].event
        else:
            batch.event = f"apply-batch[{len(plan.audits)}]"

        with batch.phases.timed("partition"):
            sub_plans, placements = split_plan(
                plan,
                locate=self._locate_existing,
                place=self._partitioner,
                next_local_tid=lambda shard: (
                    self._shards[shard].relation.tid_range),
                shard_count=self.shard_count,
            )
            self._apply_plan_to_relation(plan)
            for placement in placements:
                if placement.local_tid != len(
                        self._global_of[placement.shard]):
                    raise MaintenanceError(
                        f"local tid drift on shard {placement.shard}: "
                        f"placement says {placement.local_tid}, map says "
                        f"{len(self._global_of[placement.shard])}")
                self._global_of[placement.shard].append(placement.tid)
                self._local_of[placement.tid] = (placement.shard,
                                                 placement.local_tid)

        pooled = False
        if self._use_processes():
            pooled = self._apply_in_processes(sub_plans, batch)
        if not pooled:
            with batch.phases.timed("apply"):
                for shard, events in enumerate(sub_plans):
                    if not events:
                        continue
                    shard_report = self._shards[shard].apply_batch(events)
                    batch.shards_touched += 1
                    batch.case_reports.extend(shard_report.case_reports)
                    batch.patterns_dirty += shard_report.patterns_dirty

        batch.db_size = self.db_size
        self._merge(batch)
        self._revision += 1
        batch.duration_seconds = time.perf_counter() - started
        for event in plan.events:
            self.log.record(event)
        self._finish(batch)
        self._relation_version = self.relation.version
        return batch

    def _apply_in_processes(self, sub_plans, batch: BatchReport) -> bool:
        """Pooled flush: substrate mutations parent-side, shard tables
        re-mined exactly in pool workers.

        Each touched shard applies its sub-plan's *substrate* half via
        ``apply_batch_substrate`` — ascending shard order and identical
        interning calls keep the vocabulary byte-identical to the
        thread path — then its refreshed bitmap index is packed into a
        flush-scoped segment and a pool worker re-mines the shard's
        *complete* table at the shard keep floor
        (:func:`_mine_shard_from_pages`).  A maintained shard table is
        exactly the table of itemsets at/above that floor with exact
        counts (the invariant ``_finish`` enforces), so adopting the
        worker's table is indistinguishable from having run the
        maintenance walks, and the SON merge sees identical state.

        Pool availability is checked *before* any mutation, so a
        ``False`` return leaves the engine untouched for the thread
        path.  A pool that dies after mutations falls back to an
        inline parent re-mine over the same indexes — same search,
        same answer, no state to unwind.
        """
        pool = self._ensure_pool()
        touched = [shard for shard, events in enumerate(sub_plans) if events]
        if not touched or not pool.start():
            return False
        with batch.phases.timed("encode"):
            for shard in touched:
                shard_report = self._shards[shard].apply_batch_substrate(
                    sub_plans[shard])
                batch.shards_touched += 1
                batch.case_reports.extend(shard_report.case_reports)
        annotation_like = frozenset(self.vocabulary.annotation_like_ids())
        segment = None
        with batch.phases.timed("build"):
            try:
                segment = self._segments.adopt(BitmapPageSegment.pack(
                    [self._shards[shard].index.as_mapping()
                     for shard in touched]))
            except (OSError, MiningError):  # pragma: no cover - no /dev/shm
                segment = None
        try:
            tables = None
            with batch.phases.timed("mine"):
                if segment is not None:
                    tasks = [
                        (segment.name, position,
                         self._shards[shard].thresholds.keep_count(
                             self._shards[shard].db_size),
                         annotation_like, self._shards[shard].max_length)
                        for position, shard in enumerate(touched)
                    ]
                    tables = pool.run(_mine_shard_from_pages, tasks)
                if tables is None:
                    # The pool (or shared memory) died after the
                    # substrate mutations: recompute inline — the same
                    # vertical search over the same refreshed indexes.
                    tables = [self._remine_shard_inline(shard)
                              for shard in touched]
            for shard, table in zip(touched, tables):
                shard_engine = self._shards[shard]
                shard_engine.table.replace(table)
                batch.patterns_dirty += len(table)
                shard_engine._finish(MaintenanceReport(
                    event=batch.event, db_size=shard_engine.db_size))
        finally:
            if segment is not None:
                self._segments.release(segment.name)
        return True

    def _remine_shard_inline(self, shard: int):
        """Parent-side exact re-mine of one shard's complete table —
        the mid-flush fallback when the pool dies after mutations."""
        shard_engine = self._shards[shard]
        return mine_frequent_itemsets_vertical(
            (),
            min_count=shard_engine.thresholds.keep_count(
                shard_engine.db_size),
            constraint=shard_engine.constraint,
            max_length=shard_engine.max_length,
            index=shard_engine.index.as_mapping(),
        )

    def _locate_existing(self, tid: int) -> tuple[int, int]:
        located = self._local_of.get(tid)
        if located is None:
            # The plan compiler only routes ops against live tuples,
            # and every live tuple is owned by a shard.
            raise MaintenanceError(
                f"tuple {tid} is owned by no shard — partition maps "
                f"desynchronized from the relation")
        return located

    def _apply_plan_to_relation(self, plan: DeltaPlan) -> None:
        """Mirror of the monolithic plan application's *relation*
        mutations (no substrate work — the shards own that), so the
        authoritative global relation every reader sees stays exactly
        in step with per-event application.

        Must stay behaviourally in lockstep with the relation halves of
        ``CorrelationEngine._plan_inserts`` / ``_plan_annotation_adds``
        / ``_plan_annotation_removes`` / ``_plan_tuple_removals``
        (``set_labels``/``add_labels`` are no-op-safe, so the
        unconditional label mirrors here are equivalent to the guarded
        monolithic ones).  Drift desynchronizes the global relation
        from the shard relations and is caught by the differential
        suite's remine-equivalence checks and the audit parity test —
        both re-derive expectations from this relation.
        """
        relation = self.relation
        for planned in plan.inserts:
            tid = relation.insert(planned.values, planned.annotations)
            if tid != planned.tid:
                raise MaintenanceError(
                    f"tid drift: plan says {planned.tid}, "
                    f"relation says {tid}")
            if planned.elided:
                relation.delete(tid)
                continue
            if self.generalizer is not None:
                relation.set_labels(
                    tid,
                    self.generalizer.labels_for(
                        frozenset(planned.annotations)))
        for tid, annotation_ids in plan.annotation_adds.items():
            for annotation_id in annotation_ids:
                relation.annotate(tid, annotation_id)
            if self.generalizer is not None:
                row = relation.tuple(tid)
                relation.add_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
        for tid, annotation_ids in plan.annotation_removes.items():
            for annotation_id in annotation_ids:
                relation.detach(tid, annotation_id)
            if self.generalizer is not None:
                row = relation.tuple(tid)
                relation.set_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
        for tid in plan.deletions:
            relation.delete(tid)

    # -- verification -------------------------------------------------------------

    def _finish(self, report) -> None:
        """Inherited table validation plus the partition-sum invariant:
        the shards' live tuples must account for exactly the global
        relation's."""
        if self.validate and self._shards:
            shard_total = sum(shard.db_size for shard in self._shards)
            if shard_total != self.db_size:
                raise MaintenanceError(
                    f"shard live counts sum to {shard_total} but the "
                    f"global relation holds {self.db_size} after event "
                    f"{report.event!r}")
        super()._finish(report)

"""The sharded correlation engine: partitioned mining with exact merge.

:class:`ShardedEngine` is a drop-in :class:`~repro.core.engine.CorrelationEngine`
whose relation is hash-partitioned by tid into N shard-local engines.
Each shard maintains its own substrate (relation slice, transaction
store, bitmap index, pattern table) with the ordinary engine machinery;
the sharded engine owns the *global* state every consumer reads — the
authoritative relation, the merged pattern table, the rule set, the
revision counter and the catalog — plus tid-translating views
(:mod:`repro.shard.views`) standing in for the monolithic
``engine.index`` / ``engine.database`` attributes.

Exactness comes from the SON partitioning argument
(:mod:`repro.mining.son`): every globally frequent pattern is locally
frequent in at least one shard, so the union of the shard tables is a
complete candidate set and one exact counting pass over the shard
bitmap indexes rebuilds the monolithic table entry for entry.  Because
each shard engine's incremental maintenance is itself exact, the same
merge stays exact after every routed update batch — a sharded engine's
rules and ``signature()`` are byte-identical to a monolithic engine's
at every point of any event stream.

Lifecycle:

* :meth:`mine` — partition, bulk-encode one substrate per shard
  (:mod:`repro.shard.partition`), run the phase-1 local mines
  concurrently (``EngineConfig.shard_workers`` on the
  ``EngineConfig.shard_executor`` pool), then merge.  With
  ``shard_executor="process"`` every shard's bitmap index is packed
  into one shared-memory segment (:mod:`repro.mining.pages`); worker
  processes receive nothing but the segment *name* plus plain floor /
  constraint data, attach, run the identical vertical search zero-copy
  over the pages, and return the small per-shard count tables, which
  the shard engines adopt — escaping the GIL without pickling an index
  in either direction.  Phase 2 then counts straight off the same
  pages.  Any platform that cannot run the pool degrades to the thread
  path; the answers are byte-identical either way;
* :meth:`apply_batch` (inherited) — compiles the global delta plan
  with all the usual guards, then the overridden plan application
  routes per-shard sub-plans (:func:`repro.core.deltas.split_plan`):
  one dirty-scoped refresh inside each touched shard, one global
  re-merge, one revision bump.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import EngineConfig
from repro.core.deltas import DeltaPlan, split_plan
from repro.core.engine import CorrelationEngine
from repro.core.maintenance import BatchReport, MaintenanceReport
from repro.errors import MaintenanceError, MiningError
from repro.mining.constraints import FrozenRelevanceConstraint
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.pages import BitmapPageSegment
from repro.mining.son import candidate_union, merge_counts
from repro.relation.relation import AnnotatedRelation
from repro.shard.partition import (
    Partitioner,
    modulo_partitioner,
    partition_relation,
    substrates_for,
)
from repro.shard.views import ShardDatabaseView, ShardIndexView


def _mine_shard(task):
    """Thread-pool phase-1 worker.

    Module-level (not a lambda) so the exact same callable could be
    shipped to a process pool — and so tracebacks name it.
    """
    shard_engine, shard_substrate = task
    return shard_engine.mine(substrate=shard_substrate)


def _mine_shard_from_pages(task):
    """Process-pool phase-1 worker.

    Receives only plain picklable data — the segment *name*, the shard
    number, the shard's margined floor, the frozen annotation-like id
    snapshot and the length cap — attaches the shared segment, runs the
    identical vertical search the shard engine's substrate mine would
    run (same floor, same constraint decisions, same index bits, read
    zero-copy from the pages), and returns the small count table.
    """
    name, shard, min_count, annotation_like, max_length = task
    segment = BitmapPageSegment.attach(name)
    try:
        return mine_frequent_itemsets_vertical(
            (),
            min_count=min_count,
            constraint=FrozenRelevanceConstraint(annotation_like),
            max_length=max_length,
            index=segment.shard_mapping(shard),
        )
    finally:
        segment.close()


class ShardedEngine(CorrelationEngine):
    """Partitioned engines behind the monolithic engine's interface."""

    def __init__(self,
                 relation: AnnotatedRelation | None = None,
                 config: EngineConfig | None = None,
                 *,
                 partitioner: Partitioner | None = None,
                 **overrides) -> None:
        super().__init__(relation, config, **overrides)
        self.shard_count = self.config.shards
        self._partitioner = (partitioner if partitioner is not None
                             else modulo_partitioner(self.shard_count))
        self._shards: list[CorrelationEngine] = []
        #: Shared bitmap-page segment alive only inside :meth:`mine`'s
        #: process-parallel path (phase 1 workers and the phase-2 merge
        #: read it); always released before mine() returns.
        self._segment: BitmapPageSegment | None = None
        #: shard -> local tid -> global tid (dense, grows with inserts).
        self._global_of: list[list[int]] = []
        #: global tid -> (shard, local tid); tombstones at partition
        #: time are owned by no shard and absent here.
        self._local_of: dict[int, tuple[int, int]] = {}
        # Global read views over the partitions, standing in for the
        # monolithic engine's maintained substrate attributes.
        self.index = ShardIndexView(self)
        self.database = ShardDatabaseView(self)

    # -- partition accessors (views and tests read these) ----------------------

    @property
    def shard_engines(self) -> list[CorrelationEngine]:
        """The shard-local engines, in shard order."""
        return self._shards

    def global_tids(self, shard: int) -> list[int]:
        """Local-tid -> global-tid map of one shard."""
        return self._global_of[shard]

    def locate(self, tid: int) -> tuple[int, int] | None:
        """(shard, local tid) owning a global tid; ``None`` for tuples
        no shard owns (tombstoned before partitioning)."""
        return self._local_of.get(tid)

    def shard_of(self, tid: int) -> int | None:
        located = self._local_of.get(tid)
        return located[0] if located is not None else None

    def assignment(self) -> list[int | None]:
        """Shard owning each global tid (``None`` = unowned), indexed
        by tid — the persistence format's shard layout."""
        out: list[int | None] = [None] * self.relation.tid_range
        for tid, (shard, _local) in self._local_of.items():
            out[tid] = shard
        return out

    def _workers(self) -> int:
        if self.config.shard_workers is not None:
            return self.config.shard_workers
        return max(1, min(self.shard_count, os.cpu_count() or 1))

    def _shard_config(self) -> EngineConfig:
        """Shard engines are ordinary monolithic engines."""
        return self.config.replace(shards=1, shard_workers=None)

    # -- initial (partitioned) mining -------------------------------------------

    def mine(self, *, substrate=None) -> MaintenanceReport:
        """Partition, mine every shard (concurrently), merge exactly."""
        if substrate is not None:
            raise MaintenanceError(
                "a sharded engine builds its own per-shard substrates")
        started = time.perf_counter()
        if self.generalizer is not None:
            for row in self.relation:
                self.relation.set_labels(
                    row.tid, self.generalizer.labels_for(row.annotation_ids))

        relations, self._global_of, self._local_of = partition_relation(
            self.relation, self._partitioner, self.shard_count)
        self._shards = [
            CorrelationEngine(shard_relation, self._shard_config(),
                              vocabulary=self.vocabulary)
            for shard_relation in relations
        ]
        # All interning happens in this sequential pass; the concurrent
        # phase-1 mines below only read the shared vocabulary.
        substrates = substrates_for(relations, self.vocabulary)

        try:
            workers = self._workers()
            if workers > 1 and self.shard_count > 1:
                dispatched = False
                if self.config.shard_executor == "process":
                    dispatched = self._mine_in_processes(substrates, workers)
                if not dispatched:
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        # list() drains the iterator so any shard's
                        # exception surfaces here, not at garbage
                        # collection.
                        list(pool.map(_mine_shard,
                                      zip(self._shards, substrates)))
            else:
                for shard_engine, shard_substrate in zip(self._shards,
                                                         substrates):
                    shard_engine.mine(substrate=shard_substrate)

            self._mined = True
            self._relation_version = self.relation.version
            report = MaintenanceReport(event="mine", db_size=self.db_size)
            self._merge(report)
            self._revision += 1
            report.duration_seconds = time.perf_counter() - started
            self._finish(report)
            return report
        finally:
            self._release_segment()

    def _mine_in_processes(self, substrates, workers: int) -> bool:
        """Phase 1 on a process pool over shared bitmap pages.

        Packs every shard's bitmap index into one segment, maps the
        shards over worker processes (:func:`_mine_shard_from_pages`),
        and adopts the returned count tables into the shard engines via
        ``mine(substrate=..., counts=...)`` — every state transition
        after the search is then identical to the thread path, so the
        merged table and ``signature()`` are too.  The segment stays
        alive for the phase-2 merge; :meth:`mine` releases it.

        Returns ``False`` (degrade to threads, nothing mutated) when
        the platform cannot allocate shared memory or start the pool.
        A *mining* failure inside a worker is not a platform problem
        and propagates, exactly as the thread path would raise it.
        """
        try:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:  # pragma: no cover - no _multiprocessing
            return False
        try:
            self._segment = BitmapPageSegment.pack(
                [substrate.index.as_mapping() for substrate in substrates])
        except (OSError, MiningError):  # pragma: no cover - no /dev/shm
            return False
        annotation_like = frozenset(self.vocabulary.annotation_like_ids())
        tasks = [
            (self._segment.name, shard,
             shard_engine.thresholds.keep_count(shard_engine.db_size),
             annotation_like, shard_engine.max_length)
            for shard, shard_engine in enumerate(self._shards)
        ]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                tables = list(pool.map(_mine_shard_from_pages, tasks))
        except (OSError, BrokenProcessPool, pickle.PicklingError):
            # Pool never started or died under us (sandboxed fork,
            # missing sem support, OOM-killed worker): the shard
            # engines are untouched, so the thread path can take over.
            self._release_segment()
            return False
        for shard_engine, shard_substrate, table in zip(
                self._shards, substrates, tables):
            shard_engine.mine(substrate=shard_substrate, counts=table)
        return True

    def _release_segment(self) -> None:
        """Tear down the shared segment (idempotent; owner unlinks)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.close()
            segment.unlink()

    # -- the SON merge ----------------------------------------------------------

    def _merge(self, report) -> None:
        """Rebuild the global table from the shard states and re-derive
        the global rules (phase 2 of the SON protocol).  ``report`` is
        a :class:`MaintenanceReport` or :class:`BatchReport`."""
        floor = self.thresholds.keep_count(self.db_size)
        union = candidate_union(
            shard.table for shard in self._shards)
        if self._segment is not None:
            # Initial process-parallel mine: count straight off the
            # shared pages.  They hold the same bits as the freshly
            # adopted shard indexes (they were packed from them and
            # nothing has mutated since), so the merged table is
            # identical — without touching per-shard Python state.
            shard_indexes = [self._segment.shard_mapping(shard)
                             for shard in range(self.shard_count)]
        else:
            shard_indexes = [shard.index.as_mapping()
                             for shard in self._shards]
        merged = merge_counts(union, shard_indexes, floor=floor)
        self.table.replace(merged)
        self._refresh_rules(report)

    # -- routed incremental maintenance ------------------------------------------

    def _apply_plan(self, plan: DeltaPlan) -> BatchReport:
        """Split the compiled plan into per-shard sub-plans, apply the
        global relation mutation once, run each touched shard's own
        (dirty-scoped) batch, then one global re-merge and revision
        bump.  The inherited :meth:`apply_batch` already compiled and
        validated the plan against the global relation."""
        started = time.perf_counter()
        batch = BatchReport(db_size=self.db_size)
        batch.audits = list(plan.audits)
        batch.plan_stats = plan.stats
        if len(plan.audits) == 1:
            batch.event = plan.audits[0].event
        else:
            batch.event = f"apply-batch[{len(plan.audits)}]"

        sub_plans, placements = split_plan(
            plan,
            locate=self._locate_existing,
            place=self._partitioner,
            next_local_tid=lambda shard: (
                self._shards[shard].relation.tid_range),
            shard_count=self.shard_count,
        )
        self._apply_plan_to_relation(plan)
        for placement in placements:
            if placement.local_tid != len(self._global_of[placement.shard]):
                raise MaintenanceError(
                    f"local tid drift on shard {placement.shard}: "
                    f"placement says {placement.local_tid}, map says "
                    f"{len(self._global_of[placement.shard])}")
            self._global_of[placement.shard].append(placement.tid)
            self._local_of[placement.tid] = (placement.shard,
                                             placement.local_tid)

        for shard, events in enumerate(sub_plans):
            if not events:
                continue
            shard_report = self._shards[shard].apply_batch(events)
            batch.shards_touched += 1
            batch.case_reports.extend(shard_report.case_reports)
            batch.patterns_dirty += shard_report.patterns_dirty

        batch.db_size = self.db_size
        self._merge(batch)
        self._revision += 1
        batch.duration_seconds = time.perf_counter() - started
        for event in plan.events:
            self.log.record(event)
        self._finish(batch)
        self._relation_version = self.relation.version
        return batch

    def _locate_existing(self, tid: int) -> tuple[int, int]:
        located = self._local_of.get(tid)
        if located is None:
            # The plan compiler only routes ops against live tuples,
            # and every live tuple is owned by a shard.
            raise MaintenanceError(
                f"tuple {tid} is owned by no shard — partition maps "
                f"desynchronized from the relation")
        return located

    def _apply_plan_to_relation(self, plan: DeltaPlan) -> None:
        """Mirror of the monolithic plan application's *relation*
        mutations (no substrate work — the shards own that), so the
        authoritative global relation every reader sees stays exactly
        in step with per-event application.

        Must stay behaviourally in lockstep with the relation halves of
        ``CorrelationEngine._plan_inserts`` / ``_plan_annotation_adds``
        / ``_plan_annotation_removes`` / ``_plan_tuple_removals``
        (``set_labels``/``add_labels`` are no-op-safe, so the
        unconditional label mirrors here are equivalent to the guarded
        monolithic ones).  Drift desynchronizes the global relation
        from the shard relations and is caught by the differential
        suite's remine-equivalence checks and the audit parity test —
        both re-derive expectations from this relation.
        """
        relation = self.relation
        for planned in plan.inserts:
            tid = relation.insert(planned.values, planned.annotations)
            if tid != planned.tid:
                raise MaintenanceError(
                    f"tid drift: plan says {planned.tid}, "
                    f"relation says {tid}")
            if planned.elided:
                relation.delete(tid)
                continue
            if self.generalizer is not None:
                relation.set_labels(
                    tid,
                    self.generalizer.labels_for(
                        frozenset(planned.annotations)))
        for tid, annotation_ids in plan.annotation_adds.items():
            for annotation_id in annotation_ids:
                relation.annotate(tid, annotation_id)
            if self.generalizer is not None:
                row = relation.tuple(tid)
                relation.add_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
        for tid, annotation_ids in plan.annotation_removes.items():
            for annotation_id in annotation_ids:
                relation.detach(tid, annotation_id)
            if self.generalizer is not None:
                row = relation.tuple(tid)
                relation.set_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
        for tid in plan.deletions:
            relation.delete(tid)

    # -- verification -------------------------------------------------------------

    def _finish(self, report) -> None:
        """Inherited table validation plus the partition-sum invariant:
        the shards' live tuples must account for exactly the global
        relation's."""
        if self.validate and self._shards:
            shard_total = sum(shard.db_size for shard in self._shards)
            if shard_total != self.db_size:
                raise MaintenanceError(
                    f"shard live counts sum to {shard_total} but the "
                    f"global relation holds {self.db_size} after event "
                    f"{report.event!r}")
        super()._finish(report)

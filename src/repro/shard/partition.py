"""Hash-partitioning a relation and bulk-building shard substrates.

Two jobs live here, both on the sharded engine's critical path:

* :func:`partition_relation` — split a relation's live tuples into N
  shard-local relations by a tid partitioner, producing the global/local
  tid maps the sharded engine routes updates and serves reads through;
* :func:`build_substrate` — encode one shard's tuples into a
  :class:`~repro.core.engine.EncodedSubstrate` in a single bulk pass.

The bulk encoder is why a sharded initial mine beats the monolithic
one even before any concurrency: the engine's per-tuple
``encode_tuple`` pays an ``Item`` dataclass construction plus a
vocabulary hash probe *per token occurrence*, while this pass interns
each distinct token once and then resolves occurrences through plain
``str -> int`` dictionaries (:class:`TokenInterner`).  One interner is
shared by all shards of an engine, so the shared vocabulary is
populated exactly once and the concurrent phase-1 mines only ever read
it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.annotation_index import VerticalIndex
from repro.core.engine import EncodedSubstrate
from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary, TransactionDatabase
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import opaque_token

#: Maps a global tid to the shard that owns it.
Partitioner = Callable[[int], int]


def modulo_partitioner(count: int) -> Partitioner:
    """The default layout: ``tid % count`` (uniform for dense tids)."""
    def shard_of(tid: int) -> int:
        return tid % count
    return shard_of


class TokenInterner:
    """Plain-dict token caches in front of an :class:`ItemVocabulary`.

    Resolving a token costs one string-dict lookup; only the first
    occurrence of a distinct token reaches the vocabulary's
    ``Item``-keyed interning.  Not thread-safe — the sharded engine
    completes all interning before its concurrent mining phase.
    """

    __slots__ = ("vocabulary", "_data", "_annotations", "_labels")

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self.vocabulary = vocabulary
        self._data: dict[str, int] = {}
        self._annotations: dict[str, int] = {}
        self._labels: dict[str, int] = {}

    def data(self, token: str) -> int:
        item_id = self._data.get(token)
        if item_id is None:
            item_id = self.vocabulary.intern_data(token)
            self._data[token] = item_id
        return item_id

    def annotation(self, token: str) -> int:
        item_id = self._annotations.get(token)
        if item_id is None:
            item_id = self.vocabulary.intern_annotation(token)
            self._annotations[token] = item_id
        return item_id

    def label(self, token: str) -> int:
        item_id = self._labels.get(token)
        if item_id is None:
            item_id = self.vocabulary.intern_label(token)
            self._labels[token] = item_id
        return item_id


def partition_relation(relation: AnnotatedRelation,
                       shard_of: Partitioner,
                       count: int,
                       ) -> tuple[list[AnnotatedRelation],
                                  list[list[int]],
                                  dict[int, tuple[int, int]]]:
    """Split the live tuples of ``relation`` into ``count`` shards.

    Returns ``(shard_relations, global_of, local_of)`` where
    ``global_of[shard][local_tid]`` is the owning global tid and
    ``local_of[global_tid] == (shard, local_tid)``.  Tombstoned global
    tuples are owned by no shard (they carry no items and can never be
    referenced by a future event).
    """
    tids_per_shard: list[list[int]] = [[] for _ in range(count)]
    local_of: dict[int, tuple[int, int]] = {}
    for tid in relation.tids():
        shard = shard_of(tid)
        if not isinstance(shard, int) or not 0 <= shard < count:
            raise MaintenanceError(
                f"partitioner placed tid {tid} on shard {shard!r}, "
                f"outside 0..{count - 1}")
        local_of[tid] = (shard, len(tids_per_shard[shard]))
        tids_per_shard[shard].append(tid)
    shards = [relation.subset(tids) for tids in tids_per_shard]
    return shards, tids_per_shard, local_of


def encode_relation(relation: AnnotatedRelation,
                    interner: TokenInterner,
                    *,
                    include_labels: bool = True) -> list[frozenset[int]]:
    """Bulk-encode every tuple of a (freshly partitioned, all-live)
    shard relation into item-id transactions.

    Produces exactly the transactions the engine's per-tuple
    ``encode_tuple`` loop would — same items, same tid alignment — so
    a shard mine over these equals a shard mine over the slow path.
    Tuple-order interning keeps vocabulary ids deterministic, which is
    why this pass stays sequential in the parent even when substrate
    *construction* moves into worker processes.
    """
    schema = relation.schema
    data = interner.data
    annotation = interner.annotation
    label = interner.label
    transactions = []
    for row in relation:
        if schema is None:
            ids = [data(opaque_token(value)) for value in row.values]
        else:
            ids = [data(schema.data_token(position, value))
                   for position, value in enumerate(row.values)]
        for annotation_id in row.annotation_ids:
            ids.append(annotation(annotation_id))
        if include_labels:
            for label_token in row.labels:
                ids.append(label(label_token))
        transactions.append(frozenset(ids))
    return transactions


def substrate_from_transactions(vocabulary: ItemVocabulary,
                                transactions: list[frozenset[int]],
                                ) -> EncodedSubstrate:
    """Materialize a mining substrate from pre-encoded transactions."""
    database = TransactionDatabase.from_encoded(vocabulary, transactions)
    index = VerticalIndex.from_transactions(vocabulary, transactions)
    return EncodedSubstrate(database=database, index=index)


def build_substrate(relation: AnnotatedRelation,
                    interner: TokenInterner,
                    *,
                    include_labels: bool = True) -> EncodedSubstrate:
    """Bulk-encode one shard relation into a mining substrate.

    The interner's vocabulary becomes the substrate's.
    """
    transactions = encode_relation(relation, interner,
                                   include_labels=include_labels)
    return substrate_from_transactions(interner.vocabulary, transactions)


def encode_shards(shards: Iterable[AnnotatedRelation],
                  vocabulary: ItemVocabulary) -> list[list[frozenset[int]]]:
    """Encoded transactions per shard, sharing one interning pass.

    This is the parent-side half of worker-built substrates: interning
    is ordered (shard 0 first, tuple order within a shard) so the
    vocabulary is byte-identical to the sequential path, while the
    O(occurrences) bitmap builds the transactions feed can run
    anywhere.
    """
    interner = TokenInterner(vocabulary)
    return [encode_relation(shard, interner) for shard in shards]


def substrates_for(shards: Iterable[AnnotatedRelation],
                   vocabulary: ItemVocabulary) -> list[EncodedSubstrate]:
    """One substrate per shard relation, sharing one interning pass."""
    interner = TokenInterner(vocabulary)
    return [build_substrate(shard, interner) for shard in shards]

"""The persistent shard pool: a long-lived process pool plus a
refcounted shared-segment manager.

PR 7 started a fresh ``ProcessPoolExecutor`` inside every process-mode
``mine()`` and tore it down before returning — correct, but the worker
spawn cost recurs per operation and routed ``apply_batch`` flushes
never escaped the GIL at all.  This module gives
:class:`~repro.shard.engine.ShardedEngine` two long-lived resources:

* :class:`ShardPool` — one ``ProcessPoolExecutor`` reused across the
  initial mine and every routed flush.  The pool is started lazily on
  the first process-mode operation, degrades exactly like PR 7 (a
  platform that cannot start or sustain the pool makes :meth:`ShardPool.run`
  return ``None`` and the caller falls back to the thread path; a
  genuine task error propagates), and is shut down by an explicit
  ``close()`` wired through engine → service → server drain.  A
  ``weakref.finalize`` net plus an ``atexit`` sweep reap executors
  whose owners forgot, so no worker process can outlive the session.
* :class:`SegmentManager` — refcounted ownership of the shared-memory
  bitmap segments an engine currently serves from.  Every code path
  that adopts a segment holds a lease; releasing the last lease closes
  and unlinks it.  ``release_all()`` (engine ``close()``/teardown)
  force-drops everything, so an error *after* a successful worker pass
  — e.g. inside count-table adoption — cannot strand a ``/dev/shm``
  block however the operation exits.

Worker sizing respects ``os.process_cpu_count()`` (affinity-aware,
Python 3.13+) before ``os.cpu_count()`` — a containerized CI box with
a restricted CPU mask must not oversubscribe (:func:`available_cpus`).
"""

from __future__ import annotations

import atexit
import os
import pickle
import weakref
from collections.abc import Callable, Iterable, Sequence

from repro.mining.pages import BitmapPageSegment

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - no _multiprocessing
    class BrokenProcessPool(Exception):
        """Stand-in so the except clauses below stay importable."""


def available_cpus() -> int:
    """Usable CPU count: ``os.process_cpu_count()`` (the scheduling
    affinity mask, Python 3.13+) when available, else ``os.cpu_count()``,
    floored at 1."""
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else None
    if count is None:
        count = os.cpu_count()
    return count if count else 1


class SegmentManager:
    """Refcounted registry of the shared segments one engine owns.

    Leases are plain counts keyed by segment name: :meth:`adopt`
    installs a segment with one lease, :meth:`retain`/:meth:`release`
    move the count, and the last release closes the segment and (for
    owned segments) unlinks the ``/dev/shm`` block.  :meth:`release_all`
    is the teardown hammer — engine ``close()`` and error paths call
    it so nothing survives the owner.
    """

    __slots__ = ("_segments",)

    def __init__(self) -> None:
        #: name -> [segment, lease count]
        self._segments: dict[str, list] = {}

    def adopt(self, segment: BitmapPageSegment) -> BitmapPageSegment:
        """Start managing ``segment`` with one lease; returns it."""
        self._segments[segment.name] = [segment, 1]
        return segment

    def retain(self, name: str) -> None:
        self._segments[name][1] += 1

    def release(self, name: str) -> None:
        """Drop one lease; the last lease tears the segment down.
        Unknown names are ignored (idempotent error-path teardown)."""
        entry = self._segments.get(name)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self._segments[name]
            self._destroy(entry[0])

    def release_all(self) -> None:
        """Force-drop every lease and destroy every segment."""
        segments, self._segments = self._segments, {}
        for segment, _count in segments.values():
            self._destroy(segment)

    @staticmethod
    def _destroy(segment: BitmapPageSegment) -> None:
        segment.close()
        if segment.is_owner:
            segment.unlink()

    def live(self) -> tuple[str, ...]:
        """Names currently under management (test hook)."""
        return tuple(sorted(self._segments))

    def __len__(self) -> int:
        return len(self._segments)


class _ExecutorSlot:
    """Mutable executor holder a finalizer can reach without keeping
    the pool (and through it the engine) alive."""

    __slots__ = ("executor",)

    def __init__(self) -> None:
        self.executor = None


#: Slots of every pool constructed this session — the leak hook counts
#: the ones with a running executor; the atexit net shuts them down.
_LIVE_SLOTS: set[_ExecutorSlot] = set()


def live_pool_count() -> int:
    """Number of shard pools with a running executor (test hook: after
    every ``close()``/drain this must be 0 — a nonzero value is leaked
    worker processes)."""
    return sum(1 for slot in _LIVE_SLOTS if slot.executor is not None)


def _close_slot(slot: _ExecutorSlot) -> None:
    executor, slot.executor = slot.executor, None
    _LIVE_SLOTS.discard(slot)
    if executor is not None:
        executor.shutdown(wait=True)


def shutdown_live_pools() -> None:
    """Shut down every still-running pool executor (atexit net and the
    test fixtures' cross-test isolation sweep)."""
    for slot in list(_LIVE_SLOTS):
        try:
            _close_slot(slot)
        except Exception:  # pragma: no cover - best-effort net
            pass


atexit.register(shutdown_live_pools)


class ShardPool:
    """A long-lived process pool one sharded engine dispatches through.

    The executor starts lazily on the first :meth:`run` (or
    :meth:`start`) and then persists across operations until
    :meth:`close`.  Platform failures never propagate: a pool that
    cannot start stays *broken* (cached — the platform will not grow
    process support mid-session) and a pool that dies under a map
    (sandboxed fork, OOM-killed worker) is discarded so the next
    operation may retry; in both cases the caller sees ``None`` and
    falls back to threads.  Genuine task errors propagate exactly as
    the thread path would raise them.
    """

    __slots__ = ("workers", "_slot", "_broken", "__weakref__")

    def __init__(self, *, workers: int | None = None) -> None:
        self.workers = workers if workers is not None else available_cpus()
        self._slot = _ExecutorSlot()
        self._broken = False
        # Reap the executor when the owning engine (hence this pool) is
        # collected without an explicit close() — tests and the CI
        # smoke assert on live_pool_count(), and a leaked executor
        # means leaked worker processes.
        weakref.finalize(self, _close_slot, self._slot)

    def start(self) -> bool:
        """Ensure the executor is running; ``False`` when the platform
        cannot run a process pool (the caller should use threads)."""
        if self._broken:
            return False
        if self._slot.executor is not None:
            return True
        try:
            # Late attribute lookup on the module: the fallback tests
            # (and constrained platforms) replace the class itself.
            import concurrent.futures

            self._slot.executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
        except (ImportError, OSError, ValueError):
            self._broken = True
            return False
        _LIVE_SLOTS.add(self._slot)
        return True

    @property
    def active(self) -> bool:
        return self._slot.executor is not None

    def run(self, fn: Callable, tasks: Sequence | Iterable) -> list | None:
        """Map ``tasks`` over the pool; ``None`` means the platform
        failed (nothing ran to completion — fall back to threads or a
        parent-side recompute).  Task errors propagate."""
        if not self.start():
            return None
        try:
            return list(self._slot.executor.map(fn, tasks))
        except (OSError, BrokenProcessPool, pickle.PicklingError):
            # The pool died under us; discard it so the next operation
            # starts fresh instead of mapping into a corpse.
            self._discard()
            return None

    def _discard(self) -> None:
        executor, self._slot.executor = self._slot.executor, None
        _LIVE_SLOTS.discard(self._slot)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the executor down and wait for its workers (idempotent;
        the pool may be started again afterwards)."""
        _close_slot(self._slot)

"""Global read views over a sharded engine's partitions.

Exploitation, explain, audit and reporting all read two engine
attributes directly: ``engine.index`` (the vertical index) and
``engine.database`` (the transaction store), both addressed by global
tid.  A sharded engine keeps neither globally — each partition owns its
slice — so these adapters re-expose the shard state behind the same
read APIs, translating between global and shard-local tids through the
engine's partition maps.  They are views, not copies: every answer is
computed from the live shard state at call time, and they expose no
mutators (all writes flow through the engine's routed plans).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mining.itemsets import Itemset, Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.engine import ShardedEngine


class ShardIndexView:
    """The :class:`~repro.core.annotation_index.VerticalIndex` read API
    over all partitions, in global tids."""

    __slots__ = ("_engine",)

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine

    # -- tid-translating queries ---------------------------------------------

    def tids(self, item: int) -> frozenset[int]:
        out: list[int] = []
        for shard, engine in enumerate(self._engine.shard_engines):
            globals_of = self._engine.global_tids(shard)
            out.extend(globals_of[local] for local in engine.index.tids(item))
        return frozenset(out)

    def tids_of_itemset(self, itemset: Itemset) -> set[int]:
        out: set[int] = set()
        for shard, engine in enumerate(self._engine.shard_engines):
            globals_of = self._engine.global_tids(shard)
            out.update(globals_of[local]
                       for local in engine.index.tids_of_itemset(itemset))
        return out

    # -- aggregate counts -----------------------------------------------------

    def frequency(self, item: int) -> int:
        return sum(engine.index.frequency(item)
                   for engine in self._engine.shard_engines)

    def count(self, itemset: Itemset, *, db_size: int | None = None) -> int:
        if not itemset:
            if db_size is None:
                raise ValueError(
                    "db_size required to count the empty itemset")
            return db_size
        return sum(engine.index.count(itemset)
                   for engine in self._engine.shard_engines)

    def annotation_frequencies(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for engine in self._engine.shard_engines:
            for item, count in engine.index.annotation_frequencies().items():
                merged[item] = merged.get(item, 0) + count
        return merged

    def frequent_items(self, min_count: int, *,
                       annotation_like_only: bool = False) -> list[int]:
        totals: dict[int, int] = {}
        for engine in self._engine.shard_engines:
            for item in engine.index.items():
                totals[item] = totals.get(item, 0) \
                    + engine.index.frequency(item)
        keep = (self._engine.vocabulary.annotation_like_ids()
                if annotation_like_only else None)
        return [item for item in sorted(totals)
                if totals[item] >= min_count
                and (keep is None or item in keep)]

    def items(self) -> list[int]:
        merged: set[int] = set()
        for engine in self._engine.shard_engines:
            merged.update(engine.index.items())
        return sorted(merged)

    def __contains__(self, item: int) -> bool:
        return any(item in engine.index
                   for engine in self._engine.shard_engines)


class ShardDatabaseView:
    """The :class:`~repro.mining.itemsets.TransactionDatabase` read API
    over all partitions, in global tids.

    Global tids no shard owns (tuples already tombstoned when the
    engine partitioned) read as empty transactions, exactly as the
    monolithic engine encodes them.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "ShardedEngine") -> None:
        self._engine = engine

    @property
    def vocabulary(self):
        return self._engine.vocabulary

    def transaction(self, tid: int) -> Transaction:
        located = self._engine.locate(tid)
        if located is None:
            return frozenset()
        shard, local_tid = located
        return self._engine.shard_engines[shard].database.transaction(
            local_tid)

    @property
    def transactions(self) -> list[Transaction]:
        """Materialized global-tid-ordered transaction list (audits)."""
        return [self.transaction(tid)
                for tid in range(self._engine.relation.tid_range)]

    def annotation_projection(self) -> list[Transaction]:
        keep = self._engine.vocabulary.annotation_like_ids()
        return [transaction & keep for transaction in self.transactions]

    def __len__(self) -> int:
        return self._engine.relation.tid_range

    def __iter__(self):
        return iter(self.transactions)

"""Sharded mining and serving: partitioned engines with exact merge.

``repro.shard`` scales the correlation engine horizontally: the
relation is hash-partitioned by tid into shard-local engines that mine
and maintain their slices independently, and a SON-style two-phase
merge reconstructs the exact global answer — the sharded rules and
``signature()`` are byte-identical to a monolithic engine's on every
backend, counter and event stream.

Entry points:

* :class:`ShardedEngine` — the drop-in engine; usually built through
  ``repro.engine(relation, shards=N)`` or an
  :class:`~repro.core.config.EngineConfig` with ``shards >= 2``, which
  the serving facade (:class:`~repro.app.service.CorrelationService`,
  :class:`~repro.app.session.Session`, the CLI's ``--shards``) passes
  through transparently;
* :func:`modulo_partitioner` / custom partitioners — the tid -> shard
  layout, persisted in snapshot format v3.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.partition import (
    Partitioner,
    TokenInterner,
    build_substrate,
    encode_shards,
    modulo_partitioner,
    partition_relation,
    substrate_from_transactions,
    substrates_for,
)
from repro.shard.pool import SegmentManager, ShardPool, available_cpus
from repro.shard.rebalance import (
    RebalancePlan,
    ShardSkew,
    plan_rebalance,
    shard_skew,
)
from repro.shard.views import ShardDatabaseView, ShardIndexView

__all__ = [
    "Partitioner",
    "RebalancePlan",
    "ShardSkew",
    "plan_rebalance",
    "shard_skew",
    "SegmentManager",
    "ShardDatabaseView",
    "ShardIndexView",
    "ShardPool",
    "ShardedEngine",
    "TokenInterner",
    "available_cpus",
    "build_substrate",
    "encode_shards",
    "modulo_partitioner",
    "partition_relation",
    "substrate_from_transactions",
    "substrates_for",
]

"""Text normalization for keyword-based generalization matching.

Annotations "can take multiple formats" (paper section 4.1): the same
conceptual annotation may carry different free text per record.  Keyword
matchers compare case-folded word tokens, so "This value is INVALID!"
and "invalid measurement" both generalize to the same label.
"""

from __future__ import annotations

import re

_WORD = re.compile(r"[a-z0-9]+(?:[''][a-z0-9]+)?")


def normalize(text: str) -> str:
    """Case-fold and collapse whitespace."""
    return " ".join(text.lower().split())


def tokenize(text: str) -> tuple[str, ...]:
    """Lowercase word tokens of ``text`` (punctuation stripped)."""
    return tuple(_WORD.findall(text.lower()))


def contains_word(text: str, word: str) -> bool:
    """True when ``word`` occurs as a whole token inside ``text``."""
    return word.lower() in tokenize(text)

"""The generalization engine — building the *extended* database.

Paper section 4.1.1: the system parses generalization rules and applies
them so that "the generalized annotations are appended to the
appropriate data records"; ordinary mining then runs over this extended
database and discovers correlations invisible at the raw level.

:class:`Generalizer` is the object the
:class:`~repro.core.manager.AnnotationRuleManager` consumes: its
``labels_for`` maps a tuple's current raw annotation ids to the full
label set (generalization rules plus hierarchy closure).  Because the
mapping is a pure function of the annotation set, incremental label
maintenance under Case 3 reduces to re-evaluating it on the δ tuples.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GeneralizationError
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import GeneralizationRuleSet
from repro.relation.annotation import AnnotationRegistry
from repro.relation.relation import AnnotatedRelation


class Generalizer:
    """Maps raw annotation ids to generalized labels."""

    def __init__(self,
                 registry: AnnotationRegistry,
                 rules: GeneralizationRuleSet,
                 hierarchy: ConceptHierarchy | None = None) -> None:
        self.registry = registry
        self.rules = rules
        self.hierarchy = hierarchy
        self._collision_check()
        #: memo: annotation id -> labels (annotations are immutable).
        self._cache: dict[str, frozenset[str]] = {}

    def _collision_check(self) -> None:
        """A label sharing a name with a raw annotation id would make the
        extended database ambiguous — refuse up front."""
        collisions = sorted(
            label for label in self.rules.labels()
            if label in self.registry)
        if collisions:
            raise GeneralizationError(
                f"generalization labels collide with raw annotation ids: "
                f"{collisions}")

    # -- the protocol the manager consumes ---------------------------------

    def labels_for(self, annotation_ids: Iterable[str]) -> frozenset[str]:
        """All labels a tuple with these raw annotations receives.

        Each label appears at most once regardless of how many raw
        annotations map to it (the paper's at-most-once guarantee), and
        hierarchy ancestors are included so multi-level rules can be
        mined in the same pass.
        """
        labels: set[str] = set()
        for annotation_id in annotation_ids:
            cached = self._cache.get(annotation_id)
            if cached is None:
                if annotation_id in self.rules.labels():
                    raise GeneralizationError(
                        f"raw annotation {annotation_id!r} collides with a "
                        f"generalization label")
                annotation = self.registry.get(annotation_id)
                cached = self.rules.labels_for_annotation(annotation)
                self._cache[annotation_id] = cached
            labels |= cached
        if self.hierarchy is not None:
            return self.hierarchy.closure(labels)
        return frozenset(labels)

    # -- static application (outside a manager) ----------------------------

    def apply_to_relation(self, relation: AnnotatedRelation) -> int:
        """Label every live tuple; returns how many tuples changed."""
        changed = 0
        for row in relation:
            labels = self.labels_for(row.annotation_ids)
            if labels != frozenset(row.labels):
                relation.set_labels(row.tid, labels)
                changed += 1
        return changed

    def invalidate_cache(self) -> None:
        """Drop memoized mappings (after editing the rule set)."""
        self._cache.clear()

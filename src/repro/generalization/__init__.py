"""Annotation generalization and multi-level hierarchies (section 4.1)."""

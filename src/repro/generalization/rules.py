"""Generalization rules: raw annotations -> generalized labels.

The paper's Figure 9 file maps annotations to labels two ways — by
explicit annotation id ("every transaction that contains Annot_1 or
Annot_5 will have the Annot_X label applied") and by concept keywords
("annotations containing the words 'Invalid', 'wrong', or 'incorrect'
can all be generalized to the category of Invalidation").  Matchers
below cover both, plus regex and category matching as natural
extensions of the keyword form.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import GeneralizationError
from repro.generalization.text import tokenize
from repro.relation.annotation import Annotation


class Matcher(ABC):
    """Decides whether a generalization rule applies to an annotation."""

    @abstractmethod
    def matches(self, annotation: Annotation) -> bool:
        """True when the annotation generalizes under this matcher."""

    @abstractmethod
    def describe(self) -> str:
        """Round-trippable source form (Figure 9 grammar)."""


@dataclass(frozen=True)
class IdMatcher(Matcher):
    """Matches annotations by exact id (``Annot_1 | Annot_5``)."""

    annotation_ids: frozenset[str]

    def __post_init__(self) -> None:
        if not self.annotation_ids:
            raise GeneralizationError("IdMatcher needs at least one id")

    def matches(self, annotation: Annotation) -> bool:
        return annotation.annotation_id in self.annotation_ids

    def describe(self) -> str:
        return " | ".join(sorted(self.annotation_ids))


@dataclass(frozen=True)
class KeywordMatcher(Matcher):
    """Matches annotations whose text contains any of the keywords."""

    keywords: frozenset[str]

    def __post_init__(self) -> None:
        if not self.keywords:
            raise GeneralizationError("KeywordMatcher needs a keyword")
        lowered = frozenset(keyword.lower() for keyword in self.keywords)
        object.__setattr__(self, "keywords", lowered)

    def matches(self, annotation: Annotation) -> bool:
        tokens = set(tokenize(annotation.text))
        return bool(tokens & self.keywords)

    def describe(self) -> str:
        quoted = " ".join(f'"{keyword}"' for keyword in sorted(self.keywords))
        return f"text has {quoted}"


@dataclass(frozen=True)
class RegexMatcher(Matcher):
    """Matches annotations whose text matches a regular expression."""

    pattern: str

    def __post_init__(self) -> None:
        try:
            re.compile(self.pattern)
        except re.error as exc:
            raise GeneralizationError(
                f"bad generalization regex {self.pattern!r}: {exc}") from exc

    def matches(self, annotation: Annotation) -> bool:
        return re.search(self.pattern, annotation.text,
                         flags=re.IGNORECASE) is not None

    def describe(self) -> str:
        return f'text ~ "{self.pattern}"'


@dataclass(frozen=True)
class CategoryMatcher(Matcher):
    """Matches annotations carrying a given category tag."""

    category: str

    def __post_init__(self) -> None:
        if not self.category:
            raise GeneralizationError("CategoryMatcher needs a category")

    def matches(self, annotation: Annotation) -> bool:
        return annotation.category == self.category

    def describe(self) -> str:
        return f"category = {self.category}"


@dataclass(frozen=True)
class GeneralizationRule:
    """``label <= matcher`` — one line of the Figure 9 file."""

    label: str
    matcher: Matcher

    def __post_init__(self) -> None:
        if not self.label:
            raise GeneralizationError("a generalization rule needs a label")

    def applies_to(self, annotation: Annotation) -> bool:
        return self.matcher.matches(annotation)

    def describe(self) -> str:
        return f"{self.label} <= {self.matcher.describe()}"


class GeneralizationRuleSet:
    """Ordered collection of generalization rules.

    A label is applied to a tuple at most once no matter how many of its
    annotations map to it — the paper's explicit at-most-once guarantee.
    """

    def __init__(self, rules: Iterable[GeneralizationRule] = ()) -> None:
        self._rules: list[GeneralizationRule] = list(rules)

    def add(self, rule: GeneralizationRule) -> None:
        self._rules.append(rule)

    def labels_for_annotation(self, annotation: Annotation) -> frozenset[str]:
        return frozenset(rule.label for rule in self._rules
                         if rule.applies_to(annotation))

    def labels(self) -> frozenset[str]:
        return frozenset(rule.label for rule in self._rules)

    def __iter__(self) -> Iterator[GeneralizationRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

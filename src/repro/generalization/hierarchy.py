"""Multi-level concept hierarchies over generalization labels.

Section 2.2 of the paper recalls Han & Fu's multi-level association
rules: given a domain generalization hierarchy, "some rules may hold at
the higher level(s) of the hierarchy which may not be true for the
lower more-detailed levels".  The hierarchy here is a DAG of labels
(networkx underneath); when the engine assigns a label it also assigns
every ancestor, so one mining pass discovers rules at all levels
simultaneously.  Per-level thresholds (coarser levels usually warrant
higher support) are supported through :meth:`ConceptHierarchy.level_of`.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.errors import GeneralizationError


class ConceptHierarchy:
    """A DAG of labels; edges point child -> parent (more general)."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def add_label(self, label: str) -> None:
        if not label:
            raise GeneralizationError("hierarchy labels must be non-empty")
        self._graph.add_node(label)

    def add_edge(self, child: str, parent: str) -> None:
        """Declare ``parent`` a generalization of ``child``."""
        if child == parent:
            raise GeneralizationError(
                f"label {child!r} cannot generalize itself")
        self._graph.add_edge(child, parent)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(child, parent)
            raise GeneralizationError(
                f"edge {child!r} -> {parent!r} would create a cycle")

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str]]) -> "ConceptHierarchy":
        hierarchy = cls()
        for child, parent in edges:
            hierarchy.add_edge(child, parent)
        return hierarchy

    # -- queries ----------------------------------------------------------

    def __contains__(self, label: str) -> bool:
        return label in self._graph

    def labels(self) -> frozenset[str]:
        return frozenset(self._graph.nodes)

    def ancestors(self, label: str) -> frozenset[str]:
        """Every more-general label reachable from ``label``."""
        if label not in self._graph:
            return frozenset()
        return frozenset(nx.descendants(self._graph, label))

    def closure(self, labels: Iterable[str]) -> frozenset[str]:
        """The labels plus all their ancestors — what a tuple receives."""
        out: set[str] = set()
        for label in labels:
            out.add(label)
            out |= self.ancestors(label)
        return frozenset(out)

    def roots(self) -> frozenset[str]:
        """Most general labels (no outgoing generalization edge)."""
        return frozenset(node for node in self._graph
                         if self._graph.out_degree(node) == 0)

    def level_of(self, label: str) -> int:
        """Distance to the farthest root (0 == most general).

        Coarse levels get small numbers so that per-level minimum
        supports can decrease with detail, as in Han & Fu.
        """
        if label not in self._graph:
            raise GeneralizationError(f"label {label!r} not in hierarchy")
        ancestors = self.ancestors(label)
        if not ancestors:
            return 0
        return 1 + max(self.level_of(parent)
                       for parent in self._graph.successors(label))

    def support_for_level(self, base_support: float, label: str,
                          decay: float = 0.5) -> float:
        """Han & Fu style per-level threshold: deeper labels get lower
        minimum support (``base * decay ** level``), floored at 1e-6."""
        if not 0.0 < decay <= 1.0:
            raise GeneralizationError(f"decay must be in (0, 1], got {decay}")
        return max(1e-6, base_support * (decay ** self.level_of(label)))

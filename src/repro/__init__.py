"""Reproduction of *Discovering Correlations in Annotated Databases*.

Public API re-exported here; see DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.errors import ReproError
from repro.mining.itemsets import (
    Item,
    ItemKind,
    ItemVocabulary,
    TransactionDatabase,
)
from repro.mining.constraints import MiningTask
from repro.relation.annotation import Annotation
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema
from repro.relation.tuples import AnchorScope, AnnotationAnchor
from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.core.stats import Thresholds
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.core.catalog import (
    CatalogQuery,
    CatalogStats,
    QueryExplain,
    RuleCatalog,
)
from repro.core.config import EngineConfig, EngineConfigBuilder
from repro.errors import CatalogError
from repro.core.deltas import DeltaPlan, EventAudit, compile_plan
from repro.core.engine import (
    CorrelationEngine,
    EncodedSubstrate,
    VerificationResult,
    engine,
)
from repro.core.journal import (
    EventJournal,
    JournalStore,
    RecoveryResult,
    ReplayStats,
)
from repro.shard import (
    RebalancePlan,
    ShardSkew,
    ShardedEngine,
    modulo_partitioner,
    plan_rebalance,
    shard_skew,
)
from repro.core.maintenance import BatchReport, MaintenanceReport
from repro.errors import DeltaPlanError
from repro.core.manager import AnnotationRuleManager
from repro.mining.backend import (
    AprioriFupBackend,
    EclatBackend,
    FPGrowthBackend,
    MiningBackend,
    available_backends,
    register_backend,
)
from repro.app.service import (
    CorrelationService,
    RebalanceReport,
    RuleSnapshot,
)
from repro.core.audit import AuditReport, audit
from repro.core.explain import RuleEvidence, explain_rule, render_evidence
from repro.core.multilevel import LeveledRule, MultiLevelMiner
from repro.core.timeline import Direction, TimelineRecorder
from repro.core import persistence
from repro.baselines.remine import remine
from repro.mining.closed import (
    closed_itemsets,
    compress_rules,
    maximal_itemsets,
)
from repro.mining.interest import RuleCounts, evaluate as evaluate_rule
from repro.relation import query
from repro.generalization.engine import Generalizer
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
    KeywordMatcher,
)
from repro.exploitation.recommender import (
    MissingAnnotationRecommender,
    Recommendation,
)
from repro.exploitation.insert_advisor import InsertAdvisor
from repro.exploitation.curation import CurationSession
from repro.exploitation.quality import (
    QualityReport,
    rule_yield,
    score_recommendations,
)
from repro.exploitation.removal import (
    RemovalSuggestion,
    UnexplainedAnnotationFinder,
)
from repro.app.session import Session
from repro.server import CorrelationServer, ServerConfig

__version__ = "1.0.0"

__all__ = [
    "AddAnnotatedTuples",
    "AddAnnotations",
    "AddUnannotatedTuples",
    "AnchorScope",
    "Annotation",
    "AnnotationAnchor",
    "AnnotatedRelation",
    "AnnotationRuleManager",
    "AprioriFupBackend",
    "AssociationRule",
    "AuditReport",
    "BatchReport",
    "CatalogError",
    "CatalogQuery",
    "CatalogStats",
    "CorrelationEngine",
    "CorrelationServer",
    "CorrelationService",
    "DeltaPlan",
    "DeltaPlanError",
    "EncodedSubstrate",
    "EventAudit",
    "EclatBackend",
    "EngineConfig",
    "EngineConfigBuilder",
    "EventJournal",
    "FPGrowthBackend",
    "JournalStore",
    "MiningBackend",
    "QueryExplain",
    "RebalancePlan",
    "RebalanceReport",
    "RecoveryResult",
    "ReplayStats",
    "RuleCatalog",
    "RuleSnapshot",
    "ShardSkew",
    "VerificationResult",
    "ConceptHierarchy",
    "CurationSession",
    "Direction",
    "GeneralizationRule",
    "GeneralizationRuleSet",
    "Generalizer",
    "IdMatcher",
    "InsertAdvisor",
    "Item",
    "ItemKind",
    "ItemVocabulary",
    "KeywordMatcher",
    "LeveledRule",
    "MaintenanceReport",
    "MiningTask",
    "MultiLevelMiner",
    "MissingAnnotationRecommender",
    "QualityReport",
    "Recommendation",
    "RuleCounts",
    "RuleEvidence",
    "RemovalSuggestion",
    "RemoveAnnotations",
    "RemoveTuples",
    "ReproError",
    "RuleKind",
    "RuleSet",
    "Schema",
    "ServerConfig",
    "Session",
    "ShardedEngine",
    "Thresholds",
    "TimelineRecorder",
    "UnexplainedAnnotationFinder",
    "TransactionDatabase",
    "audit",
    "available_backends",
    "closed_itemsets",
    "compile_plan",
    "compress_rules",
    "engine",
    "evaluate_rule",
    "explain_rule",
    "maximal_itemsets",
    "modulo_partitioner",
    "persistence",
    "plan_rebalance",
    "query",
    "register_backend",
    "remine",
    "render_evidence",
    "rule_yield",
    "score_recommendations",
    "shard_skew",
]

"""Thread-safe serving facade over correlation engines.

The paper's application is one synchronous menu loop around one
dataset.  :class:`CorrelationService` is the shape a *served* system
needs instead: it hosts many named sessions (one engine each), lets
writers stream update events into a batched queue, and lets any number
of concurrent readers query immutable :class:`RuleSnapshot` views while
a flush is pending.

Concurrency model, per session:

* a read-write lock (:class:`ReadWriteLock`, writer-preferring)
  guards the engine — queries share the read side, ``mine``/``flush``
  take the write side;
* :meth:`CorrelationService.submit` appends to a queue under a cheap
  mutex and never touches the engine, so producers are not blocked by
  readers (set ``auto_flush_every`` to bound queue growth by flushing
  inline once the queue reaches that depth);
* :meth:`CorrelationService.flush` drains the queue inside one
  write-lock hold and applies it as **one coalesced delta plan**
  (``engine.apply_batch``) — one maintenance pass, one rule refresh,
  one invariant check and one revision bump per flush — so readers
  observe either the pre-batch or the post-batch rule set, never a
  half-applied one;
* :class:`RuleSnapshot` results are frozen views — they stay valid
  (and stale) after the lock is released, which is the point.  They
  are *memoized per revision*: while no flush intervenes, repeated
  ``snapshot()`` calls return the same object (sharing one rules tuple
  and one :class:`~repro.core.catalog.RuleCatalog`), so a hot
  unchanged-revision read path copies nothing and serves indexed
  queries (top-k by metric, by-item, by-RHS) straight from the
  catalog.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from collections.abc import Iterator
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.app.estimate import EstimateSnapshot, estimate_snapshot
from repro.core import persistence
from repro.core.catalog import CatalogQuery, RuleCatalog
from repro.core.config import EngineConfig
from repro.core.engine import (
    CorrelationEngine,
    RuleSignature,
    VerificationResult,
    engine as build_engine,
)
from repro.core.events import UpdateEvent
from repro.core.journal import (
    JournalStore,
    RecoveryResult,
    WAL_NAME,
    replay_into,
)
from repro.core.maintenance import BatchReport, MaintenanceReport
from repro.core.rules import AssociationRule, RuleKind
from repro.errors import SessionError
from repro.mining.itemsets import ItemVocabulary
from repro.relation.relation import AnnotatedRelation
from repro.shard.rebalance import (
    RebalancePlan,
    plan_rebalance,
    rebuild_with_plan,
    shard_skew,
)

if TYPE_CHECKING:  # the app layer never imports the server at runtime
    from repro.server.metrics import ServiceInstrumentation


@dataclass(frozen=True)
class RuleSnapshot:
    """An immutable, point-in-time view of one session's rule set.

    A snapshot is a thin view over the engine's revision-memoized
    :class:`~repro.core.catalog.RuleCatalog`: ``rules`` *is* the
    catalog's rule tuple (shared, never re-copied per snapshot), and
    indexed lookups / composable queries go through :attr:`catalog`.
    """

    session: str
    backend: str
    db_size: int
    #: Monotone per-session *flush* counter: bumped by ``mine`` and
    #: each flush.  Not the engine's rule revision — a per-event
    #: fallback flush bumps this once while the engine advances once
    #: per applied event.  For comparisons against
    #: ``Recommendation.revision`` / ``AuditEntry.revision`` (which
    #: carry the engine number) use ``snapshot.catalog.revision``.
    revision: int
    rules: tuple[AssociationRule, ...]
    signature: frozenset[RuleSignature]
    #: Events queued but not yet applied when the snapshot was taken.
    pending_events: int
    #: The indexed query view this snapshot serves from (``None`` only
    #: for a session created with ``mine=False`` and never mined).
    catalog: RuleCatalog | None = None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self.rules)

    def of_kind(self, kind: RuleKind) -> tuple[AssociationRule, ...]:
        if self.catalog is not None:
            return self.catalog.of_kind(kind)
        return tuple(rule for rule in self.rules if rule.kind is kind)

    def query(self) -> CatalogQuery:
        """A composable query over this snapshot's catalog."""
        if self.catalog is None:
            raise SessionError(
                f"session {self.session!r} has no mined rules to query")
        return self.catalog.query()


def isolate_poison_event(apply, batch, *, requeue, describe,
                         noun: str = "event") -> None:
    """Shared batch-failure fallback: apply ``batch`` one event at a
    time after a compile-rejected (provably unmutated) ``apply_batch``.

    The documented semantics live here once for every front-end: the
    valid prefix stays applied, the poison event is dropped (retrying
    it would fail every flush), and ``requeue(remainder, applied)`` is
    handed the unapplied tail to put back at the front of its queue.
    Always raises :class:`SessionError` — naming the poison event, or
    the compiler/per-event disagreement if everything applied.
    """
    applied = 0
    for position, event in enumerate(batch):
        try:
            apply(event)
            applied += 1
        except Exception as error:
            remainder = list(batch[position + 1:])
            requeue(remainder, applied)
            raise SessionError(
                f"{describe} failed on {noun} {position + 1} of "
                f"{len(batch)} ({event!r}); {applied} applied, "
                f"{len(remainder)} re-queued, the failing {noun} "
                f"dropped") from error
    requeue([], applied)
    raise SessionError(
        f"{describe}: batch compilation failed but every {noun} applied "
        f"individually — plan compiler and per-event application "
        f"disagree")


class ReadWriteLock:
    """Writer-preferring read-write lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers, so a steady read load
    cannot starve flushes.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._condition:
            while self._active_writer or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    self._condition.wait()
                self._active_writer = True
            finally:
                self._waiting_writers -= 1
        try:
            yield
        finally:
            with self._condition:
                self._active_writer = False
                self._condition.notify_all()


@dataclass
class _Hosted:
    """One named session: an engine plus its locks and update queue."""

    name: str
    engine: CorrelationEngine
    #: The config the engine was built from (per-session override or
    #: the service default) — surfaced to status consumers.
    config: EngineConfig | None = None
    lock: ReadWriteLock = field(default_factory=ReadWriteLock)
    queue_lock: threading.Lock = field(default_factory=threading.Lock)
    queue: deque[UpdateEvent] = field(default_factory=deque)
    revision: int = 0
    #: Token of the writer holding the inline auto-flush duty (None when
    #: unclaimed).  Set under ``queue_lock`` by the submit that crosses
    #: the threshold, cleared under ``queue_lock`` when a flush drains
    #: the queue — so exactly one writer triggers per crossing, decided
    #: atomically with the depth read.  A token (not a bool) lets a
    #: failed claimant release only its *own* claim, never one a later
    #: writer legitimately took after the drain.
    flush_claim: object | None = None
    #: The last snapshot built, reused verbatim while the revision (and
    #: queue depth) hold still — unchanged-revision reads are O(1).
    snapshot_cache: RuleSnapshot | None = None
    #: Durability store (``None`` for non-journaled sessions).
    journal: JournalStore | None = None
    #: Journal sequence of the last record this engine consumed: every
    #: flush appends *before* applying and advances this under the
    #: write lock, so ``journal.last_seq - applied_seq`` is the
    #: recovery lag an observer would replay.
    applied_seq: int = 0


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of :meth:`CorrelationService.rebalance`."""

    session: str
    plan: RebalancePlan
    #: False for a dry run (plan only, nothing changed).
    applied: bool
    #: Journal records replayed into the new engine while catching up
    #: with live traffic (0 for non-journaled or dry runs).
    caught_up_records: int = 0
    #: Session revision after the cutover (the single bump readers see).
    revision: int = 0

    def as_dict(self) -> dict:
        return {
            "session": self.session,
            "plan": self.plan.as_dict(),
            "applied": self.applied,
            "caught_up_records": self.caught_up_records,
            "revision": self.revision,
        }


class CorrelationService:
    """Hosts named correlation sessions for concurrent readers/writers."""

    def __init__(self, *,
                 config: EngineConfig | None = None,
                 auto_flush_every: int | None = None,
                 instrumentation: "ServiceInstrumentation | None" = None,
                 journal_dir: str | os.PathLike | None = None,
                 journal_fsync: bool = True,
                 journal_snapshot_every: int | None = 64,
                 ) -> None:
        if auto_flush_every is not None and auto_flush_every < 1:
            raise SessionError(
                f"auto_flush_every must be >= 1 or None, "
                f"got {auto_flush_every}")
        if journal_snapshot_every is not None and journal_snapshot_every < 1:
            raise SessionError(
                f"journal_snapshot_every must be >= 1 or None, "
                f"got {journal_snapshot_every}")
        self._default_config = config
        self._auto_flush_every = auto_flush_every
        #: Base directory of per-session durability stores (``None``
        #: serves everything in memory, the historical behavior).
        self._journal_dir = (os.fspath(journal_dir)
                             if journal_dir is not None else None)
        self._journal_fsync = journal_fsync
        self._journal_snapshot_every = journal_snapshot_every
        #: Optional metric sink (the serving tier threads in a
        #: :class:`repro.server.metrics.ServiceInstrumentation`); the
        #: service only ever calls ``inc``/``observe`` on it, so any
        #: object with that surface works and ``None`` costs one
        #: branch per instrumented operation.
        self._instrumentation = instrumentation
        self._registry_lock = threading.Lock()
        self._hosted: dict[str, _Hosted] = {}
        #: Lazily created worker for :meth:`flush_async` — the exact
        #: refresh runs here while estimate reads keep serving.
        self._flush_executor: ThreadPoolExecutor | None = None

    # -- session registry ------------------------------------------------------

    def create(self, name: str,
               relation: AnnotatedRelation | None = None,
               config: EngineConfig | None = None,
               *, mine: bool = True) -> RuleSnapshot:
        """Register session ``name`` over ``relation`` and (by default)
        run the initial mine; returns the first snapshot."""
        config = config if config is not None else self._default_config
        if config is None:
            raise SessionError(
                f"no EngineConfig for session {name!r}: pass one to "
                f"create() or construct the service with a default")
        with self._registry_lock:
            if name in self._hosted:
                raise SessionError(f"session {name!r} already exists")
        # The factory dispatches on ``config.shards``, so a session over
        # a sharded engine is served through the identical facade.
        hosted = _Hosted(name=name,
                         engine=build_engine(relation, config),
                         config=config)
        # Mine before publishing: a failed mine must not leave a broken
        # session squatting on the name (nobody can reach it yet, so no
        # write lock is needed).
        if mine:
            hosted.engine.mine()
            hosted.revision += 1
        if self._journal_dir is not None:
            self._attach_journal(hosted)
        with self._registry_lock:
            if name in self._hosted:
                raise SessionError(f"session {name!r} already exists")
            self._hosted[name] = hosted
        return self._snapshot_locked(hosted)

    def sessions(self) -> tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._hosted))

    def drop(self, name: str, *, force: bool = False) -> None:
        """Remove session ``name``.

        A session with queued-but-unflushed events refuses to go — the
        writes would be silently lost — unless ``force=True``
        explicitly discards them.  The pending check and the removal
        happen in one registry-lock critical section, so any submit
        that completed before the drop is counted by the check.
        """
        with self._registry_lock:
            hosted = self._hosted.get(name)
            if hosted is None:
                raise SessionError(f"unknown session {name!r}")
            with hosted.queue_lock:
                pending = len(hosted.queue)
                if pending and not force:
                    raise SessionError(
                        f"session {name!r} has {pending} queued event(s) "
                        f"not yet flushed — flush first, or drop("
                        f"force=True) to discard them")
                hosted.queue.clear()
            del self._hosted[name]
        # Outside the registry lock: shutting a shard pool down waits
        # for its workers, and nobody can reach the session anymore.
        hosted.engine.close()
        if hosted.journal is not None:
            # The store's files stay on disk — a drop is not an erase;
            # restore_session() can resurrect the tenant later.
            hosted.journal.close()

    def close(self) -> None:
        """Release every hosted engine's pooled resources (worker
        pools, shared segments).  Sessions stay registered and usable —
        a sharded engine restarts its pool lazily — so this is safe to
        call at any quiesce point; the server's graceful drain calls it
        after the final flushes."""
        with self._registry_lock:
            hosted_sessions = list(self._hosted.values())
            executor, self._flush_executor = self._flush_executor, None
        if executor is not None:
            # Let in-flight async flushes land before releasing engine
            # pools; a later flush_async simply starts a fresh worker.
            executor.shutdown(wait=True)
        for hosted in hosted_sessions:
            hosted.engine.close()
            if hosted.journal is not None:
                hosted.journal.sync()

    def _session(self, name: str) -> _Hosted:
        with self._registry_lock:
            try:
                return self._hosted[name]
            except KeyError:
                known = ", ".join(sorted(self._hosted)) or "(none)"
                raise SessionError(
                    f"unknown session {name!r}; known: {known}") from None

    # -- durability ------------------------------------------------------------

    def _session_journal_path(self, name: str) -> str:
        assert self._journal_dir is not None
        if os.sep in name or name.startswith("."):
            raise SessionError(
                f"journaled session names must be plain directory "
                f"names, got {name!r}")
        return os.path.join(self._journal_dir, name)

    def _attach_journal(self, hosted: _Hosted) -> None:
        """Open (and base-snapshot) the session's durability store.

        Creating a session on top of an existing journal would fork
        its history, so a non-empty store directory is refused —
        recover it with :meth:`restore_session` instead.
        """
        path = self._session_journal_path(hosted.name)
        if os.path.exists(os.path.join(path, WAL_NAME)):
            raise SessionError(
                f"journal directory {path!r} already holds a write-"
                f"ahead log — restore_session({hosted.name!r}) to "
                f"resume it, or remove the directory to start fresh")
        store = JournalStore(
            path, fsync=self._journal_fsync,
            snapshot_every=self._journal_snapshot_every)
        hosted.journal = store
        hosted.applied_seq = store.last_seq
        if hosted.engine.is_mined:
            store.ensure_base_snapshot(hosted.engine)
        # Bounded in-memory logs must not evict anything the journal
        # has not fsynced yet (only matters with journal_fsync=False).
        hosted.engine.log.ensure_durable = store.sync

    def _journal_append(self, hosted: _Hosted,
                        batch: list[UpdateEvent]) -> int:
        started = time.perf_counter()
        seq = hosted.journal.append_batch(batch)
        instrumentation = self._instrumentation
        if instrumentation is not None:
            # Duck-typed like observe_phases: minimal sinks may lack
            # the journal instruments.
            appends = getattr(instrumentation, "journal_appends", None)
            if appends is not None:
                appends.inc()
            seconds = getattr(instrumentation,
                              "journal_append_seconds", None)
            if seconds is not None:
                seconds.observe(time.perf_counter() - started)
        return seq

    def restore_session(self, name: str, *, upto: int | None = None,
                        generalizer=None) -> RecoveryResult:
        """Recover session ``name`` from its journal store and host it.

        The engine is the newest usable snapshot plus a replay of the
        journal suffix (point-in-time when ``upto`` is given — note the
        store then keeps appending *after* that seq, so a later full
        recovery still sees the complete history).  The hosted config
        is the engine's restored config.
        """
        if self._journal_dir is None:
            raise SessionError(
                "restore_session needs a service constructed with "
                "journal_dir")
        with self._registry_lock:
            if name in self._hosted:
                raise SessionError(f"session {name!r} already exists")
        path = self._session_journal_path(name)
        if not os.path.exists(os.path.join(path, WAL_NAME)):
            raise SessionError(
                f"no journal store at {path!r} to restore "
                f"session {name!r} from")
        store = JournalStore(
            path, fsync=self._journal_fsync,
            snapshot_every=self._journal_snapshot_every)
        try:
            result = store.recover(upto=upto, generalizer=generalizer)
        except Exception:
            store.close()
            raise
        hosted = _Hosted(name=name, engine=result.engine,
                         config=result.engine.config,
                         journal=store, applied_seq=result.last_seq)
        hosted.revision += 1
        hosted.engine.log.ensure_durable = store.sync
        with self._registry_lock:
            if name in self._hosted:
                store.close()
                raise SessionError(f"session {name!r} already exists")
            self._hosted[name] = hosted
        return result

    def restore_sessions(self) -> dict[str, RecoveryResult]:
        """Recover every journal store under ``journal_dir`` that is
        not already hosted (server startup).  Returns per-session
        recovery results keyed by name."""
        if self._journal_dir is None or not os.path.isdir(self._journal_dir):
            return {}
        recovered: dict[str, RecoveryResult] = {}
        for name in sorted(os.listdir(self._journal_dir)):
            path = os.path.join(self._journal_dir, name)
            if not os.path.exists(os.path.join(path, WAL_NAME)):
                continue
            with self._registry_lock:
                if name in self._hosted:
                    continue
            recovered[name] = self.restore_session(name)
        return recovered

    def journal_status(self, name: str) -> dict[str, object] | None:
        """Durability status for status surfaces and gauges (``None``
        for a non-journaled session)."""
        hosted = self._session(name)
        store = hosted.journal
        if store is None:
            return None
        status = store.status()
        status["applied_seq"] = hosted.applied_seq
        status["lag"] = status["last_seq"] - hosted.applied_seq
        return status

    def checkpoint(self, name: str) -> dict[str, object]:
        """Force a compacted snapshot at the current applied seq (the
        operational "fsync my restart time down" button)."""
        hosted = self._session(name)
        store = hosted.journal
        if store is None:
            raise SessionError(f"session {name!r} has no journal to "
                               f"checkpoint")
        with hosted.lock.write():
            store.write_snapshot(hosted.engine, hosted.applied_seq)
        return self.journal_status(name)

    # -- rebalancing -----------------------------------------------------------

    def rebalance(self, name: str, *, shards: int | None = None,
                  dry_run: bool = False) -> RebalanceReport:
        """Re-layout the session's shards with no torn revision.

        ``dry_run`` returns the plan (balanced round-robin over live
        tuples, optionally to a new shard count) without acting.
        Applying builds the replacement engine *outside* the session
        locks from a consistent snapshot, catches it up by streaming
        the journal slice written since, then takes the write lock for
        the final slice and the cutover: signature equality is checked
        before the swap, the session revision bumps exactly once, and
        readers observe either the old engine or the fully caught-up
        new one.  Non-journaled sessions have no stream to catch up
        from, so they rebuild while holding the write lock (offline
        but still atomic).
        """
        hosted = self._session(name)
        with hosted.lock.read():
            plan = plan_rebalance(hosted.engine, target_shards=shards)
        if dry_run:
            return RebalanceReport(session=name, plan=plan,
                                   applied=False,
                                   revision=hosted.revision)
        config = hosted.config
        workers = config.shard_workers if config is not None else None
        executor = (config.shard_executor if config is not None
                    else "thread")
        store = hosted.journal
        if store is None:
            with hosted.lock.write():
                return self._cutover(hosted, plan, workers, executor,
                                     base_seq=0, caught_up=0)
        with hosted.lock.read():
            document = persistence.snapshot(
                hosted.engine, journal_seq=hosted.applied_seq)
            base_seq = hosted.applied_seq
        new_engine = rebuild_with_plan(document, plan, workers=workers,
                                       executor=executor)
        # Catch up on traffic that flushed while we rebuilt — without
        # any session lock, racing the live appender, until the lag is
        # gone (bounded: give up the lock-free chase after a few laps
        # and let the write-lock pass below absorb the rest).
        caught = base_seq
        caught_up = 0
        for _lap in range(8):
            records = list(store.records(after=caught,
                                         tolerate_torn_tail=True))
            if not records:
                break
            replay_into(new_engine, records)
            caught_up += len(records)
            caught = records[-1].seq
        with hosted.lock.write():
            records = list(store.records(after=caught,
                                         tolerate_torn_tail=True))
            if records:
                replay_into(new_engine, records)
                caught_up += len(records)
            return self._cutover(hosted, plan, workers, executor,
                                 base_seq=base_seq, caught_up=caught_up,
                                 new_engine=new_engine)

    def _cutover(self, hosted: _Hosted, plan: RebalancePlan,
                 workers: int | None, executor: str, *,
                 base_seq: int, caught_up: int,
                 new_engine: CorrelationEngine | None = None
                 ) -> RebalanceReport:
        """Swap in the rebuilt engine (write lock held by the caller).

        The old engine stays untouched until the replacement proves
        signature equality — an aborted rebalance leaves the session
        exactly as it was.
        """
        old = hosted.engine
        if new_engine is None:
            document = persistence.snapshot(
                old, journal_seq=hosted.applied_seq)
            new_engine = rebuild_with_plan(document, plan,
                                           workers=workers,
                                           executor=executor)
        if new_engine.signature() != old.signature():
            new_engine.close()
            raise SessionError(
                f"rebalance of session {hosted.name!r} aborted before "
                f"cutover: rebuilt engine's rule signature diverged "
                f"from the live one")
        new_engine.adopt_revision(old.revision)
        if hosted.journal is not None:
            new_engine.log.ensure_durable = hosted.journal.sync
        hosted.engine = new_engine
        if hosted.config is not None:
            hosted.config = hosted.config.replace(
                shards=plan.target_shards)
        hosted.revision += 1
        hosted.snapshot_cache = None
        old.close()
        if hosted.journal is not None:
            # The new layout must be the one recovery rebuilds: anchor
            # it with a snapshot at the caught-up seq.
            hosted.journal.write_snapshot(hosted.engine,
                                          hosted.applied_seq)
        return RebalanceReport(
            session=hosted.name, plan=plan, applied=True,
            caught_up_records=caught_up, revision=hosted.revision)

    def skew(self, name: str):
        """Live-tuple shard balance of the session (read lock)."""
        hosted = self._session(name)
        with hosted.lock.read():
            return shard_skew(hosted.engine)

    # -- writes ---------------------------------------------------------------

    def submit(self, name: str, event: UpdateEvent) -> int:
        """Queue ``event`` for the next flush; returns the queue depth.

        Never blocks on readers.  With ``auto_flush_every`` set, the
        submit that fills the queue flushes it inline before returning —
        the flush decision is made atomically with the depth read, so
        concurrent writers trigger exactly one inline flush per
        threshold crossing.  The returned depth is re-read after the
        flush (usually 0, but truthful when other writers queued events
        meanwhile or a failing batch was re-queued).
        """
        hosted = self._session(name)
        instrumentation = self._instrumentation
        if instrumentation is not None:
            instrumentation.submitted_events.inc()
        token = object()
        with hosted.queue_lock:
            hosted.queue.append(event)
            depth = len(hosted.queue)
            # Decide inline-flush duty atomically with the depth read:
            # exactly one writer claims it per threshold crossing, so
            # concurrent submitters cannot pile redundant flushes onto
            # the same backlog.
            claimed = (self._auto_flush_every is not None
                       and depth >= self._auto_flush_every
                       and hosted.flush_claim is None)
            if claimed:
                hosted.flush_claim = token
        if not claimed:
            return depth
        try:
            self.flush(name)
        finally:
            # flush() normally releases the claim when it drains the
            # queue; if it failed *before* the drain, release our own
            # claim so auto-flushing is not dead forever after.  Only
            # our token is released — by now another writer may hold a
            # legitimate claim on the post-drain backlog.
            with hosted.queue_lock:
                if hosted.flush_claim is token:
                    hosted.flush_claim = None
                depth = len(hosted.queue)
        # Post-flush depth, read under the lock: 0 unless other writers
        # queued during the flush (or a failing batch was re-queued).
        return depth

    def flush(self, name: str) -> BatchReport:
        """Apply every queued event as **one** coalesced batch,
        atomically with respect to readers.

        The whole drain is a single write-lock critical section and a
        single revision bump: the engine compiles the queue into a
        delta plan (:meth:`~repro.core.engine.CorrelationEngine.apply_batch`)
        and runs one maintenance pass, one rule refresh and one
        invariant check however deep the queue was.  The returned
        :class:`~repro.core.maintenance.BatchReport` still carries one
        audit row per submitted event.

        Poison-event isolation is preserved: plan compilation fails
        *before* any mutation, so on a compile-rejected batch (or any
        batch failure that provably mutated nothing) the flush falls
        back to applying the events one at a time.  That fallback keeps
        the documented semantics — events before the poison stay
        applied, the poison event is dropped (retrying it would fail
        every flush), the unapplied remainder is re-queued at the front
        in order, and a :class:`SessionError` names the poison event.
        Call :meth:`CorrelationService.mine` if the engine reports its
        incremental state as stale.
        """
        hosted = self._session(name)
        instrumentation = self._instrumentation
        started = time.perf_counter()
        try:
            with hosted.lock.write():
                with hosted.queue_lock:
                    batch = list(hosted.queue)
                    hosted.queue.clear()
                    # The backlog this claim covered is drained; the
                    # next threshold crossing may claim a fresh inline
                    # flush.
                    hosted.flush_claim = None
                if not batch:
                    return BatchReport(db_size=hosted.engine.db_size,
                                       event="apply-batch[0]")
                if hosted.journal is not None:
                    # Write-ahead: the batch is durable *before* any
                    # mutation.  If the append itself fails (disk full,
                    # injected crash) nothing was applied — put the
                    # batch back in order and surface the error.
                    try:
                        seq = self._journal_append(hosted, batch)
                    except Exception:
                        with hosted.queue_lock:
                            hosted.queue.extendleft(reversed(batch))
                        raise
                    # From here on the record replays on recovery with
                    # the same poison semantics the live path has, so
                    # the engine's outcome below — success, fallback,
                    # or mid-batch failure — is what replay reproduces.
                    hosted.applied_seq = seq
                version_before = hosted.engine.relation.version
                try:
                    report = hosted.engine.apply_batch(batch)
                except Exception:
                    if hosted.engine.relation.version != version_before:
                        # The batch died mid-application; per-event
                        # replay would double-apply the prefix.  Bump
                        # the revision (readers must notice the mutated
                        # state) and surface the error — the engine's
                        # version guard forces a re-mine before further
                        # incremental updates.
                        hosted.revision += 1
                        raise
                    self._flush_per_event(name, hosted, batch)
                hosted.revision += 1
                if hosted.journal is not None:
                    # Periodic compacted snapshot, inside the write
                    # lock so the state it captures is the flushed one.
                    hosted.journal.maybe_snapshot(hosted.engine,
                                                  hosted.applied_seq)
        except Exception:
            if instrumentation is not None:
                instrumentation.flush_failures.inc()
            raise
        if instrumentation is not None:
            instrumentation.flush_seconds.observe(
                time.perf_counter() - started)
            instrumentation.flush_batches.inc()
            instrumentation.flushed_events.inc(len(batch))
            self._observe_phases(report)
        return report

    def _observe_phases(self, report) -> None:
        """Feed a report's phase breakdown to the metric sink (the sink
        is duck-typed; older/minimal sinks simply lack the hook)."""
        observe = getattr(self._instrumentation, "observe_phases", None)
        if observe is not None and report.phases:
            observe(report.phases)

    def _flush_per_event(self, name: str, hosted: _Hosted,
                         batch: list[UpdateEvent]) -> None:
        """Fallback path isolating a poison event (documented semantics:
        prefix stays applied, poison dropped, remainder re-queued)."""
        def requeue(remainder: list[UpdateEvent], applied: int) -> None:
            with hosted.queue_lock:
                hosted.queue.extendleft(reversed(remainder))
            if applied:
                hosted.revision += 1

        isolate_poison_event(
            hosted.engine.apply, batch,
            requeue=requeue,
            describe=f"flush of session {name!r}")

    def flush_async(self, name: str) -> "Future[BatchReport]":
        """Start :meth:`flush` on a background worker and return its
        :class:`~concurrent.futures.Future`.

        This is the "exact refresh behind the estimate" write path:
        the caller queues events, kicks the flush here, and serves
        :meth:`estimate` reads immediately — the pending overlay covers
        the queue until the batch reaches the substrate, the sketch
        observers cover it from then on, and the Future resolves when
        the exact rules (and the next exact snapshot) are published.
        """
        hosted = self._session(name)  # fail fast on unknown sessions
        del hosted
        with self._registry_lock:
            if self._flush_executor is None:
                self._flush_executor = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="repro-flush")
            executor = self._flush_executor
        return executor.submit(self.flush, name)

    def mine(self, name: str) -> MaintenanceReport:
        """(Re-)run the initial from-scratch pass for ``name``."""
        hosted = self._session(name)
        with hosted.lock.write():
            if hosted.journal is not None and hosted.journal.has_snapshot:
                # A re-mine is a state transition recovery must repeat
                # (it un-stales an engine after a failed batch), so it
                # is journaled like any write — before it runs.
                hosted.applied_seq = hosted.journal.append_mine()
            report = hosted.engine.mine()
            hosted.revision += 1
            if hosted.journal is not None \
                    and not hosted.journal.has_snapshot:
                # A session created with ``mine=False`` could not take
                # its base snapshot at attach time; the first mine is
                # the first snapshot-able state.
                hosted.journal.ensure_base_snapshot(hosted.engine)
        if self._instrumentation is not None:
            self._observe_phases(report)
        return report

    # -- reads ----------------------------------------------------------------

    def snapshot(self, name: str) -> RuleSnapshot:
        """A frozen view of the current rules (shared read lock).

        Memoized per revision: while nothing flushed, repeated calls
        return the *same* snapshot object (or, if only the pending
        count moved, a copy that still shares the rules tuple and
        catalog) — an unchanged-revision read copies no rules.
        """
        hosted = self._session(name)
        return self._snapshot_locked(hosted)

    def rules(self, name: str,
              kind: RuleKind | None = None) -> tuple[AssociationRule, ...]:
        snap = self.snapshot(name)
        return snap.rules if kind is None else snap.of_kind(kind)

    def catalog(self, name: str) -> RuleCatalog:
        """The session's indexed query view (shared read lock); at an
        unchanged revision this is a cache hit, not a rebuild."""
        hosted = self._session(name)
        with hosted.lock.read():
            if not hosted.engine.is_mined:
                raise SessionError(
                    f"session {name!r} has no mined rules to query — "
                    f"call mine() first")
            return hosted.engine.catalog()

    def query(self, name: str) -> CatalogQuery:
        """A composable rule query over the session's catalog."""
        return self.catalog(name).query()

    def top_rules(self, name: str, n: int, *,
                  by: str = "confidence",
                  kind: RuleKind | None = None
                  ) -> tuple[AssociationRule, ...]:
        """The ``n`` best rules by a metric — a presorted-index slice."""
        query = self.query(name)
        if kind is not None:
            query = query.of_kind(kind)
        return query.top(n, by=by)

    def estimate(self, name: str, *, n: int | None = None,
                 by: str = "confidence",
                 kind: RuleKind | None = None,
                 z: float | None = None,
                 confidence_level: float | None = None) -> EstimateSnapshot:
        """An approximate snapshot that never waits for a flush.

        ``mode=estimate`` in one call: candidates come from the last
        *published* catalog (immutable — read without the session
        lock), counts come from the engine's maintenance-fresh sketch
        registries plus an exact overlay of still-queued insert events,
        and every metric carries its error bound.  The only lock taken
        on the hot path is the queue mutex (one list copy); the session
        read lock is touched once ever, to build the sketches without
        racing a writer.  Contrast :meth:`snapshot`, which serves exact
        numbers but queues behind an in-flight flush.
        """
        hosted = self._session(name)
        engine = hosted.engine
        snap = hosted.snapshot_cache
        if snap is None or snap.catalog is None \
                or snap.revision != hosted.revision:
            # Cold path: no published snapshot yet, or a completed
            # flush already bumped the revision past the cache — build
            # the fresh one the exact way.  The revision compare is
            # lock-free, and a flush bumps it only *after* applying,
            # so an in-flight flush never drags an estimate onto this
            # path: stale-by-revision means the new catalog is already
            # published and the read lock is (briefly) contended at
            # worst.
            snap = self._snapshot_locked(hosted)
        if snap.catalog is None:
            raise SessionError(
                f"session {name!r} has no mined rules to estimate — "
                f"call mine() first")
        if not engine.sketches_ready:
            with hosted.lock.read():
                engine.warm_sketches()
        with hosted.queue_lock:
            pending = list(hosted.queue)
        started = time.perf_counter()
        result = estimate_snapshot(
            engine, snap.catalog.rules, pending,
            session=name, revision=snap.revision,
            n=n, by=by, kind=kind, z=z,
            confidence_level=confidence_level)
        instrumentation = self._instrumentation
        if instrumentation is not None:
            # Duck-typed like observe_phases: minimal sinks may lack
            # the estimate-tier instruments.
            reads = getattr(instrumentation, "estimate_reads", None)
            if reads is not None:
                reads.inc()
            seconds = getattr(instrumentation, "estimate_seconds", None)
            if seconds is not None:
                seconds.observe(time.perf_counter() - started)
        return result

    def pending(self, name: str) -> int:
        """Events submitted but not yet flushed."""
        hosted = self._session(name)
        with hosted.queue_lock:
            return len(hosted.queue)

    def vocabulary(self, name: str) -> ItemVocabulary:
        """The session engine's item vocabulary.

        The vocabulary is append-only for the engine's lifetime, so
        callers may render item ids from *older* snapshots through it
        without holding any session lock.
        """
        return self._session(name).engine.vocabulary

    def config_of(self, name: str) -> EngineConfig:
        """The config the session's engine was built from."""
        hosted = self._session(name)
        if hosted.config is None:
            raise SessionError(
                f"session {name!r} carries no EngineConfig")
        return hosted.config

    def log_status(self, name: str) -> dict[str, object]:
        """Provenance-log accounting for status surfaces: the event
        count, how many events a bounded log has rotated out, and
        whether replaying it still reconstructs the full history."""
        hosted = self._session(name)
        log = hosted.engine.log
        return {
            "log_events": len(log),
            "log_dropped": log.dropped,
            "log_complete": log.complete,
        }

    def verify(self, name: str) -> VerificationResult:
        """Re-mine from scratch and compare (read lock: no mutation)."""
        hosted = self._session(name)
        with hosted.lock.read():
            return hosted.engine.verify_against_remine()

    def _snapshot_locked(self, hosted: _Hosted) -> RuleSnapshot:
        with hosted.lock.read():
            engine = hosted.engine
            mined = engine.is_mined
            # The engine-side memo is the staleness authority: a rule
            # set replaced by a mine/flush that later failed validation
            # changes the engine's catalog identity without bumping the
            # session revision, and the cached snapshot must not
            # outlive it.  On the hot path this is one memo hit and an
            # identity compare.
            current = engine.catalog() if mined else None
            instrumentation = self._instrumentation
            with hosted.queue_lock:
                pending = len(hosted.queue)
                cached = hosted.snapshot_cache
                if (cached is not None
                        and cached.revision == hosted.revision
                        and cached.catalog is current):
                    if instrumentation is not None:
                        instrumentation.snapshot_hits.inc()
                    if cached.pending_events != pending:
                        # Only the queue depth moved: refresh that one
                        # field; the rules tuple, signature and catalog
                        # are shared with the cached snapshot, not
                        # copied.
                        cached = replace(cached, pending_events=pending)
                        hosted.snapshot_cache = cached
                    return cached
            if instrumentation is not None:
                instrumentation.snapshot_misses.inc()
            snap = RuleSnapshot(
                session=hosted.name,
                backend=engine.backend_name,
                db_size=engine.db_size,
                revision=hosted.revision,
                # The catalog's canonical tuple is the snapshot's rule
                # view — shared, never re-copied per call.
                rules=current.rules if mined else (),
                signature=engine.signature() if mined else frozenset(),
                pending_events=pending,
                catalog=current,
            )
            with hosted.queue_lock:
                hosted.snapshot_cache = snap
            return snap

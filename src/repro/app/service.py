"""Thread-safe serving facade over correlation engines.

The paper's application is one synchronous menu loop around one
dataset.  :class:`CorrelationService` is the shape a *served* system
needs instead: it hosts many named sessions (one engine each), lets
writers stream update events into a batched queue, and lets any number
of concurrent readers query immutable :class:`RuleSnapshot` views while
a flush is pending.

Concurrency model, per session:

* a read-write lock (:class:`ReadWriteLock`, writer-preferring)
  guards the engine — queries share the read side, ``mine``/``flush``
  take the write side;
* :meth:`CorrelationService.submit` appends to a queue under a cheap
  mutex and never touches the engine, so producers are not blocked by
  readers (set ``auto_flush_every`` to bound queue growth by flushing
  inline once the queue reaches that depth);
* :meth:`CorrelationService.flush` drains the queue inside one
  write-lock hold and applies it as **one coalesced delta plan**
  (``engine.apply_batch``) — one maintenance pass, one rule refresh,
  one invariant check and one revision bump per flush — so readers
  observe either the pre-batch or the post-batch rule set, never a
  half-applied one;
* :class:`RuleSnapshot` results are frozen views — they stay valid
  (and stale) after the lock is released, which is the point.  They
  are *memoized per revision*: while no flush intervenes, repeated
  ``snapshot()`` calls return the same object (sharing one rules tuple
  and one :class:`~repro.core.catalog.RuleCatalog`), so a hot
  unchanged-revision read path copies nothing and serves indexed
  queries (top-k by metric, by-item, by-RHS) straight from the
  catalog.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Iterator
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.app.estimate import EstimateSnapshot, estimate_snapshot
from repro.core.catalog import CatalogQuery, RuleCatalog
from repro.core.config import EngineConfig
from repro.core.engine import (
    CorrelationEngine,
    RuleSignature,
    VerificationResult,
    engine as build_engine,
)
from repro.core.events import UpdateEvent
from repro.core.maintenance import BatchReport, MaintenanceReport
from repro.core.rules import AssociationRule, RuleKind
from repro.errors import SessionError
from repro.mining.itemsets import ItemVocabulary
from repro.relation.relation import AnnotatedRelation

if TYPE_CHECKING:  # the app layer never imports the server at runtime
    from repro.server.metrics import ServiceInstrumentation


@dataclass(frozen=True)
class RuleSnapshot:
    """An immutable, point-in-time view of one session's rule set.

    A snapshot is a thin view over the engine's revision-memoized
    :class:`~repro.core.catalog.RuleCatalog`: ``rules`` *is* the
    catalog's rule tuple (shared, never re-copied per snapshot), and
    indexed lookups / composable queries go through :attr:`catalog`.
    """

    session: str
    backend: str
    db_size: int
    #: Monotone per-session *flush* counter: bumped by ``mine`` and
    #: each flush.  Not the engine's rule revision — a per-event
    #: fallback flush bumps this once while the engine advances once
    #: per applied event.  For comparisons against
    #: ``Recommendation.revision`` / ``AuditEntry.revision`` (which
    #: carry the engine number) use ``snapshot.catalog.revision``.
    revision: int
    rules: tuple[AssociationRule, ...]
    signature: frozenset[RuleSignature]
    #: Events queued but not yet applied when the snapshot was taken.
    pending_events: int
    #: The indexed query view this snapshot serves from (``None`` only
    #: for a session created with ``mine=False`` and never mined).
    catalog: RuleCatalog | None = None

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self.rules)

    def of_kind(self, kind: RuleKind) -> tuple[AssociationRule, ...]:
        if self.catalog is not None:
            return self.catalog.of_kind(kind)
        return tuple(rule for rule in self.rules if rule.kind is kind)

    def query(self) -> CatalogQuery:
        """A composable query over this snapshot's catalog."""
        if self.catalog is None:
            raise SessionError(
                f"session {self.session!r} has no mined rules to query")
        return self.catalog.query()


def isolate_poison_event(apply, batch, *, requeue, describe,
                         noun: str = "event") -> None:
    """Shared batch-failure fallback: apply ``batch`` one event at a
    time after a compile-rejected (provably unmutated) ``apply_batch``.

    The documented semantics live here once for every front-end: the
    valid prefix stays applied, the poison event is dropped (retrying
    it would fail every flush), and ``requeue(remainder, applied)`` is
    handed the unapplied tail to put back at the front of its queue.
    Always raises :class:`SessionError` — naming the poison event, or
    the compiler/per-event disagreement if everything applied.
    """
    applied = 0
    for position, event in enumerate(batch):
        try:
            apply(event)
            applied += 1
        except Exception as error:
            remainder = list(batch[position + 1:])
            requeue(remainder, applied)
            raise SessionError(
                f"{describe} failed on {noun} {position + 1} of "
                f"{len(batch)} ({event!r}); {applied} applied, "
                f"{len(remainder)} re-queued, the failing {noun} "
                f"dropped") from error
    requeue([], applied)
    raise SessionError(
        f"{describe}: batch compilation failed but every {noun} applied "
        f"individually — plan compiler and per-event application "
        f"disagree")


class ReadWriteLock:
    """Writer-preferring read-write lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers, so a steady read load
    cannot starve flushes.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._condition:
            while self._active_writer or self._waiting_writers:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if self._active_readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._active_writer or self._active_readers:
                    self._condition.wait()
                self._active_writer = True
            finally:
                self._waiting_writers -= 1
        try:
            yield
        finally:
            with self._condition:
                self._active_writer = False
                self._condition.notify_all()


@dataclass
class _Hosted:
    """One named session: an engine plus its locks and update queue."""

    name: str
    engine: CorrelationEngine
    #: The config the engine was built from (per-session override or
    #: the service default) — surfaced to status consumers.
    config: EngineConfig | None = None
    lock: ReadWriteLock = field(default_factory=ReadWriteLock)
    queue_lock: threading.Lock = field(default_factory=threading.Lock)
    queue: deque[UpdateEvent] = field(default_factory=deque)
    revision: int = 0
    #: Token of the writer holding the inline auto-flush duty (None when
    #: unclaimed).  Set under ``queue_lock`` by the submit that crosses
    #: the threshold, cleared under ``queue_lock`` when a flush drains
    #: the queue — so exactly one writer triggers per crossing, decided
    #: atomically with the depth read.  A token (not a bool) lets a
    #: failed claimant release only its *own* claim, never one a later
    #: writer legitimately took after the drain.
    flush_claim: object | None = None
    #: The last snapshot built, reused verbatim while the revision (and
    #: queue depth) hold still — unchanged-revision reads are O(1).
    snapshot_cache: RuleSnapshot | None = None


class CorrelationService:
    """Hosts named correlation sessions for concurrent readers/writers."""

    def __init__(self, *,
                 config: EngineConfig | None = None,
                 auto_flush_every: int | None = None,
                 instrumentation: "ServiceInstrumentation | None" = None
                 ) -> None:
        if auto_flush_every is not None and auto_flush_every < 1:
            raise SessionError(
                f"auto_flush_every must be >= 1 or None, "
                f"got {auto_flush_every}")
        self._default_config = config
        self._auto_flush_every = auto_flush_every
        #: Optional metric sink (the serving tier threads in a
        #: :class:`repro.server.metrics.ServiceInstrumentation`); the
        #: service only ever calls ``inc``/``observe`` on it, so any
        #: object with that surface works and ``None`` costs one
        #: branch per instrumented operation.
        self._instrumentation = instrumentation
        self._registry_lock = threading.Lock()
        self._hosted: dict[str, _Hosted] = {}
        #: Lazily created worker for :meth:`flush_async` — the exact
        #: refresh runs here while estimate reads keep serving.
        self._flush_executor: ThreadPoolExecutor | None = None

    # -- session registry ------------------------------------------------------

    def create(self, name: str,
               relation: AnnotatedRelation | None = None,
               config: EngineConfig | None = None,
               *, mine: bool = True) -> RuleSnapshot:
        """Register session ``name`` over ``relation`` and (by default)
        run the initial mine; returns the first snapshot."""
        config = config if config is not None else self._default_config
        if config is None:
            raise SessionError(
                f"no EngineConfig for session {name!r}: pass one to "
                f"create() or construct the service with a default")
        with self._registry_lock:
            if name in self._hosted:
                raise SessionError(f"session {name!r} already exists")
        # The factory dispatches on ``config.shards``, so a session over
        # a sharded engine is served through the identical facade.
        hosted = _Hosted(name=name,
                         engine=build_engine(relation, config),
                         config=config)
        # Mine before publishing: a failed mine must not leave a broken
        # session squatting on the name (nobody can reach it yet, so no
        # write lock is needed).
        if mine:
            hosted.engine.mine()
            hosted.revision += 1
        with self._registry_lock:
            if name in self._hosted:
                raise SessionError(f"session {name!r} already exists")
            self._hosted[name] = hosted
        return self._snapshot_locked(hosted)

    def sessions(self) -> tuple[str, ...]:
        with self._registry_lock:
            return tuple(sorted(self._hosted))

    def drop(self, name: str, *, force: bool = False) -> None:
        """Remove session ``name``.

        A session with queued-but-unflushed events refuses to go — the
        writes would be silently lost — unless ``force=True``
        explicitly discards them.  The pending check and the removal
        happen in one registry-lock critical section, so any submit
        that completed before the drop is counted by the check.
        """
        with self._registry_lock:
            hosted = self._hosted.get(name)
            if hosted is None:
                raise SessionError(f"unknown session {name!r}")
            with hosted.queue_lock:
                pending = len(hosted.queue)
                if pending and not force:
                    raise SessionError(
                        f"session {name!r} has {pending} queued event(s) "
                        f"not yet flushed — flush first, or drop("
                        f"force=True) to discard them")
                hosted.queue.clear()
            del self._hosted[name]
        # Outside the registry lock: shutting a shard pool down waits
        # for its workers, and nobody can reach the session anymore.
        hosted.engine.close()

    def close(self) -> None:
        """Release every hosted engine's pooled resources (worker
        pools, shared segments).  Sessions stay registered and usable —
        a sharded engine restarts its pool lazily — so this is safe to
        call at any quiesce point; the server's graceful drain calls it
        after the final flushes."""
        with self._registry_lock:
            hosted_engines = [hosted.engine
                              for hosted in self._hosted.values()]
            executor, self._flush_executor = self._flush_executor, None
        if executor is not None:
            # Let in-flight async flushes land before releasing engine
            # pools; a later flush_async simply starts a fresh worker.
            executor.shutdown(wait=True)
        for engine in hosted_engines:
            engine.close()

    def _session(self, name: str) -> _Hosted:
        with self._registry_lock:
            try:
                return self._hosted[name]
            except KeyError:
                known = ", ".join(sorted(self._hosted)) or "(none)"
                raise SessionError(
                    f"unknown session {name!r}; known: {known}") from None

    # -- writes ---------------------------------------------------------------

    def submit(self, name: str, event: UpdateEvent) -> int:
        """Queue ``event`` for the next flush; returns the queue depth.

        Never blocks on readers.  With ``auto_flush_every`` set, the
        submit that fills the queue flushes it inline before returning —
        the flush decision is made atomically with the depth read, so
        concurrent writers trigger exactly one inline flush per
        threshold crossing.  The returned depth is re-read after the
        flush (usually 0, but truthful when other writers queued events
        meanwhile or a failing batch was re-queued).
        """
        hosted = self._session(name)
        instrumentation = self._instrumentation
        if instrumentation is not None:
            instrumentation.submitted_events.inc()
        token = object()
        with hosted.queue_lock:
            hosted.queue.append(event)
            depth = len(hosted.queue)
            # Decide inline-flush duty atomically with the depth read:
            # exactly one writer claims it per threshold crossing, so
            # concurrent submitters cannot pile redundant flushes onto
            # the same backlog.
            claimed = (self._auto_flush_every is not None
                       and depth >= self._auto_flush_every
                       and hosted.flush_claim is None)
            if claimed:
                hosted.flush_claim = token
        if not claimed:
            return depth
        try:
            self.flush(name)
        finally:
            # flush() normally releases the claim when it drains the
            # queue; if it failed *before* the drain, release our own
            # claim so auto-flushing is not dead forever after.  Only
            # our token is released — by now another writer may hold a
            # legitimate claim on the post-drain backlog.
            with hosted.queue_lock:
                if hosted.flush_claim is token:
                    hosted.flush_claim = None
                depth = len(hosted.queue)
        # Post-flush depth, read under the lock: 0 unless other writers
        # queued during the flush (or a failing batch was re-queued).
        return depth

    def flush(self, name: str) -> BatchReport:
        """Apply every queued event as **one** coalesced batch,
        atomically with respect to readers.

        The whole drain is a single write-lock critical section and a
        single revision bump: the engine compiles the queue into a
        delta plan (:meth:`~repro.core.engine.CorrelationEngine.apply_batch`)
        and runs one maintenance pass, one rule refresh and one
        invariant check however deep the queue was.  The returned
        :class:`~repro.core.maintenance.BatchReport` still carries one
        audit row per submitted event.

        Poison-event isolation is preserved: plan compilation fails
        *before* any mutation, so on a compile-rejected batch (or any
        batch failure that provably mutated nothing) the flush falls
        back to applying the events one at a time.  That fallback keeps
        the documented semantics — events before the poison stay
        applied, the poison event is dropped (retrying it would fail
        every flush), the unapplied remainder is re-queued at the front
        in order, and a :class:`SessionError` names the poison event.
        Call :meth:`CorrelationService.mine` if the engine reports its
        incremental state as stale.
        """
        hosted = self._session(name)
        instrumentation = self._instrumentation
        started = time.perf_counter()
        try:
            with hosted.lock.write():
                with hosted.queue_lock:
                    batch = list(hosted.queue)
                    hosted.queue.clear()
                    # The backlog this claim covered is drained; the
                    # next threshold crossing may claim a fresh inline
                    # flush.
                    hosted.flush_claim = None
                if not batch:
                    return BatchReport(db_size=hosted.engine.db_size,
                                       event="apply-batch[0]")
                version_before = hosted.engine.relation.version
                try:
                    report = hosted.engine.apply_batch(batch)
                except Exception:
                    if hosted.engine.relation.version != version_before:
                        # The batch died mid-application; per-event
                        # replay would double-apply the prefix.  Bump
                        # the revision (readers must notice the mutated
                        # state) and surface the error — the engine's
                        # version guard forces a re-mine before further
                        # incremental updates.
                        hosted.revision += 1
                        raise
                    self._flush_per_event(name, hosted, batch)
                hosted.revision += 1
        except Exception:
            if instrumentation is not None:
                instrumentation.flush_failures.inc()
            raise
        if instrumentation is not None:
            instrumentation.flush_seconds.observe(
                time.perf_counter() - started)
            instrumentation.flush_batches.inc()
            instrumentation.flushed_events.inc(len(batch))
            self._observe_phases(report)
        return report

    def _observe_phases(self, report) -> None:
        """Feed a report's phase breakdown to the metric sink (the sink
        is duck-typed; older/minimal sinks simply lack the hook)."""
        observe = getattr(self._instrumentation, "observe_phases", None)
        if observe is not None and report.phases:
            observe(report.phases)

    def _flush_per_event(self, name: str, hosted: _Hosted,
                         batch: list[UpdateEvent]) -> None:
        """Fallback path isolating a poison event (documented semantics:
        prefix stays applied, poison dropped, remainder re-queued)."""
        def requeue(remainder: list[UpdateEvent], applied: int) -> None:
            with hosted.queue_lock:
                hosted.queue.extendleft(reversed(remainder))
            if applied:
                hosted.revision += 1

        isolate_poison_event(
            hosted.engine.apply, batch,
            requeue=requeue,
            describe=f"flush of session {name!r}")

    def flush_async(self, name: str) -> "Future[BatchReport]":
        """Start :meth:`flush` on a background worker and return its
        :class:`~concurrent.futures.Future`.

        This is the "exact refresh behind the estimate" write path:
        the caller queues events, kicks the flush here, and serves
        :meth:`estimate` reads immediately — the pending overlay covers
        the queue until the batch reaches the substrate, the sketch
        observers cover it from then on, and the Future resolves when
        the exact rules (and the next exact snapshot) are published.
        """
        hosted = self._session(name)  # fail fast on unknown sessions
        del hosted
        with self._registry_lock:
            if self._flush_executor is None:
                self._flush_executor = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="repro-flush")
            executor = self._flush_executor
        return executor.submit(self.flush, name)

    def mine(self, name: str) -> MaintenanceReport:
        """(Re-)run the initial from-scratch pass for ``name``."""
        hosted = self._session(name)
        with hosted.lock.write():
            report = hosted.engine.mine()
            hosted.revision += 1
        if self._instrumentation is not None:
            self._observe_phases(report)
        return report

    # -- reads ----------------------------------------------------------------

    def snapshot(self, name: str) -> RuleSnapshot:
        """A frozen view of the current rules (shared read lock).

        Memoized per revision: while nothing flushed, repeated calls
        return the *same* snapshot object (or, if only the pending
        count moved, a copy that still shares the rules tuple and
        catalog) — an unchanged-revision read copies no rules.
        """
        hosted = self._session(name)
        return self._snapshot_locked(hosted)

    def rules(self, name: str,
              kind: RuleKind | None = None) -> tuple[AssociationRule, ...]:
        snap = self.snapshot(name)
        return snap.rules if kind is None else snap.of_kind(kind)

    def catalog(self, name: str) -> RuleCatalog:
        """The session's indexed query view (shared read lock); at an
        unchanged revision this is a cache hit, not a rebuild."""
        hosted = self._session(name)
        with hosted.lock.read():
            if not hosted.engine.is_mined:
                raise SessionError(
                    f"session {name!r} has no mined rules to query — "
                    f"call mine() first")
            return hosted.engine.catalog()

    def query(self, name: str) -> CatalogQuery:
        """A composable rule query over the session's catalog."""
        return self.catalog(name).query()

    def top_rules(self, name: str, n: int, *,
                  by: str = "confidence",
                  kind: RuleKind | None = None
                  ) -> tuple[AssociationRule, ...]:
        """The ``n`` best rules by a metric — a presorted-index slice."""
        query = self.query(name)
        if kind is not None:
            query = query.of_kind(kind)
        return query.top(n, by=by)

    def estimate(self, name: str, *, n: int | None = None,
                 by: str = "confidence",
                 kind: RuleKind | None = None,
                 z: float | None = None,
                 confidence_level: float | None = None) -> EstimateSnapshot:
        """An approximate snapshot that never waits for a flush.

        ``mode=estimate`` in one call: candidates come from the last
        *published* catalog (immutable — read without the session
        lock), counts come from the engine's maintenance-fresh sketch
        registries plus an exact overlay of still-queued insert events,
        and every metric carries its error bound.  The only lock taken
        on the hot path is the queue mutex (one list copy); the session
        read lock is touched once ever, to build the sketches without
        racing a writer.  Contrast :meth:`snapshot`, which serves exact
        numbers but queues behind an in-flight flush.
        """
        hosted = self._session(name)
        engine = hosted.engine
        snap = hosted.snapshot_cache
        if snap is None or snap.catalog is None \
                or snap.revision != hosted.revision:
            # Cold path: no published snapshot yet, or a completed
            # flush already bumped the revision past the cache — build
            # the fresh one the exact way.  The revision compare is
            # lock-free, and a flush bumps it only *after* applying,
            # so an in-flight flush never drags an estimate onto this
            # path: stale-by-revision means the new catalog is already
            # published and the read lock is (briefly) contended at
            # worst.
            snap = self._snapshot_locked(hosted)
        if snap.catalog is None:
            raise SessionError(
                f"session {name!r} has no mined rules to estimate — "
                f"call mine() first")
        if not engine.sketches_ready:
            with hosted.lock.read():
                engine.warm_sketches()
        with hosted.queue_lock:
            pending = list(hosted.queue)
        started = time.perf_counter()
        result = estimate_snapshot(
            engine, snap.catalog.rules, pending,
            session=name, revision=snap.revision,
            n=n, by=by, kind=kind, z=z,
            confidence_level=confidence_level)
        instrumentation = self._instrumentation
        if instrumentation is not None:
            # Duck-typed like observe_phases: minimal sinks may lack
            # the estimate-tier instruments.
            reads = getattr(instrumentation, "estimate_reads", None)
            if reads is not None:
                reads.inc()
            seconds = getattr(instrumentation, "estimate_seconds", None)
            if seconds is not None:
                seconds.observe(time.perf_counter() - started)
        return result

    def pending(self, name: str) -> int:
        """Events submitted but not yet flushed."""
        hosted = self._session(name)
        with hosted.queue_lock:
            return len(hosted.queue)

    def vocabulary(self, name: str) -> ItemVocabulary:
        """The session engine's item vocabulary.

        The vocabulary is append-only for the engine's lifetime, so
        callers may render item ids from *older* snapshots through it
        without holding any session lock.
        """
        return self._session(name).engine.vocabulary

    def config_of(self, name: str) -> EngineConfig:
        """The config the session's engine was built from."""
        hosted = self._session(name)
        if hosted.config is None:
            raise SessionError(
                f"session {name!r} carries no EngineConfig")
        return hosted.config

    def log_status(self, name: str) -> dict[str, object]:
        """Provenance-log accounting for status surfaces: the event
        count, how many events a bounded log has rotated out, and
        whether replaying it still reconstructs the full history."""
        hosted = self._session(name)
        log = hosted.engine.log
        return {
            "log_events": len(log),
            "log_dropped": log.dropped,
            "log_complete": log.complete,
        }

    def verify(self, name: str) -> VerificationResult:
        """Re-mine from scratch and compare (read lock: no mutation)."""
        hosted = self._session(name)
        with hosted.lock.read():
            return hosted.engine.verify_against_remine()

    def _snapshot_locked(self, hosted: _Hosted) -> RuleSnapshot:
        with hosted.lock.read():
            engine = hosted.engine
            mined = engine.is_mined
            # The engine-side memo is the staleness authority: a rule
            # set replaced by a mine/flush that later failed validation
            # changes the engine's catalog identity without bumping the
            # session revision, and the cached snapshot must not
            # outlive it.  On the hot path this is one memo hit and an
            # identity compare.
            current = engine.catalog() if mined else None
            instrumentation = self._instrumentation
            with hosted.queue_lock:
                pending = len(hosted.queue)
                cached = hosted.snapshot_cache
                if (cached is not None
                        and cached.revision == hosted.revision
                        and cached.catalog is current):
                    if instrumentation is not None:
                        instrumentation.snapshot_hits.inc()
                    if cached.pending_events != pending:
                        # Only the queue depth moved: refresh that one
                        # field; the rules tuple, signature and catalog
                        # are shared with the cached snapshot, not
                        # copied.
                        cached = replace(cached, pending_events=pending)
                        hosted.snapshot_cache = cached
                    return cached
            if instrumentation is not None:
                instrumentation.snapshot_misses.inc()
            snap = RuleSnapshot(
                session=hosted.name,
                backend=engine.backend_name,
                db_size=engine.db_size,
                revision=hosted.revision,
                # The catalog's canonical tuple is the snapshot's rule
                # view — shared, never re-copied per call.
                rules=current.rules if mined else (),
                signature=engine.signature() if mined else frozenset(),
                pending_events=pending,
                catalog=current,
            )
            with hosted.queue_lock:
                hosted.snapshot_cache = snap
            return snap

"""Offline durability operations: ``repro journal | recover | rebalance``.

These commands operate directly on one session's journal store
directory (``<journal-root>/<name>`` under a server, or any directory
holding an ``events.wal``) — no server required, which is the point:
they are what an operator reaches for when the process is *down*.

::

    python -m repro journal   runs/demo --records
    python -m repro recover   runs/demo --upto 41 --snapshot-out s.json
    python -m repro rebalance runs/demo --shards 4

``journal`` is the audit surface (store status, record-by-record
listing); ``recover`` rebuilds the engine from snapshot + replay and
reports exactly what it recovered; ``rebalance`` re-layouts the
recovered state and anchors the new layout back into the store as a
snapshot, so the next recovery (or server start) comes up balanced.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

from repro.core.journal import JournalStore, WAL_NAME, event_to_json
from repro.errors import ReproError
from repro.shard.rebalance import plan_rebalance, rebuild_with_plan, shard_skew


def signature_digest(engine) -> str:
    """Short stable digest of the engine's rule signature (for eyeball
    equality across recoveries; the full signature is O(rules))."""
    canonical = json.dumps(sorted(map(list, engine.signature())),
                           sort_keys=True, default=list)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro ops",
        description="Offline journal-store operations.")
    commands = parser.add_subparsers(dest="command", required=True)

    journal = commands.add_parser(
        "journal", help="inspect a journal store (status, audit listing)")
    journal.add_argument("directory", help="journal store directory")
    journal.add_argument("--records", action="store_true",
                         help="list every journal record (the audit "
                              "trail recovery would replay)")
    journal.add_argument("--after", type=int, default=0, metavar="SEQ",
                         help="with --records, start after this seq")

    recover = commands.add_parser(
        "recover", help="rebuild the engine: snapshot + journal replay")
    recover.add_argument("directory", help="journal store directory")
    recover.add_argument("--upto", type=int, default=None, metavar="SEQ",
                         help="point-in-time: recover the state as of "
                              "this journal seq (default: everything "
                              "durable)")
    recover.add_argument("--snapshot-out", default=None, metavar="FILE",
                         help="write the recovered state as a "
                              "persistence snapshot document")
    recover.add_argument("--verify", action="store_true",
                         help="re-mine from scratch and check the "
                              "recovered rules match exactly")

    rebalance = commands.add_parser(
        "rebalance", help="re-layout a recovered store's shards")
    rebalance.add_argument("directory", help="journal store directory")
    rebalance.add_argument("--shards", type=int, default=None,
                           metavar="N",
                           help="target shard count (default: keep the "
                                "current count, just even the layout)")
    rebalance.add_argument("--dry-run", action="store_true",
                           help="print the plan without writing "
                                "anything")
    return parser


def _print(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _open_store(directory: str) -> JournalStore:
    """Open an *existing* store: opening a typo'd path must inspect an
    error, not scaffold an empty journal there."""
    if not os.path.isfile(os.path.join(directory, WAL_NAME)):
        raise ReproError(
            f"{directory!r} is not a journal store (no {WAL_NAME})")
    return JournalStore(directory)


def _cmd_journal(args: argparse.Namespace) -> int:
    store = _open_store(args.directory)
    try:
        payload: dict = {"status": store.status()}
        if args.records:
            listing = []
            for record in store.records(after=args.after,
                                        tolerate_torn_tail=True):
                entry: dict = {"seq": record.seq, "kind": record.kind}
                if record.kind == "batch":
                    entry["events"] = [event_to_json(event)["type"]
                                       for event in record.events]
                listing.append(entry)
            payload["records"] = listing
        _print(payload)
    finally:
        store.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    store = _open_store(args.directory)
    try:
        result = store.recover(upto=args.upto)
    finally:
        store.close()
    engine = result.engine
    try:
        payload = {
            "snapshot_seq": result.snapshot_seq,
            "recovered_seq": result.last_seq,
            "truncated_bytes": result.truncated_bytes,
            "replayed_records": result.replay.records,
            "replayed_events": result.replay.events,
            "replayed_mines": result.replay.mines,
            "db_size": engine.relation.live_count,
            "rules": len(engine.catalog()),
            "signature": signature_digest(engine),
        }
        if args.verify:
            verification = engine.verify_against_remine()
            payload["verified"] = verification.equivalent
            if not verification.equivalent:
                payload["verify_detail"] = verification.explain()
        if args.snapshot_out is not None:
            from repro.core import persistence

            document = persistence.snapshot(
                engine, journal_seq=result.last_seq)
            with open(args.snapshot_out, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            payload["snapshot_out"] = args.snapshot_out
        _print(payload)
        if args.verify and not payload["verified"]:
            return 1
    finally:
        engine.close()
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    store = _open_store(args.directory)
    try:
        result = store.recover()
        engine = result.engine
        try:
            plan = plan_rebalance(engine, target_shards=args.shards)
            payload = {
                "recovered_seq": result.last_seq,
                "plan": plan.as_dict(),
                "skew_before": shard_skew(engine).as_dict(),
                "applied": False,
            }
            if not args.dry_run and not plan.noop:
                from repro.core import persistence

                document = persistence.snapshot(
                    engine, journal_seq=result.last_seq)
                rebuilt = rebuild_with_plan(document, plan)
                try:
                    if rebuilt.signature() != engine.signature():
                        raise ReproError(
                            "rebalanced engine diverged from the "
                            "recovered state; store left untouched")
                    payload["skew_after"] = shard_skew(rebuilt).as_dict()
                    # Anchor the new layout: the next recovery (or the
                    # server's startup pass) loads this snapshot and
                    # comes up already balanced.
                    store.write_snapshot(rebuilt, result.last_seq)
                finally:
                    rebuilt.close()
                payload["applied"] = True
            _print(payload)
        finally:
            engine.close()
    finally:
        store.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {"journal": _cmd_journal, "recover": _cmd_recover,
               "rebalance": _cmd_rebalance}[args.command]
    try:
        return handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

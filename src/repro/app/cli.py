"""The interactive menu application — the paper's Figure 5.

The paper's app first asks for a dataset file, then offers numbered
operations; options prompt for thresholds or update-file paths as in
its Figures 6, 14 and 15.  This CLI reproduces that flow and adds a
non-interactive mode (``--commands``) where the same answers are read
from a script file, one per line — which is also how the test suite
drives it.

Usage::

    repro-annotations data.txt                 # interactive
    repro-annotations data.txt --commands ops.txt
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Iterator

from repro.core.rules import RuleKind
from repro.errors import ReproError
from repro.app.session import Session
from repro.mining.apriori import COUNTER_STRATEGIES
from repro.mining.backend import DEFAULT_BACKEND, available_backends

MENU = """
Please select an operation:
 1. Discover data-to-annotation rules
 2. Discover annotation-to-annotation rules
 3. Load generalization rules (extended database)
 4. Add annotations to existing tuples (update file)
 5. Add annotated tuples (dataset-format file)
 6. Add un-annotated tuples (dataset-format file)
 7. Recommend missing annotations
 8. Write current rules to a file
 9. Show status
10. Show compressed rules (minimal generators)
11. Show candidate rules (near the thresholds)
12. Save session state (JSON snapshot)
13. Load session state (JSON snapshot)
14. Explain a rule (evidence tuples and measures)
15. Review unexplained annotations (removal suggestions)
16. Flush queued updates (coalesced batch)
17. Show top rules by a metric (paged)
18. Show rules predicting an annotation
19. Show estimated top rules (sketch tier, error bounds)
20. Show significant rules (chi-square / p-value tier)
 0. Exit
""".rstrip()


class CommandLoop:
    """Menu loop with injectable input/output for scripted use."""

    def __init__(self,
                 read: Callable[[str], str],
                 write: Callable[[str], None],
                 *,
                 backend: str = DEFAULT_BACKEND,
                 counter: str = "auto",
                 auto_flush_every: int | None = None,
                 shards: int = 1) -> None:
        self._read = read
        self._write = write
        self.session = Session(backend=backend, counter=counter,
                               auto_flush_every=auto_flush_every,
                               shards=shards)

    # -- prompting helpers ----------------------------------------------------

    def _ask(self, prompt: str) -> str:
        return self._read(prompt).strip()

    def _ask_fraction(self, name: str) -> float:
        raw = self._ask(f"Enter the minimum {name} value: ")
        try:
            return float(raw)
        except ValueError:
            raise ReproError(f"{name} must be a number, got {raw!r}") from None

    # -- the loop ----------------------------------------------------------------

    def run(self, dataset_path: str | None = None) -> int:
        if dataset_path is None:
            dataset_path = self._ask("Enter the file path for the dataset: ")
        count = self.session.load_dataset(dataset_path)
        self._write(f"Loaded {count} tuples from {dataset_path}")
        while True:
            self._write(MENU)
            choice = self._ask("> ")
            if choice == "0" or choice == "":
                self._write("Goodbye.")
                return 0
            try:
                self._dispatch(choice)
            except ReproError as error:
                self._write(f"Error: {error}")
            except FileNotFoundError as error:
                self._write(f"Error: {error}")

    def _dispatch(self, choice: str) -> None:
        if choice == "1":
            self._mine_and_show(RuleKind.DATA_TO_ANNOTATION)
        elif choice == "2":
            self._mine_and_show(RuleKind.ANNOTATION_TO_ANNOTATION)
        elif choice == "3":
            path = self._ask("Enter the generalization rules file: ")
            count = self.session.load_generalizations(path)
            self._write(f"Loaded {count} generalization rule(s); "
                        f"re-run discovery to mine the extended database")
        elif choice == "4":
            path = self._ask("Enter the annotation update file: ")
            self._report_update(self.session.add_annotations_from_file(path))
        elif choice == "5":
            path = self._ask("Enter the annotated tuples file: ")
            self._report_update(
                self.session.add_annotated_tuples_from_file(path))
        elif choice == "6":
            path = self._ask("Enter the un-annotated tuples file: ")
            self._report_update(
                self.session.add_unannotated_tuples_from_file(path))
        elif choice == "7":
            self._recommend()
        elif choice == "8":
            path = self._ask("Enter the output file for the rules: ")
            written = self.session.write_rules(path)
            self._write(f"Wrote {written} rule(s) to {path}")
        elif choice == "9":
            for key, value in self.session.status().items():
                self._write(f"  {key}: {value}")
        elif choice == "10":
            from repro.app.report import rules_report
            manager = self.session.manager
            if manager is None:
                self._write("Error: no rules mined yet")
            else:
                self._write(rules_report(manager, compress=True))
        elif choice == "11":
            from repro.app.report import candidates_report
            manager = self.session.manager
            if manager is None:
                self._write("Error: no rules mined yet")
            else:
                self._write(candidates_report(manager))
        elif choice == "12":
            from repro.core import persistence
            manager = self.session.manager
            if manager is None:
                self._write("Error: no rules mined yet")
            else:
                path = self._ask("Enter the snapshot file to write: ")
                persistence.save(manager, path)
                self._write(f"Saved session state to {path}")
        elif choice == "13":
            from repro.core import persistence
            path = self._ask("Enter the snapshot file to load: ")
            manager = persistence.load(path)
            self.session.restore_snapshot(manager, f"(snapshot) {path}")
            self._write(f"Restored {manager.db_size} tuples and "
                        f"{len(manager.rules)} rule(s) from {path}")
        elif choice == "14":
            self._explain_rule()
        elif choice == "16":
            report = self.session.flush()
            if report is None:
                self._write("No updates queued.")
            else:
                self._write(report.summary())
        elif choice == "17":
            self._top_rules()
        elif choice == "18":
            self._rules_for_annotation()
        elif choice == "19":
            self._estimate_rules()
        elif choice == "20":
            self._significant_rules()
        elif choice == "15":
            from repro.exploitation.removal import (
                UnexplainedAnnotationFinder,
            )

            manager = self.session.manager
            if manager is None:
                self._write("Error: no rules mined yet")
            else:
                suggestions = UnexplainedAnnotationFinder(manager).scan()
                if not suggestions:
                    self._write("No unexplained annotations found.")
                else:
                    self._write(f"{len(suggestions)} attachment(s) to "
                                f"review:")
                    for suggestion in suggestions[:20]:
                        self._write(f"  {suggestion.render()}")
        else:
            self._write(f"Unknown option {choice!r}")

    def _report_update(self, report) -> None:
        """Print what an update-file option did (applied, batched, or
        just queued behind the ``--auto-flush-every`` threshold)."""
        if report is None:
            self._write(f"Queued ({self.session.pending()} pending; "
                        f"flush with option 16)")
        else:
            self._write(report.summary())

    def _top_rules(self) -> None:
        """Menu option 17: metric-ordered rule listing with paging,
        served from the catalog's presorted orderings."""
        from repro.core.catalog import ALL_METRICS

        manager = self.session.manager
        if manager is None:
            self._write("Error: no rules mined yet")
            return
        metric = self._ask(f"Metric ({'/'.join(ALL_METRICS)}) "
                           f"[confidence]: ") or "confidence"
        # Validate here, not just in the query: the per-rule metric
        # display below asks the catalog for the value, and
        # "canonical" (a valid ordering, not a rule statistic) must be
        # rejected too.
        if metric not in ALL_METRICS:
            self._write(f"Error: unknown ordering metric {metric!r}; "
                        f"choose from {', '.join(ALL_METRICS)}")
            return
        raw = self._ask("Rules per page [10]: ")
        try:
            per_page = int(raw) if raw else 10
            raw = self._ask("Page number [1]: ")
            page = int(raw) if raw else 1
        except ValueError:
            self._write(f"Error: not a number: {raw!r}")
            return
        if per_page < 1 or page < 1:
            self._write("Error: page and size must be >= 1")
            return
        offset = (page - 1) * per_page
        rules = self.session.rules_page(offset=offset, limit=per_page,
                                        by=metric)
        total = len(manager.rules)
        if not rules:
            self._write(f"No rules on page {page} (total {total}).")
            return
        catalog = self.session.catalog()
        self._write(f"Rules {offset + 1}..{offset + len(rules)} of "
                    f"{total}, best {metric} first:")
        for rule in rules:
            self._write(f"  {rule.render(manager.vocabulary)}"
                        f"  [{metric} "
                        f"{catalog.metric_value(rule, metric):.4f}]")

    def _estimate_rules(self) -> None:
        """Menu option 19: approximate top rules from the sketch tier,
        each metric shown with its error bound; queued updates are
        folded in without waiting for a flush."""
        from repro.app.estimate import ESTIMATE_METRICS

        manager = self.session.manager
        if manager is None:
            self._write("Error: no rules mined yet")
            return
        metric = self._ask(f"Metric ({'/'.join(ESTIMATE_METRICS)}) "
                           f"[confidence]: ") or "confidence"
        if metric not in ESTIMATE_METRICS:
            self._write(f"Error: unknown estimate metric {metric!r}; "
                        f"choose from {', '.join(ESTIMATE_METRICS)}")
            return
        raw = self._ask("Number of rules [10]: ")
        try:
            count = int(raw) if raw else 10
        except ValueError:
            self._write(f"Error: not a number: {raw!r}")
            return
        snapshot = self.session.estimate_rules(count, by=metric)
        if not snapshot.rules:
            self._write("No rules to estimate.")
            return
        pending = (f"; {snapshot.pending_events} pending update(s) "
                   f"folded in" if snapshot.pending_events else "")
        self._write(f"Top {len(snapshot.rules)} estimated rule(s) by "
                    f"{metric} (value±bound at z={snapshot.z:g}"
                    f"{pending}):")
        for estimated in snapshot.rules:
            self._write(f"  {estimated.render(manager.vocabulary)}")

    def _significant_rules(self) -> None:
        """Menu option 20: the significance tier — rules whose 2x2
        contingency table survives a p-value ceiling, strongest
        evidence first."""
        manager = self.session.manager
        if manager is None:
            self._write("Error: no rules mined yet")
            return
        raw = self._ask("Maximum p-value [0.05]: ")
        try:
            ceiling = float(raw) if raw else 0.05
        except ValueError:
            self._write(f"Error: not a number: {raw!r}")
            return
        rules = self.session.significant_rules(max_p_value=ceiling,
                                               limit=20)
        if not rules:
            self._write(f"No rules significant at p <= {ceiling:g}.")
            return
        catalog = self.session.catalog()
        self._write(f"{len(rules)} rule(s) significant at "
                    f"p <= {ceiling:g}, strongest first:")
        for rule in rules:
            self._write(
                f"  {rule.render(manager.vocabulary)}"
                f"  [chi2 {catalog.chi_square_of(rule):.2f}, "
                f"p {catalog.p_value_of(rule):.4g}]")

    def _rules_for_annotation(self) -> None:
        """Menu option 18: the catalog's by-RHS index as a command."""
        manager = self.session.manager
        if manager is None:
            self._write("Error: no rules mined yet")
            return
        token = self._ask("Annotation id: ")
        rules = self.session.rules_for_annotation(token)
        if not rules:
            self._write(f"No rules predict {token!r}.")
            return
        self._write(f"{len(rules)} rule(s) predict {token!r}:")
        for rule in rules:
            self._write(f"  {rule.render(manager.vocabulary)}")

    def _explain_rule(self) -> None:
        from repro.core.explain import explain_rule, render_evidence

        manager = self.session.manager
        if manager is None:
            self._write("Error: no rules mined yet")
            return
        rules = manager.rules.sorted_rules()
        if not rules:
            self._write("No rules to explain.")
            return
        for number, rule in enumerate(rules, start=1):
            self._write(f" {number:3d}. {rule.render(manager.vocabulary)}")
        raw = self._ask("Rule number to explain [1]: ")
        try:
            number = int(raw) if raw else 1
        except ValueError:
            self._write(f"Error: not a rule number: {raw!r}")
            return
        if not 1 <= number <= len(rules):
            self._write(f"Error: rule number out of range 1..{len(rules)}")
            return
        evidence = explain_rule(manager, rules[number - 1], max_tids=50)
        self._write(render_evidence(manager, evidence))

    def _mine_and_show(self, kind: RuleKind) -> None:
        support = self._ask_fraction("support")
        confidence = self._ask_fraction("confidence")
        report = self.session.mine(support, confidence)
        rules = self.session.rules_of_kind(kind)
        self._write(f"Discovered {len(rules)} {kind.value} rule(s) "
                    f"in {report.duration_seconds * 1000:.1f} ms:")
        manager = self.session.manager
        assert manager is not None
        for rule in rules:
            self._write(f"  {rule.render(manager.vocabulary)}")

    def _recommend(self) -> None:
        raw = self._ask("Maximum number of recommendations [20]: ")
        limit = int(raw) if raw else 20
        recommendations = self.session.recommendations(limit=limit)
        if not recommendations:
            self._write("No missing annotations suggested.")
            return
        manager = self.session.manager
        assert manager is not None
        self._write(f"{len(recommendations)} recommendation(s):")
        for recommendation in recommendations:
            self._write(f"  {recommendation.render(manager.vocabulary)}")


def _scripted_reader(lines: list[str]) -> Callable[[str], str]:
    iterator: Iterator[str] = iter(lines)

    def read(prompt: str) -> str:
        try:
            return next(iterator)
        except StopIteration:
            return "0"  # script exhausted: exit cleanly

    return read


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-annotations",
        description="Annotation correlation manager "
                    "(EDBT 2016 reproduction)")
    parser.add_argument("dataset", nargs="?",
                        help="dataset file (paper Figure 4 format)")
    parser.add_argument("--commands", metavar="FILE",
                        help="read menu answers from FILE instead of stdin")
    parser.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=available_backends(),
                        help="mining backend for discovery and maintenance "
                             "(default: %(default)s)")
    parser.add_argument("--counter", default="auto",
                        choices=COUNTER_STRATEGIES,
                        help="candidate counting strategy; 'vertical' "
                             "counts by bitmap-tidset intersection "
                             "(default: %(default)s)")
    parser.add_argument("--auto-flush-every", metavar="N", type=int,
                        default=None,
                        help="queue update files and apply them as one "
                             "coalesced batch once N are pending "
                             "(default: apply each file immediately)")
    parser.add_argument("--shards", metavar="N", type=int, default=1,
                        help="hash-partition the relation into N shard "
                             "engines mined concurrently and merged "
                             "exactly (default: 1, monolithic)")
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")

    try:
        if args.commands:
            with open(args.commands, encoding="utf-8") as handle:
                lines = [line.rstrip("\n") for line in handle]
            loop = CommandLoop(_scripted_reader(lines), print,
                               backend=args.backend, counter=args.counter,
                               auto_flush_every=args.auto_flush_every,
                               shards=args.shards)
        else:
            def read(prompt: str) -> str:
                return input(prompt)

            loop = CommandLoop(read, print, backend=args.backend,
                               counter=args.counter,
                               auto_flush_every=args.auto_flush_every,
                               shards=args.shards)
        return loop.run(args.dataset)
    except (ReproError, FileNotFoundError) as error:
        print(f"fatal: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Application session: the state behind the paper's menu.

The paper's standalone application loads a dataset file, mines rules at
user-entered support/confidence, applies update files incrementally,
and writes rule files.  :class:`Session` is that lifecycle as an
object, shared by the interactive CLI and by scripted/driven use in
tests.  Invalid transitions (mining before loading a dataset, applying
updates before mining) raise :class:`~repro.errors.SessionError` with
actionable messages instead of crashing mid-menu.
"""

from __future__ import annotations

import os

from repro.core.catalog import RuleCatalog
from repro.core.config import EngineConfig
from repro.core.engine import CorrelationEngine, engine as build_engine
from repro.core.events import (
    AddAnnotatedTuples,
    AddUnannotatedTuples,
    UpdateEvent,
)
from repro.core.maintenance import BatchReport, MaintenanceReport
from repro.app.estimate import EstimateSnapshot, estimate_snapshot
from repro.app.service import isolate_poison_event
from repro.core.rules import AssociationRule, RuleKind
from repro.core.stats import DEFAULT_MARGIN
from repro.errors import ItemKindError, SessionError, VocabularyError
from repro.mining.backend import DEFAULT_BACKEND
from repro.exploitation.ranking import rank
from repro.exploitation.recommender import (
    MissingAnnotationRecommender,
    Recommendation,
)
from repro.generalization.engine import Generalizer
from repro.mining.itemsets import Item, ItemKind
from repro.io import dataset_format, generalization_format, rules_format
from repro.io import updates_format
from repro.relation.relation import AnnotatedRelation


class Session:
    """Mutable application state: one dataset, one mined manager.

    With ``auto_flush_every`` set, update files are *queued* as events
    instead of applied immediately; once the queue reaches that depth
    (or :meth:`flush` is called from the menu) the whole backlog is
    applied as one coalesced batch through ``engine.apply_batch`` —
    the serving facade's write path, surfaced in the standalone app.
    """

    def __init__(self, *, backend: str = DEFAULT_BACKEND,
                 counter: str = "auto",
                 auto_flush_every: int | None = None,
                 shards: int = 1) -> None:
        if auto_flush_every is not None and auto_flush_every < 1:
            raise SessionError(
                f"auto_flush_every must be >= 1 or None, "
                f"got {auto_flush_every}")
        if shards < 1:
            raise SessionError(f"shards must be >= 1, got {shards}")
        self.relation: AnnotatedRelation | None = None
        self.manager: CorrelationEngine | None = None
        self.generalizer: Generalizer | None = None
        self.dataset_path: str | None = None
        self.backend = backend
        self.counter = counter
        self.auto_flush_every = auto_flush_every
        self.shards = shards
        self.pending_updates: list[UpdateEvent] = []
        #: Wall-clock phase breakdown of the most recent mine or flush
        #: (``{phase: seconds}``); surfaced by :meth:`status`.
        self.last_phases: dict[str, float] = {}

    # -- dataset -----------------------------------------------------------

    def load_dataset(self, path: str | os.PathLike) -> int:
        """Load a Figure 4 dataset file; returns the tuple count."""
        self.relation = dataset_format.read_dataset(path)
        self.dataset_path = os.fspath(path)
        self.manager = None  # thresholds must be re-entered
        self.generalizer = None
        self.pending_updates.clear()  # queued events named old tids
        self.last_phases = {}
        return len(self.relation)

    def restore_snapshot(self, manager: CorrelationEngine,
                         label: str) -> None:
        """Adopt a restored engine (menu option 13 / programmatic load).

        Owns the queue invariant: any pending updates named tids of the
        replaced relation, so they are discarded with it.
        """
        self.relation = manager.relation
        self.manager = manager
        self.dataset_path = label
        self.pending_updates.clear()

    def _require_relation(self) -> AnnotatedRelation:
        if self.relation is None:
            raise SessionError("no dataset loaded — load a dataset first")
        return self.relation

    def _require_manager(self) -> CorrelationEngine:
        if self.manager is None:
            raise SessionError(
                "no rules mined yet — run a discovery option first")
        return self.manager

    # -- generalization (menu option 3) -------------------------------------

    def load_generalizations(self, path: str | os.PathLike) -> int:
        """Parse a Figure 9 file; takes effect on the next mining run."""
        relation = self._require_relation()
        rules, hierarchy = generalization_format.parse_generalization_rules(
            path)
        self.generalizer = Generalizer(relation.registry, rules, hierarchy)
        self.manager = None  # the extended database changes the rules
        return len(rules)

    # -- mining (menu options 1 and 2) ----------------------------------------

    def mine(self, min_support: float, min_confidence: float, *,
             margin: float = DEFAULT_MARGIN,
             max_length: int | None = None) -> MaintenanceReport:
        """(Re)mine at the given thresholds; installs a fresh manager."""
        relation = self._require_relation()
        config = (EngineConfig.builder()
                  .support(min_support)
                  .confidence(min_confidence)
                  .margin(margin)
                  .backend(self.backend)
                  .counter(self.counter)
                  .generalizer(self.generalizer)
                  .max_length(max_length)
                  .shards(self.shards)
                  .build())
        self.manager = build_engine(relation, config)
        report = self.manager.mine()
        self.last_phases = dict(report.phases.wall)
        return report

    def rules_of_kind(self, kind: RuleKind) -> list[AssociationRule]:
        manager = self._require_manager()
        return list(manager.catalog().query().of_kind(kind)
                    .order_by("confidence").all())

    # -- rule queries (menu options 17 and 18) --------------------------------

    def catalog(self) -> RuleCatalog:
        """The indexed rule catalog — memoized per engine revision."""
        return self._require_manager().catalog()

    def top_rules(self, n: int, *, by: str = "confidence",
                  kind: RuleKind | None = None) -> list[AssociationRule]:
        """The ``n`` best rules by a metric (presorted-index slice)."""
        query = self.catalog().query()
        if kind is not None:
            query = query.of_kind(kind)
        return list(query.top(n, by=by))

    def rules_page(self, *, offset: int = 0, limit: int | None = 20,
                   by: str = "confidence",
                   kind: RuleKind | None = None) -> list[AssociationRule]:
        """One page of the metric-ordered rule listing."""
        query = self.catalog().query().order_by(by)
        if kind is not None:
            query = query.of_kind(kind)
        return list(query.page(offset, limit).all())

    def estimate_rules(self, n: int | None = None, *,
                       by: str = "confidence",
                       kind: RuleKind | None = None,
                       z: float | None = None,
                       confidence_level: float | None = None
                       ) -> EstimateSnapshot:
        """Approximate rule ranking with error bounds (menu option 19).

        Re-scores the current catalog through the engine's bottom-k
        sketches and folds queued-but-unflushed insert updates in
        exactly — the standalone twin of the serving facade's
        ``mode=estimate`` read.
        """
        manager = self._require_manager()
        return estimate_snapshot(
            manager, manager.catalog().rules, list(self.pending_updates),
            session=self.dataset_path or "(unnamed)",
            revision=manager.revision,
            n=n, by=by, kind=kind, z=z,
            confidence_level=confidence_level)

    def significant_rules(self, *, max_p_value: float = 0.05,
                          min_chi_square: float | None = None,
                          kind: RuleKind | None = None,
                          limit: int | None = None
                          ) -> list[AssociationRule]:
        """Rules surviving the significance tier, most significant
        first (menu option 20): chi-square floor and p-value ceiling
        over the catalog's exact counts."""
        query = self.catalog().query().max_p_value(max_p_value)
        if min_chi_square is not None:
            query = query.min_chi_square(min_chi_square)
        if kind is not None:
            query = query.of_kind(kind)
        query = query.order_by("p_value")
        if limit is not None:
            query = query.page(0, limit)
        return list(query.all())

    def rules_for_annotation(self, annotation_token: str, *,
                             limit: int | None = None
                             ) -> list[AssociationRule]:
        """Rules predicting ``annotation_token``, best confidence
        first — one by-RHS index probe.  The token may name a raw
        annotation or a generalization label; one the mined vocabulary
        never saw predicts nothing: empty list."""
        manager = self._require_manager()
        # ItemKindError covers malformed tokens (e.g. empty string) the
        # Item constructor rejects before any vocabulary lookup.
        try:
            rhs = manager.vocabulary.find_annotation(annotation_token)
        except (VocabularyError, ItemKindError):
            try:
                rhs = manager.vocabulary.id_of(
                    Item(ItemKind.LABEL, annotation_token))
            except (VocabularyError, ItemKindError):
                return []
        query = (manager.catalog().query().with_rhs(rhs)
                 .order_by("confidence"))
        if limit is not None:
            query = query.page(0, limit)
        return list(query.all())

    # -- updates (menu options 4, 5, 6) -------------------------------------------

    def _route_update(self, event: UpdateEvent
                      ) -> MaintenanceReport | BatchReport | None:
        """Apply immediately, or queue for a coalesced flush.

        Returns ``None`` when the event was queued without triggering
        the auto-flush threshold — the CLI reports the queue depth.
        """
        manager = self._require_manager()
        if self.auto_flush_every is None:
            return manager.apply(event)
        self.pending_updates.append(event)
        if len(self.pending_updates) >= self.auto_flush_every:
            return self.flush()
        return None

    def flush(self) -> BatchReport | None:
        """Apply every queued update as one coalesced batch.

        Returns ``None`` when nothing was queued.  Poison isolation
        mirrors the serving facade: batch compilation fails before any
        mutation, so on a rejected batch the events are applied one at
        a time — the valid prefix stays applied, the poison event is
        dropped, and the unapplied remainder returns to the front of
        the queue with the raised :class:`SessionError` naming it.
        """
        manager = self._require_manager()
        if not self.pending_updates:
            return None
        batch, self.pending_updates = self.pending_updates, []
        version_before = manager.relation.version
        try:
            report = manager.apply_batch(batch)
            self.last_phases = dict(report.phases.wall)
            return report
        except Exception:
            if manager.relation.version != version_before:
                raise  # mutated mid-batch: replay would double-apply

        def requeue(remainder: list[UpdateEvent], applied: int) -> None:
            self.pending_updates = remainder + self.pending_updates

        isolate_poison_event(manager.apply, batch, requeue=requeue,
                             describe="flush", noun="update")
        raise AssertionError("unreachable")  # pragma: no cover

    def pending(self) -> int:
        """Updates queued but not yet flushed."""
        return len(self.pending_updates)

    def add_annotations_from_file(self, path: str | os.PathLike
                                  ) -> MaintenanceReport | BatchReport | None:
        """Menu option 4: a Figure 14 δ batch."""
        return self._route_update(updates_format.read_updates(path))

    def add_annotated_tuples_from_file(
            self, path: str | os.PathLike
    ) -> MaintenanceReport | BatchReport | None:
        """Menu option 5: Case 1 — rows in the Figure 4 dataset format."""
        self._require_manager()
        rows = list(dataset_format.iter_rows(_read_lines(path)))
        if not rows:
            raise SessionError(f"no tuples found in {os.fspath(path)!r}")
        return self._route_update(AddAnnotatedTuples.build(rows))

    def add_unannotated_tuples_from_file(
            self, path: str | os.PathLike
    ) -> MaintenanceReport | BatchReport | None:
        """Menu option 6: Case 2 — rows must carry no annotations."""
        self._require_manager()
        rows = list(dataset_format.iter_rows(_read_lines(path)))
        if not rows:
            raise SessionError(f"no tuples found in {os.fspath(path)!r}")
        annotated = [values for values, annotations in rows if annotations]
        if annotated:
            raise SessionError(
                f"{len(annotated)} row(s) in {os.fspath(path)!r} carry "
                f"annotations — use the annotated-tuples option instead")
        return self._route_update(AddUnannotatedTuples.build(
            [values for values, _annotations in rows]))

    # -- exploitation (menu option 7) -----------------------------------------------

    def recommendations(self, *, limit: int = 20,
                        min_confidence: float | None = None
                        ) -> list[Recommendation]:
        manager = self._require_manager()
        recommender = MissingAnnotationRecommender(
            manager, min_confidence=min_confidence)
        ranked = rank(recommender.scan())
        return ranked[:limit] if limit else ranked

    # -- output (menu option 8) ---------------------------------------------------------

    def write_rules(self, path: str | os.PathLike, *,
                    kind: RuleKind | None = None) -> int:
        manager = self._require_manager()
        rules = (manager.rules if kind is None
                 else manager.rules_of_kind(kind))
        return rules_format.write_rules(rules, manager.vocabulary, path)

    # -- status (menu option 9) -----------------------------------------------------------

    def status(self) -> dict[str, object]:
        out: dict[str, object] = {
            "dataset": self.dataset_path,
            "tuples": len(self.relation) if self.relation else 0,
            "annotations": (len(self.relation.registry)
                            if self.relation else 0),
            "generalizations": (self.generalizer is not None),
            "backend": self.backend,
            "counter": self.counter,
            # The live manager's actual layout wins over the session
            # default: a restored v3 snapshot installs its own shard
            # count (menu option 13), which the next mine() replaces
            # with the session setting again.
            "shards": (getattr(self.manager, "shard_count", 1)
                       if self.manager is not None else self.shards),
            "auto_flush_every": self.auto_flush_every,
            "pending_updates": self.pending(),
            "mined": self.manager is not None,
        }
        if self.manager is not None:
            out.update({
                "rules": len(self.manager.rules),
                "d2a_rules": len(self.manager.rules_of_kind(
                    RuleKind.DATA_TO_ANNOTATION)),
                "a2a_rules": len(self.manager.rules_of_kind(
                    RuleKind.ANNOTATION_TO_ANNOTATION)),
                "patterns": len(self.manager.table),
                "candidates": len(self.manager.candidates),
                "revision": self.manager.revision,
                "min_support": self.manager.thresholds.min_support,
                "min_confidence": self.manager.thresholds.min_confidence,
            })
        if self.last_phases:
            out["last_phases"] = dict(self.last_phases)
        return out


def _read_lines(path: str | os.PathLike) -> list[str]:
    with open(path, encoding="utf-8") as handle:
        return list(handle)

"""Approximate-first reads: estimate snapshots with error bounds.

The exact read path answers from the engine's mined rule catalog —
after a write burst that means waiting for the next flush (and, on a
sharded engine, its SON re-merge) before the numbers move.  This module
is the approximate tier in front of it:

* the *candidate* rules come from the last **published** catalog (an
  immutable object, readable without any session lock);
* their counts are re-scored from the engine's bottom-k
  :mod:`~repro.mining.sketch` registries, which the index maintenance
  observer keeps fresh at O(delta) per applied batch;
* events still queued (or draining in an in-flight flush) are layered
  on as a **pending overlay**: inserted rows are fully described by
  their event, so their contribution is exact — encoded against the
  engine vocabulary without interning anything (an unseen token cannot
  match an existing rule, so it is skipped, not added).

Every estimate carries the bound of its sketch intersection; overlay
contributions add no bound (they are exact).  Annotation add/remove
events reference tuples by tid and need engine state to score, so they
are *deferred*: counted in :attr:`EstimateSnapshot.deferred_events` and
reflected as soon as the flush that is already under way lands.
Estimate reads are racy by design — a concurrent flush may be mid-way
through the substrate — which is exactly the trade the caller makes by
asking for ``mode=estimate``; the bounds are statistical, not
adversarial.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.events import (
    AddAnnotatedTuples,
    AddUnannotatedTuples,
    RemoveTuples,
    UpdateEvent,
)
from repro.core.rules import AssociationRule, RuleKind
from repro.errors import SessionError, VocabularyError
from repro.mining.itemsets import Item, ItemKind, ItemVocabulary
from repro.mining.sketch import (
    Estimate,
    RuleEstimate,
    combine_rule_estimate,
    sum_estimates,
    z_score,
)
from repro.relation.schema import SchemaError, opaque_token

#: Metrics an estimate snapshot can rank by.  Significance metrics are
#: exact-tier only: a chi-square over *estimated* counts would present
#: a precise-looking p-value computed from approximate inputs.
ESTIMATE_METRICS = ("support", "confidence", "lift")


@dataclass(frozen=True, slots=True)
class EstimatedRule:
    """One catalog rule re-scored through the approximate tier."""

    #: The rule as last published (its counts are the *flushed* state).
    rule: AssociationRule
    #: Sketch + overlay statistics with their error bounds.
    estimate: RuleEstimate

    def metric(self, name: str) -> float:
        if name not in ESTIMATE_METRICS:
            raise SessionError(
                f"unknown estimate metric {name!r}; choose from "
                f"{', '.join(ESTIMATE_METRICS)}")
        return getattr(self.estimate, name)

    def bound(self, name: str) -> float:
        if name not in ESTIMATE_METRICS:
            raise SessionError(
                f"unknown estimate metric {name!r}; choose from "
                f"{', '.join(ESTIMATE_METRICS)}")
        return getattr(self.estimate, f"{name}_bound")

    def render(self, vocabulary: ItemVocabulary) -> str:
        """Figure 7 style with the uncertainty made visible."""
        lhs = vocabulary.render(self.rule.lhs)
        rhs = vocabulary.item(self.rule.rhs).token
        est = self.estimate
        return (f"{lhs} ==> {rhs}, "
                f"{est.confidence:.4f}±{est.confidence_bound:.4f}, "
                f"{est.support:.4f}±{est.support_bound:.4f}")


@dataclass(frozen=True, slots=True)
class PendingOverlay:
    """Exact contributions of queued events, pre-encoded for scoring.

    ``rows`` holds the item-id sets of pending *inserted* tuples (only
    items the vocabulary already knows — unseen tokens cannot match an
    existing rule).  ``removals`` counts pending tuple deletions: they
    adjust the estimated database size, but their per-rule count effect
    needs engine state, so it lands with the flush.  ``deferred``
    counts the annotation add/remove events in the same boat.
    """

    rows: tuple[frozenset[int], ...]
    inserts: int
    removals: int
    deferred: int

    @property
    def is_empty(self) -> bool:
        return not (self.inserts or self.removals or self.deferred)

    def count_containing(self, items: frozenset[int]) -> int:
        """Pending inserted rows containing every id in ``items``."""
        return sum(1 for row in self.rows if items <= row)

    def count_item(self, item: int) -> int:
        return sum(1 for row in self.rows if item in row)


def _encode_pending_row(values: Sequence[str],
                        annotations: Iterable[str],
                        *, relation, vocabulary: ItemVocabulary,
                        generalizer) -> frozenset[int]:
    """The known-item footprint of a not-yet-inserted row.

    Mirrors :func:`repro.relation.transactions.encode_tuple` for a row
    that has no tid yet, resolving tokens instead of interning them: a
    token the mined vocabulary never saw gets its id at flush time and
    cannot occur in any already-published rule, so dropping it here
    loses nothing.
    """
    schema = getattr(relation, "schema", None)
    try:
        if schema is None:
            tokens = [opaque_token(value) for value in values]
        else:
            tokens = [schema.data_token(position, value)
                      for position, value in enumerate(values)]
    except SchemaError:
        # Arity mismatch: the flush will reject this row; until then it
        # matches nothing.
        return frozenset()
    items: set[int] = set()
    for token in tokens:
        try:
            items.add(vocabulary.id_of(Item(ItemKind.DATA, token)))
        except VocabularyError:
            pass
    annotation_set = frozenset(annotations)
    for annotation_id in annotation_set:
        try:
            items.add(vocabulary.id_of(
                Item(ItemKind.ANNOTATION, annotation_id)))
        except VocabularyError:
            pass
    if generalizer is not None and annotation_set:
        for label in generalizer.labels_for(annotation_set):
            try:
                items.add(vocabulary.id_of(Item(ItemKind.LABEL, label)))
            except VocabularyError:
                pass
    return frozenset(items)


def overlay_from_events(events: Iterable[UpdateEvent], *,
                        relation, vocabulary: ItemVocabulary,
                        generalizer=None) -> PendingOverlay:
    """Fold a queue of update events into a :class:`PendingOverlay`."""
    rows: list[frozenset[int]] = []
    inserts = removals = deferred = 0
    for event in events:
        if isinstance(event, AddAnnotatedTuples):
            for values, annotations in event.rows:
                rows.append(_encode_pending_row(
                    values, annotations, relation=relation,
                    vocabulary=vocabulary, generalizer=generalizer))
                inserts += 1
        elif isinstance(event, AddUnannotatedTuples):
            for values in event.rows:
                rows.append(_encode_pending_row(
                    values, (), relation=relation,
                    vocabulary=vocabulary, generalizer=generalizer))
                inserts += 1
        elif isinstance(event, RemoveTuples):
            removals += len(event.tids)
        else:
            deferred += 1
    return PendingOverlay(rows=tuple(rows), inserts=inserts,
                          removals=removals, deferred=deferred)


@dataclass(frozen=True, slots=True)
class EstimateSnapshot:
    """A point-in-time *approximate* view of one session's rules.

    The exact-mode counterpart is
    :class:`repro.app.service.RuleSnapshot`; this one is tagged
    ``estimated=True``, carries the revision of the catalog it
    re-scored, and every rule in it has per-metric error bounds.
    """

    session: str
    backend: str
    #: Revision of the published catalog the candidates came from.
    revision: int
    #: Estimated live tuple count (flushed size + pending inserts −
    #: pending removals).
    db_size: int
    #: Events queued (or draining) when the estimate was taken.
    pending_events: int
    #: Pending inserted rows folded into the counts exactly.
    overlay_rows: int
    #: Pending events whose count effect waits for the flush.
    deferred_events: int
    #: Two-sided confidence level of the bounds (None when a raw
    #: z-multiplier was requested instead).
    confidence_level: float | None
    z: float
    ordered_by: str
    rules: tuple[EstimatedRule, ...]
    #: Always True — the discriminator callers switch on.
    estimated: bool = True

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[EstimatedRule]:
        return iter(self.rules)

    def top(self, n: int) -> tuple[EstimatedRule, ...]:
        return self.rules[:n]


def _resolve_z(z: float | None, confidence_level: float | None) -> float:
    if z is not None and confidence_level is not None:
        raise SessionError(
            "pass either z or confidence_level, not both")
    if confidence_level is not None:
        return z_score(confidence_level)
    return 2.0 if z is None else float(z)


def estimate_snapshot(engine, rules: Sequence[AssociationRule],
                      pending: Sequence[UpdateEvent], *,
                      session: str, revision: int,
                      n: int | None = None,
                      by: str = "confidence",
                      kind: RuleKind | None = None,
                      z: float | None = None,
                      confidence_level: float | None = None
                      ) -> EstimateSnapshot:
    """Re-score ``rules`` through the engine's sketches + the pending
    overlay and rank them by an estimated metric.

    Shared by the serving facade and the standalone session; the caller
    owns whatever locking discipline its queue needs — this function
    only reads.
    """
    if by not in ESTIMATE_METRICS:
        raise SessionError(
            f"estimate mode ranks by one of {', '.join(ESTIMATE_METRICS)}, "
            f"got {by!r}; significance metrics need mode=exact")
    z_value = _resolve_z(z, confidence_level)
    overlay = overlay_from_events(
        pending, relation=engine.relation, vocabulary=engine.vocabulary,
        generalizer=engine.generalizer)
    db_size = max(engine.db_size + overlay.inserts - overlay.removals, 0)

    itemset_cache: dict[tuple[int, ...], Estimate] = {}
    rhs_cache: dict[int, int] = {}

    def itemset_estimate(items: tuple[int, ...]) -> Estimate:
        found = itemset_cache.get(items)
        if found is None:
            found = engine.estimate_itemset(items, z=z_value)
            if overlay.rows:
                pending_hits = overlay.count_containing(frozenset(items))
                if pending_hits:
                    found = sum_estimates(
                        [found, Estimate(float(pending_hits), 0.0, True)])
            itemset_cache[items] = found
        return found

    def rhs_count(item: int) -> int:
        found = rhs_cache.get(item)
        if found is None:
            found = engine.sketch_cardinality(item)
            if overlay.rows:
                found += overlay.count_item(item)
            rhs_cache[item] = found
        return found

    estimated: list[EstimatedRule] = []
    for rule in rules:
        if kind is not None and rule.kind is not kind:
            continue
        union = tuple(sorted(rule.lhs + (rule.rhs,)))
        rule_estimate = combine_rule_estimate(
            itemset_estimate(union),
            itemset_estimate(rule.lhs),
            rhs_count(rule.rhs),
            db_size)
        estimated.append(EstimatedRule(rule=rule, estimate=rule_estimate))

    estimated.sort(key=lambda er: (-er.metric(by),
                                   er.rule.kind.value,
                                   er.rule.lhs,
                                   er.rule.rhs))
    if n is not None:
        estimated = estimated[:n]
    return EstimateSnapshot(
        session=session,
        backend=engine.backend_name,
        revision=revision,
        db_size=db_size,
        pending_events=len(pending),
        overlay_rows=overlay.inserts,
        deferred_events=overlay.deferred,
        confidence_level=confidence_level,
        z=z_value,
        ordered_by=by,
        rules=tuple(estimated),
    )

"""Formatted text reports for the application layer.

The paper's application communicates through a terminal; these helpers
render the manager's state — rules by kind, near-miss candidates, the
pattern table breakdown, maintenance history — as aligned text blocks
the CLI prints and tests can assert on.
"""

from __future__ import annotations

from repro.core.maintenance import MaintenanceReport
from repro.core.engine import CorrelationEngine
from repro.core.rules import RuleKind
from repro.mining.closed import compress_rules


def rules_report(manager: CorrelationEngine, *,
                 compress: bool = False,
                 limit: int | None = None) -> str:
    """Rules grouped by kind, confidence-descending, Figure 7 lines."""
    lines: list[str] = []
    rules = (compress_rules(manager.rules) if compress
             else manager.rules.sorted_rules())
    for kind in (RuleKind.DATA_TO_ANNOTATION,
                 RuleKind.ANNOTATION_TO_ANNOTATION):
        of_kind = sorted((rule for rule in rules if rule.kind is kind),
                         key=lambda rule: (-rule.confidence, -rule.support,
                                           rule.lhs))
        if limit is not None:
            of_kind = of_kind[:limit]
        lines.append(f"{kind.value} ({len(of_kind)} rule(s)):")
        lines.extend(f"  {rule.render(manager.vocabulary)}"
                     for rule in of_kind)
    return "\n".join(lines)


def candidates_report(manager: CorrelationEngine, *,
                      limit: int = 10) -> str:
    """The near-miss rules closest to promotion, with their gaps."""
    thresholds = manager.thresholds
    closest = manager.candidates.closest_to_valid(thresholds, limit=limit)
    if not closest:
        return "no candidate rules in the margin band"
    lines = [f"candidate rules (margin band "
             f"[{thresholds.keep_support:.3f}, "
             f"{thresholds.min_support:.3f}) support / "
             f"[{thresholds.keep_confidence:.3f}, "
             f"{thresholds.min_confidence:.3f}) confidence):"]
    for rule in closest:
        support_gap = max(0.0, thresholds.min_support - rule.support)
        confidence_gap = max(0.0,
                             thresholds.min_confidence - rule.confidence)
        lines.append(
            f"  {rule.render(manager.vocabulary)}  "
            f"needs +{support_gap:.3f} support, "
            f"+{confidence_gap:.3f} confidence")
    return "\n".join(lines)


def table_report(manager: CorrelationEngine) -> str:
    """Pattern table size by class plus index statistics."""
    stats = manager.table.stats()
    frequencies = manager.index.annotation_frequencies()
    top = sorted(frequencies.items(), key=lambda pair: -pair[1])[:5]
    lines = [
        f"pattern table: {stats['total']} entries "
        f"(data-only {stats['data-only']}, "
        f"one-annotation {stats['one-annotation']}, "
        f"annotation-only {stats['annotation-only']})",
        f"database size: {manager.db_size} live tuples",
        "most frequent annotations:",
    ]
    lines.extend(
        f"  {manager.vocabulary.item(item).token}: {count}"
        for item, count in top)
    return "\n".join(lines)


def maintenance_report_line(report: MaintenanceReport) -> str:
    """One aligned history line for a maintenance report."""
    return (f"{report.event:<24} db={report.db_size:<7} "
            f"+{len(report.rules_added):<3} -{len(report.rules_dropped):<3} "
            f"~{report.rules_updated:<4} rules  "
            f"{report.duration_seconds * 1000:8.2f} ms")


def history_report(reports: list[MaintenanceReport]) -> str:
    """The session's maintenance history as an aligned block."""
    if not reports:
        return "no maintenance activity yet"
    header = (f"{'event':<24} {'size':<10} {'rule changes':<16} "
              f"{'time':>11}")
    return "\n".join([header] + [maintenance_report_line(report)
                                 for report in reports])

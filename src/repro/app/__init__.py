"""The standalone menu application (paper Figure 5)."""

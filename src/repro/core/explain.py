"""Evidence and explanations for rules and recommendations.

Section 5 of the paper: "For each prediction, the supporting
association rule is displayed along with its properties, e.g., the
support and confidence.  Then it is up to the curators to make the
final decision."  A curator deciding wants more than two numbers —
which tuples support the rule, which violate it, how strong it is
beyond confidence.  This module assembles that evidence from the
manager's maintained index, without any database scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import CorrelationEngine
from repro.core.rules import AssociationRule
from repro.mining.interest import RuleCounts, evaluate


@dataclass(frozen=True, slots=True)
class RuleEvidence:
    """The concrete tuples behind a rule's statistics."""

    rule: AssociationRule
    #: Tuples containing LHS ∪ {RHS} (the rule's support set).
    supporting_tids: tuple[int, ...]
    #: Tuples containing the LHS but not the RHS (the exceptions).
    violating_tids: tuple[int, ...]
    #: How often the RHS annotation occurs overall (frequency table).
    rhs_count: int
    #: Extra interestingness measures (lift, leverage, conviction).
    measures: dict[str, float]

    @property
    def exception_rate(self) -> float:
        total = len(self.supporting_tids) + len(self.violating_tids)
        return len(self.violating_tids) / total if total else 0.0


def explain_rule(manager: CorrelationEngine,
                 rule: AssociationRule,
                 *,
                 max_tids: int | None = None,
                 measures: tuple[str, ...] = ("lift", "leverage",
                                              "conviction")
                 ) -> RuleEvidence:
    """Assemble the evidence for one rule from the vertical index.

    The LHS tidset intersection gives the tuples the rule speaks about;
    subtracting the RHS tidset splits them into supporters and
    exceptions.  ``max_tids`` truncates both lists for display (counts
    in the rule stay exact regardless).
    """
    lhs_tids = manager.index.tids_of_itemset(rule.lhs)
    rhs_tids = manager.index.tids(rule.rhs)
    supporting = sorted(lhs_tids & rhs_tids)
    violating = sorted(lhs_tids - rhs_tids)
    if max_tids is not None:
        supporting = supporting[:max_tids]
        violating = violating[:max_tids]
    rhs_count = manager.index.frequency(rule.rhs)
    return RuleEvidence(
        rule=rule,
        supporting_tids=tuple(supporting),
        violating_tids=tuple(violating),
        rhs_count=rhs_count,
        measures=evaluate(rule, rhs_count, measures),
    )


def render_evidence(manager: CorrelationEngine,
                    evidence: RuleEvidence,
                    *,
                    sample: int = 3) -> str:
    """A curator-facing text block for one rule."""
    rule = evidence.rule
    lines = [
        rule.render(manager.vocabulary),
        f"  kind: {rule.kind.value}",
        f"  counts: {rule.union_count}/{rule.lhs_count} tuples "
        f"(|DB|={rule.db_size}, RHS occurs {evidence.rhs_count}x)",
    ]
    lines += [f"  {name}: " + (f"{value:.3f}" if value != float("inf")
                               else "inf")
              for name, value in evidence.measures.items()]
    lines.append(f"  exceptions: {len(evidence.violating_tids)} tuple(s), "
                 f"rate {evidence.exception_rate:.1%}")
    for label, tids in (("supports", evidence.supporting_tids),
                        ("violates", evidence.violating_tids)):
        for tid in tids[:sample]:
            row = manager.relation.tuple(tid)
            annotations = " ".join(sorted(row.annotation_ids)) or "-"
            lines.append(f"    {label} tid={tid}: "
                         f"{' '.join(row.values)} [{annotations}]")
    return "\n".join(lines)


def verify_evidence(manager: CorrelationEngine,
                    evidence: RuleEvidence) -> bool:
    """Cross-check the evidence against the rule's stored counts.

    With no ``max_tids`` truncation, the tidset arithmetic must agree
    exactly with the counts incremental maintenance has been carrying —
    a cheap independent audit of the whole pipeline, used in tests.
    """
    rule = evidence.rule
    counts = RuleCounts.from_rule(rule, evidence.rhs_count)
    return (len(evidence.supporting_tids) == rule.union_count
            and len(evidence.supporting_tids)
            + len(evidence.violating_tids) == rule.lhs_count
            and counts.confidence == rule.confidence)

"""Coalescing a batch of update events into one normalized delta plan.

The paper's cost model says maintenance should scale with the δ batch,
not the database — and a *served* system receives its δ as a queue of
heterogeneous events.  Applying them one at a time multiplies every
fixed cost (rule derivation, invariant checking, index bookkeeping) by
the queue depth.  :func:`compile_plan` instead folds an ordered
``list[UpdateEvent]`` into a single :class:`DeltaPlan`:

* annotation adds/removes are netted **per (tuple, annotation) pair**:
  the last operation against the pre-batch state wins, so an
  add-then-remove of a pair the tuple never had cancels outright and
  duplicate pairs collapse to one;
* tuple inserts from any number of Case 1 / Case 2 events merge into
  one increment (annotation events targeting a tuple inserted earlier
  in the same batch fold into that tuple's insert row);
* a tuple inserted and deleted within the batch is *elided*: it still
  consumes its tid (so per-event and batched application assign
  identical tids to every other row) but never reaches the mining
  substrate;
* per-event provenance survives as :class:`EventAudit` rows, so the
  event log and the serving layer can still account for each submitted
  event individually.

Compilation is **pure**: it reads batch-local state plus two optional
oracles describing the current relation, and mutates nothing.  Every
condition that would make per-event application fail on some event —
an unknown tid, a dead target, an event of unknown type — is detected
here and raised as :class:`~repro.errors.DeltaPlanError` *before* the
engine touches any state, which is what lets the serving facade fall
back to per-event application with intact poison-isolation semantics.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.errors import DeltaPlanError

#: Human-readable labels, matching the per-event MaintenanceReport names.
EVENT_LABELS = {
    AddAnnotatedTuples: "add-annotated-tuples",
    AddUnannotatedTuples: "add-unannotated-tuples",
    AddAnnotations: "add-annotations",
    RemoveAnnotations: "remove-annotations",
    RemoveTuples: "remove-tuples",
}


def event_label(event: UpdateEvent) -> str:
    """The report label of ``event`` (raises on unknown event types)."""
    try:
        return EVENT_LABELS[type(event)]
    except KeyError:
        raise DeltaPlanError(f"unknown update event {event!r}") from None


@dataclass(frozen=True, slots=True)
class EventAudit:
    """Provenance of one input event inside a compiled plan."""

    #: 1-based position of the event in the submitted batch.
    position: int
    #: Report label (``"add-annotations"``, ...), as per-event apply uses.
    event: str
    #: Rows / pairs / tids the event carried.
    payload: int
    #: Pairs or rows whose effect was absorbed by coalescing (duplicate
    #: pairs, add-then-remove cancellations, rows elided by a same-batch
    #: delete, annotation ops folded into a pending insert row).
    coalesced: int = 0

    def summary(self) -> str:
        note = f" ({self.coalesced} coalesced)" if self.coalesced else ""
        return f"#{self.position} {self.event}: {self.payload} item(s){note}"


@dataclass
class PlannedInsert:
    """One tuple the batch inserts, with batch-merged annotations."""

    tid: int
    values: tuple[str, ...]
    annotations: set[str]
    #: True when a later event in the same batch deletes this tuple: it
    #: still consumes its tid (tid parity with per-event application)
    #: but is born tombstoned and never enters the mining substrate.
    elided: bool = False


@dataclass
class PlanStats:
    """What coalescing saved, for reports and the CLI."""

    events: int = 0
    #: (tid, annotation) operations that cancelled against the pre-batch
    #: state (add-then-remove of an absent pair, no-op adds/removes).
    pairs_cancelled: int = 0
    #: Duplicate (tid, annotation) operations collapsed into one.
    pairs_collapsed: int = 0
    #: Annotation ops folded into a same-batch pending insert row.
    pairs_folded_into_inserts: int = 0
    #: Insert rows elided by a same-batch delete.
    inserts_elided: int = 0


@dataclass
class DeltaPlan:
    """The normalized net effect of an ordered batch of update events."""

    #: ``relation.tid_range`` at compile time; planned inserts occupy
    #: ``base_tid, base_tid + 1, ...`` in order.
    base_tid: int
    inserts: list[PlannedInsert] = field(default_factory=list)
    #: Net annotation additions on pre-existing tuples, tid → ids.
    annotation_adds: dict[int, list[str]] = field(default_factory=dict)
    #: Net annotation removals on pre-existing tuples, tid → ids.
    annotation_removes: dict[int, list[str]] = field(default_factory=dict)
    #: Pre-existing tuples the batch deletes, in event order.
    deletions: list[int] = field(default_factory=list)
    #: The original events, in order (event-log provenance).
    events: tuple[UpdateEvent, ...] = ()
    audits: list[EventAudit] = field(default_factory=list)
    stats: PlanStats = field(default_factory=PlanStats)

    @property
    def is_empty(self) -> bool:
        """True when coalescing left nothing for the engine to do."""
        return not (self.inserts or self.annotation_adds
                    or self.annotation_removes or self.deletions)

    def live_inserts(self) -> list[PlannedInsert]:
        return [planned for planned in self.inserts if not planned.elided]


def compile_plan(events: Sequence[UpdateEvent],
                 *,
                 next_tid: int,
                 is_live: Callable[[int], bool],
                 annotations_of: Callable[[int], frozenset[str]] | None = None,
                 validate_row: Callable[[Sequence[str]], object] | None = None,
                 validate_annotation: Callable[[str], object] | None = None,
                 ) -> DeltaPlan:
    """Coalesce ``events`` into a :class:`DeltaPlan`.

    ``next_tid`` is the tid the next inserted tuple would receive
    (``relation.tid_range``); ``is_live(tid)`` must answer for every
    ``tid < next_tid``.  ``annotations_of(tid)``, when given, enables
    cancellation against the pre-batch state: a net "add" of a pair the
    tuple already has (or a net "remove" of a pair it lacks) is dropped
    as a no-op instead of being carried to apply time.  ``validate_row``
    is called on every inserted row and ``validate_annotation`` on
    every annotation id an attach would register, so a malformed row
    (wrong arity, empty) or a bad id fails here instead of
    mid-application; whatever they raise (e.g. ``SchemaError``,
    ``UnknownAnnotationError``) propagates unchanged, matching what
    per-event application would have raised.

    Raises :class:`DeltaPlanError` — without any side effect — whenever
    sequential per-event application would raise on one of the events.
    """
    if not events:
        raise DeltaPlanError("cannot compile an empty event batch")
    plan = DeltaPlan(base_tid=next_tid, events=tuple(events))
    plan.stats.events = len(events)
    #: Last surviving op per (tid, annotation): True = add, False = remove.
    pair_ops: dict[tuple[int, str], bool] = {}
    #: tid -> its keys in ``pair_ops`` (O(pairs-on-tid) delete squash).
    pairs_by_tid: dict[int, set[tuple[int, str]]] = {}
    deleted: set[int] = set()

    def check_target(tid: int, position: int, verb: str) -> None:
        if tid in deleted:
            raise DeltaPlanError(
                f"event {position} {verb}s tuple {tid}, which an earlier "
                f"event in the same batch deleted")
        if tid >= next_tid:
            if tid >= next_tid + len(plan.inserts):
                raise DeltaPlanError(
                    f"event {position} {verb}s unknown tuple {tid}")
        elif not is_live(tid):
            raise DeltaPlanError(
                f"event {position} {verb}s tuple {tid}, which does not "
                f"exist or is deleted")

    for position, event in enumerate(events, start=1):
        label = event_label(event)
        coalesced = 0
        if isinstance(event, (AddAnnotatedTuples, AddUnannotatedTuples)):
            payload = len(event.rows)
            for row in event.rows:
                if isinstance(event, AddAnnotatedTuples):
                    values, annotations = row
                else:
                    values, annotations = row, frozenset()
                if validate_row is not None:
                    validate_row(values)
                if validate_annotation is not None:
                    for annotation_id in annotations:
                        validate_annotation(annotation_id)
                plan.inserts.append(PlannedInsert(
                    tid=next_tid + len(plan.inserts),
                    values=tuple(values),
                    annotations=set(annotations)))
        elif isinstance(event, AddAnnotations):
            payload = len(event.additions)
            for tid, annotation_id in event.additions:
                check_target(tid, position, "annotate")
                if validate_annotation is not None:
                    validate_annotation(annotation_id)
                if tid >= next_tid:
                    row = plan.inserts[tid - next_tid]
                    coalesced += 1
                    plan.stats.pairs_folded_into_inserts += 1
                    if annotation_id not in row.annotations:
                        row.annotations.add(annotation_id)
                    continue
                key = (tid, annotation_id)
                if key in pair_ops:
                    coalesced += 1
                    plan.stats.pairs_collapsed += 1
                pair_ops[key] = True
                pairs_by_tid.setdefault(tid, set()).add(key)
        elif isinstance(event, RemoveAnnotations):
            payload = len(event.removals)
            for tid, annotation_id in event.removals:
                check_target(tid, position, "detache")
                if tid >= next_tid:
                    row = plan.inserts[tid - next_tid]
                    coalesced += 1
                    plan.stats.pairs_folded_into_inserts += 1
                    row.annotations.discard(annotation_id)
                    continue
                key = (tid, annotation_id)
                if key in pair_ops:
                    coalesced += 1
                    plan.stats.pairs_collapsed += 1
                pair_ops[key] = False
                pairs_by_tid.setdefault(tid, set()).add(key)
        elif isinstance(event, RemoveTuples):
            payload = len(event.tids)
            for tid in event.tids:
                check_target(tid, position, "delete")
                deleted.add(tid)
                if tid >= next_tid:
                    row = plan.inserts[tid - next_tid]
                    row.elided = True
                    coalesced += 1
                    plan.stats.inserts_elided += 1
                    continue
                plan.deletions.append(tid)
                # Annotation ops that preceded the delete are absorbed:
                # the decay walk over the tuple's pre-batch item set is
                # their exact net effect.
                for key in pairs_by_tid.pop(tid, ()):
                    del pair_ops[key]
                    plan.stats.pairs_cancelled += 1
        else:
            raise DeltaPlanError(f"unknown update event {event!r}")
        plan.audits.append(EventAudit(
            position=position, event=label,
            payload=payload, coalesced=coalesced))

    # Net the surviving pair ops against the pre-batch state.
    for (tid, annotation_id), is_add in pair_ops.items():
        if annotations_of is not None:
            present = annotation_id in annotations_of(tid)
            if is_add == present:
                plan.stats.pairs_cancelled += 1
                continue
        bucket = (plan.annotation_adds if is_add
                  else plan.annotation_removes)
        bucket.setdefault(tid, []).append(annotation_id)
    return plan


@dataclass(frozen=True, slots=True)
class ShardPlacement:
    """Where one planned insert lands in a partitioned engine."""

    tid: int        #: Global tid the plan assigned.
    shard: int      #: Partition the tuple hashes to.
    local_tid: int  #: Tid inside that partition's relation.


def split_plan(plan: DeltaPlan,
               *,
               locate: Callable[[int], tuple[int, int]],
               place: Callable[[int], int],
               next_local_tid: Callable[[int], int],
               shard_count: int,
               ) -> tuple[list[list[UpdateEvent]], list[ShardPlacement]]:
    """Split a compiled plan into per-shard sub-plans.

    Each sub-plan is an ordered event list over the shard's *local* tid
    space, ready for that shard engine's own ``apply_batch`` (which
    re-compiles it — cheap, and it keeps every engine-level guard).
    ``locate(tid)`` maps a pre-existing global tid to ``(shard,
    local_tid)``; ``place(tid)`` picks the shard of a newly planned
    global tid; ``next_local_tid(shard)`` is the local tid the shard's
    next insert will receive.  Returns the sub-plans plus one
    :class:`ShardPlacement` per planned insert (elided ones included —
    they consume a local tid just like a global one) so the caller can
    extend its tid maps.

    The global plan is already coalesced and validated, so the split is
    a pure re-addressing pass: net annotation ops target pre-existing
    tuples only (ops on pending inserts were folded into their rows),
    and a shard's sub-plan replays insert rows, pair ops and deletions
    in the global plan's order.
    """
    inserts: list[list[tuple[tuple[str, ...], frozenset[str]]]] = \
        [[] for _ in range(shard_count)]
    adds: list[list[tuple[int, str]]] = [[] for _ in range(shard_count)]
    removes: list[list[tuple[int, str]]] = [[] for _ in range(shard_count)]
    deletions: list[list[int]] = [[] for _ in range(shard_count)]
    placements: list[ShardPlacement] = []

    pending: list[int] = [0] * shard_count
    for planned in plan.inserts:
        shard = place(planned.tid)
        if not 0 <= shard < shard_count:
            raise DeltaPlanError(
                f"partitioner placed tid {planned.tid} on shard {shard}, "
                f"outside 0..{shard_count - 1}")
        local_tid = next_local_tid(shard) + pending[shard]
        pending[shard] += 1
        placements.append(ShardPlacement(
            tid=planned.tid, shard=shard, local_tid=local_tid))
        inserts[shard].append((planned.values,
                               frozenset(planned.annotations)))
        if planned.elided:
            deletions[shard].append(local_tid)
    for tid, annotation_ids in plan.annotation_adds.items():
        shard, local_tid = locate(tid)
        adds[shard].extend((local_tid, annotation_id)
                           for annotation_id in annotation_ids)
    for tid, annotation_ids in plan.annotation_removes.items():
        shard, local_tid = locate(tid)
        removes[shard].extend((local_tid, annotation_id)
                              for annotation_id in annotation_ids)
    for tid in plan.deletions:
        shard, local_tid = locate(tid)
        deletions[shard].append(local_tid)

    sub_plans: list[list[UpdateEvent]] = []
    for shard in range(shard_count):
        events: list[UpdateEvent] = []
        if inserts[shard]:
            events.append(AddAnnotatedTuples.build(inserts[shard]))
        if adds[shard]:
            events.append(AddAnnotations.build(adds[shard]))
        if removes[shard]:
            events.append(RemoveAnnotations.build(removes[shard]))
        if deletions[shard]:
            events.append(RemoveTuples.build(deletions[shard]))
        sub_plans.append(events)
    return sub_plans, placements

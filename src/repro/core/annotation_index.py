"""Vertical index and the annotation frequency table.

Section 4.3 of the paper: "the system indexes the annotations such that
given a query annotation, we can efficiently find all data tuples having
this annotation" and "the system maintains a table containing the
frequency of each annotation, and it is updated whenever a new
annotation is added".  Both structures are views over one maintained
item -> tidset map; keeping data items in the same map lets discovery
count any candidate pattern by tidset intersection without a database
scan.

Storage is the bitmap substrate of :mod:`repro.mining.bitmap`: each
item's tidset is one big integer, so candidate counting is a bitwise
AND plus a popcount instead of hashed set intersection.  Buckets whose
last tid disappears are pruned immediately, so delete-heavy streams do
not accumulate dead items in :meth:`VerticalIndex.items` walks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import MaintenanceError
from repro.mining.bitmap import BitmapIndex, BitTidset
from repro.mining.itemsets import ItemVocabulary, Itemset, Transaction


class VerticalIndex:
    """Maintained item -> tidset map over the live transactions.

    An optional *observer* (the sketch registry of
    :mod:`repro.mining.sketch`) rides along on the four maintenance
    methods — the single choke point every engine mutation path funnels
    through — so derived structures stay fresh at O(delta) cost without
    a second walk over the batch.
    """

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary
        self._bitmaps = BitmapIndex()
        self._observer = None

    def set_observer(self, observer) -> None:
        """Attach (or detach with ``None``) a maintenance observer.

        The observer must expose ``on_add(item, tid)`` and
        ``on_discard(item, tid, remaining_tids)``; callbacks fire only
        for deltas that actually changed the bitmap state.
        """
        self._observer = observer

    @classmethod
    def from_transactions(cls, vocabulary: ItemVocabulary,
                          transactions) -> "VerticalIndex":
        """Bulk-build from a transaction list (tid == position) via the
        bitmap substrate's one-pass constructor — the partitioned
        encode path uses this instead of per-tuple ``add_transaction``
        calls."""
        index = cls(vocabulary)
        index._bitmaps = BitmapIndex.from_transactions(transactions)
        return index

    @classmethod
    def from_bits(cls, vocabulary: ItemVocabulary,
                  bits) -> "VerticalIndex":
        """Bulk-build from pre-computed item -> bitmap-int tidsets —
        how the parent hydrates a shard index from worker-filled shared
        pages without re-walking the transactions."""
        index = cls(vocabulary)
        index._bitmaps = BitmapIndex.from_bits(bits)
        return index

    # -- maintenance --------------------------------------------------------

    def add_transaction(self, tid: int, items: Transaction) -> None:
        observer = self._observer
        for item in items:
            if observer is not None and tid not in self._bitmaps.tidset(item):
                observer.on_add(item, tid)
            self._bitmaps.add(item, tid)

    def extend_transaction(self, tid: int, new_items: Iterable[int]) -> None:
        observer = self._observer
        for item in new_items:
            if observer is not None and tid not in self._bitmaps.tidset(item):
                observer.on_add(item, tid)
            self._bitmaps.add(item, tid)

    def shrink_transaction(self, tid: int, removed_items: Iterable[int]) -> None:
        observer = self._observer
        for item in removed_items:
            if not self._bitmaps.discard(item, tid):
                raise MaintenanceError(
                    f"index does not record item {item} on tid {tid}")
            if observer is not None:
                observer.on_discard(item, tid, self._bitmaps.tidset(item))

    def remove_transaction(self, tid: int, items: Transaction) -> None:
        self.shrink_transaction(tid, items)

    # -- queries -------------------------------------------------------------

    @property
    def vocabulary(self) -> ItemVocabulary:
        """The vocabulary this index's items are interned in."""
        return self._vocabulary

    def tids(self, item: int) -> frozenset[int]:
        return frozenset(self._bitmaps.tidset(item))

    def frequency(self, item: int) -> int:
        """The annotation frequency table entry for ``item``."""
        return self._bitmaps.frequency(item)

    def count(self, itemset: Itemset, *, db_size: int | None = None) -> int:
        if not itemset:
            if db_size is None:
                raise ValueError(
                    "db_size required to count the empty itemset")
            return db_size
        return self._bitmaps.count(itemset)

    def tids_of_itemset(self, itemset: Itemset) -> set[int]:
        return self._bitmaps.tids_of(itemset)

    def frequent_items(self, min_count: int, *,
                       annotation_like_only: bool = False) -> list[int]:
        keep = (self._vocabulary.annotation_like_ids()
                if annotation_like_only else None)
        return [
            item for item in self._bitmaps.items()
            if self._bitmaps.frequency(item) >= min_count
            and (keep is None or item in keep)]

    def items(self) -> list[int]:
        return self._bitmaps.items()

    def as_mapping(self) -> Mapping[int, BitTidset]:
        """Read-only view handed to the vertical miners.

        The view is live but cannot corrupt the index: it exposes no
        mutators and its values are immutable :class:`BitTidset`\\ s.
        """
        return self._bitmaps.as_mapping()

    def annotation_frequencies(self) -> dict[int, int]:
        """The paper's annotation frequency table as a plain dict."""
        keep = self._vocabulary.annotation_like_ids()
        return {item: self._bitmaps.frequency(item)
                for item in self._bitmaps.items() if item in keep}

    def __contains__(self, item: int) -> bool:
        return item in self._bitmaps

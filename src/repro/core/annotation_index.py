"""Vertical index and the annotation frequency table.

Section 4.3 of the paper: "the system indexes the annotations such that
given a query annotation, we can efficiently find all data tuples having
this annotation" and "the system maintains a table containing the
frequency of each annotation, and it is updated whenever a new
annotation is added".  Both structures are views over one maintained
item -> tidset map; keeping data items in the same map lets discovery
count any candidate pattern by tidset intersection without a database
scan.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import MaintenanceError
from repro.mining.eclat import count_itemset, tids_of
from repro.mining.itemsets import ItemVocabulary, Itemset, Transaction


class VerticalIndex:
    """Maintained item -> tidset map over the live transactions."""

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary
        self._tids: dict[int, set[int]] = {}

    # -- maintenance --------------------------------------------------------

    def add_transaction(self, tid: int, items: Transaction) -> None:
        for item in items:
            self._tids.setdefault(item, set()).add(tid)

    def extend_transaction(self, tid: int, new_items: Iterable[int]) -> None:
        for item in new_items:
            self._tids.setdefault(item, set()).add(tid)

    def shrink_transaction(self, tid: int, removed_items: Iterable[int]) -> None:
        for item in removed_items:
            bucket = self._tids.get(item)
            if bucket is None or tid not in bucket:
                raise MaintenanceError(
                    f"index does not record item {item} on tid {tid}")
            bucket.discard(tid)

    def remove_transaction(self, tid: int, items: Transaction) -> None:
        self.shrink_transaction(tid, items)

    # -- queries -------------------------------------------------------------

    def tids(self, item: int) -> frozenset[int]:
        return frozenset(self._tids.get(item, ()))

    def frequency(self, item: int) -> int:
        """The annotation frequency table entry for ``item``."""
        return len(self._tids.get(item, ()))

    def count(self, itemset: Itemset, *, db_size: int | None = None) -> int:
        return count_itemset(self._tids, itemset, universe_size=db_size)

    def tids_of_itemset(self, itemset: Itemset) -> set[int]:
        return tids_of(self._tids, itemset)

    def frequent_items(self, min_count: int, *,
                       annotation_like_only: bool = False) -> list[int]:
        keep = (self._vocabulary.annotation_like_ids()
                if annotation_like_only else None)
        return sorted(
            item for item, tids in self._tids.items()
            if len(tids) >= min_count and (keep is None or item in keep))

    def items(self) -> list[int]:
        return sorted(self._tids)

    def as_mapping(self) -> Mapping[int, set[int]]:
        """Read-only view handed to the vertical miners."""
        return self._tids

    def annotation_frequencies(self) -> dict[int, int]:
        """The paper's annotation frequency table as a plain dict."""
        keep = self._vocabulary.annotation_like_ids()
        return {item: len(tids) for item, tids in self._tids.items()
                if item in keep}

    def __contains__(self, item: int) -> bool:
        return item in self._tids and bool(self._tids[item])

"""Revision-keyed rule catalog — the serving read path's index layer.

The write path (PRs 1–3) batches, coalesces and dirty-scopes its work;
this module gives the *read* path the same treatment.  A
:class:`RuleCatalog` is an immutable snapshot of one rule set, built
once per engine revision, carrying the secondary indexes a served
system answers queries from:

* ``by item``  — every rule whose LHS or RHS mentions an item;
* ``by RHS``   — every rule predicting a given annotation item;
* ``by kind``  — the paper's two correlation families;
* presorted **metric orderings** (support / confidence / lift), so
  top-k and paging are slices instead of per-call sorts.

Queries compose through :class:`CatalogQuery`
(``catalog.query().mentioning(item).of_kind(kind).top(5, by="lift")``),
which plans against the most selective available index and can report
that choice through :meth:`CatalogQuery.explain`.

Catalogs never mutate: incremental maintenance produces a *new*
revision, and :meth:`~repro.core.engine.CorrelationEngine.catalog`
memoizes one catalog per revision — so any number of concurrent
readers share one set of indexes, and an unchanged-revision read is a
cache hit, not a rebuild.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field, replace

from repro.core.rules import AssociationRule, RuleKey, RuleKind
from repro.errors import CatalogError
from repro.mining.interest import (
    RuleCounts,
    chi_square as _chi_square_measure,
    p_value as _p_value_measure,
)

#: Metrics with a precomputed descending ordering in every catalog.
METRICS = ("support", "confidence", "lift")

#: Significance metrics (Chanda et al.): computed from the 2x2
#: contingency table, so they need the RHS marginal the catalog is
#: enriched with (:meth:`RuleCatalog.with_revision`), falling back to
#: the rule's own lower-bound estimate otherwise.  ``chi_square``
#: orders descending (stronger association first), ``p_value``
#: ascending (stronger evidence first).
SIGNIFICANCE_METRICS = ("chi_square", "p_value")

#: Every metric a query may filter or order by.
ALL_METRICS = METRICS + SIGNIFICANCE_METRICS


def ensure_metric(metric: str) -> str:
    """Validate an ordering/floor metric name (any of ``ALL_METRICS``)."""
    if metric not in ALL_METRICS:
        raise CatalogError(
            f"unknown ordering metric {metric!r}; "
            f"choose from {', '.join(ALL_METRICS)}")
    return metric

#: The canonical (paper Figure 7 listing) order — the ordering every
#: catalog stores its rules in, and the tie-break within each metric.
_CANONICAL = "canonical"


def _canonical_key(rule: AssociationRule) -> tuple:
    return (rule.kind.value, len(rule.lhs), rule.lhs, rule.rhs)


#: Descending metric, then secondary metric, then stable listing order
#: (kind, LHS, RHS) so equal-scored rules page deterministically.
_METRIC_KEYS: dict[str, Callable[[AssociationRule], tuple]] = {
    "support": lambda rule: (-rule.support, -rule.confidence,
                             rule.kind.value, rule.lhs, rule.rhs),
    "confidence": lambda rule: (-rule.confidence, -rule.support,
                                rule.kind.value, rule.lhs, rule.rhs),
    "lift": lambda rule: (-rule.lift, -rule.confidence,
                          rule.kind.value, rule.lhs, rule.rhs),
}


def metric_key(metric: str) -> Callable[[AssociationRule], tuple]:
    """The sort key a metric ordering uses (exposed for equivalence
    tests: brute-force answers must sort with the same tie-breaks)."""
    try:
        return _METRIC_KEYS[metric]
    except KeyError:
        raise CatalogError(
            f"unknown ordering metric {metric!r}; "
            f"choose from {', '.join(METRICS)}") from None


@dataclass(frozen=True, slots=True)
class CatalogStats:
    """Shape of one catalog — persisted alongside engine snapshots so a
    restore can verify it rebuilt the same read state."""

    revision: int
    rule_count: int
    d2a_rules: int
    a2a_rules: int
    item_index_entries: int
    rhs_index_entries: int

    def as_dict(self) -> dict[str, int]:
        return {
            "revision": self.revision,
            "rule_count": self.rule_count,
            "d2a_rules": self.d2a_rules,
            "a2a_rules": self.a2a_rules,
            "item_index_entries": self.item_index_entries,
            "rhs_index_entries": self.rhs_index_entries,
        }


@dataclass(frozen=True, slots=True)
class QueryExplain:
    """How one query was served — the read-path audit trail.

    ``index`` names the structure that produced the candidate set:
    ``"rhs"``, ``"item"``, ``"kind"``, ``"ordering:<metric>"`` (a
    presorted slice) or ``"full"`` (no index applied).
    """

    index: str
    candidates: int
    matched: int
    returned: int
    filters: tuple[str, ...]
    ordering: str
    presorted: bool
    offset: int
    limit: int | None

    def describe(self) -> str:
        window = (f"[{self.offset}:"
                  f"{'' if self.limit is None else self.offset + self.limit}]")
        residual = ", ".join(self.filters) if self.filters else "none"
        return (f"index={self.index} candidates={self.candidates} "
                f"matched={self.matched} returned={self.returned} "
                f"ordering={self.ordering}"
                f"{' (presorted)' if self.presorted else ''} "
                f"window={window} residual-filters: {residual}")


class RuleCatalog:
    """An immutable, fully indexed snapshot of one rule set revision."""

    __slots__ = ("_revision", "_rules", "_by_key", "_by_item", "_by_rhs",
                 "_by_kind", "_orderings", "_sig_orderings", "_stats",
                 "_rhs_counts", "_significance")

    def __init__(self, rules: Iterable[AssociationRule] = (), *,
                 revision: int = 0,
                 rhs_counts: dict[int, int] | None = None) -> None:
        ordered = tuple(sorted(rules, key=_canonical_key))
        self._revision = revision
        self._rules = ordered
        self._by_key: dict[RuleKey, AssociationRule] = {
            rule.key: rule for rule in ordered}
        if len(self._by_key) != len(ordered):
            raise CatalogError(
                "duplicate rule keys in catalog input — a catalog "
                "snapshots one keyed rule set")

        by_item: dict[int, list[AssociationRule]] = {}
        by_rhs: dict[int, list[AssociationRule]] = {}
        by_kind: dict[RuleKind, list[AssociationRule]] = {}
        for rule in ordered:
            for item in rule.union_itemset:
                by_item.setdefault(item, []).append(rule)
            by_rhs.setdefault(rule.rhs, []).append(rule)
            by_kind.setdefault(rule.kind, []).append(rule)
        self._by_item = {item: tuple(bucket)
                         for item, bucket in by_item.items()}
        self._by_rhs = {rhs: tuple(bucket) for rhs, bucket in by_rhs.items()}
        self._by_kind = {kind: tuple(bucket)
                         for kind, bucket in by_kind.items()}
        # Metric orderings fill lazily on first use (memoized per
        # metric, shared with re-stamped clones): index-only consumers
        # never pay for sorts they don't ask for.  Base-metric
        # orderings live apart from the significance ones because the
        # former never depend on the RHS marginals — a marginal-
        # enriched clone keeps sharing the base dict (even for sorts
        # built *after* cloning) and resets only the significance side.
        self._orderings: dict[str, tuple[AssociationRule, ...]] = {}
        self._sig_orderings: dict[str, tuple[AssociationRule, ...]] = {}
        #: Exact RHS marginals (item -> frequency) the engine enriches
        #: the catalog with at memo time; ``None`` means significance
        #: falls back to each rule's lower-bound RHS estimate.
        self._rhs_counts = dict(rhs_counts) if rhs_counts else None
        #: Lazily memoized (chi_square, p_value) per rule key.
        self._significance: dict[RuleKey, tuple[float, float]] = {}
        self._stats = CatalogStats(
            revision=revision,
            rule_count=len(ordered),
            d2a_rules=len(self._by_kind.get(RuleKind.DATA_TO_ANNOTATION, ())),
            a2a_rules=len(self._by_kind.get(
                RuleKind.ANNOTATION_TO_ANNOTATION, ())),
            item_index_entries=len(self._by_item),
            rhs_index_entries=len(self._by_rhs),
        )

    # -- identity ------------------------------------------------------------

    @property
    def revision(self) -> int:
        """The engine revision this catalog was built from."""
        return self._revision

    def with_revision(self, revision: int, *,
                      rhs_counts: dict[int, int] | None = None
                      ) -> "RuleCatalog":
        """This catalog re-keyed to ``revision``, sharing every index.

        The engine uses this to stamp its revision onto the catalog
        the rule set lazily built (keyed by its own mutation counter),
        so the two memo layers share one set of indexes instead of
        building duplicates.  All shared structures are immutable.

        ``rhs_counts`` optionally enriches the clone with exact RHS
        marginals for the significance metrics; a clone with *new*
        counts gets fresh significance memos (and drops any
        significance orderings computed under the old counts) while
        still sharing the base-metric orderings built so far.
        """
        if revision == self._revision and rhs_counts is None:
            return self
        clone = object.__new__(RuleCatalog)
        clone._revision = revision
        clone._rules = self._rules
        clone._by_key = self._by_key
        clone._by_item = self._by_item
        clone._by_rhs = self._by_rhs
        clone._by_kind = self._by_kind
        clone._orderings = self._orderings
        if rhs_counts is None:
            clone._sig_orderings = self._sig_orderings
            clone._rhs_counts = self._rhs_counts
            clone._significance = self._significance
        else:
            clone._sig_orderings = {}
            clone._rhs_counts = dict(rhs_counts)
            clone._significance = {}
        clone._stats = replace(self._stats, revision=revision)
        return clone

    @property
    def rules(self) -> tuple[AssociationRule, ...]:
        """Every rule, in the canonical listing order."""
        return self._rules

    @property
    def stats(self) -> CatalogStats:
        return self._stats

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __contains__(self, key: RuleKey) -> bool:
        return key in self._by_key

    def get(self, key: RuleKey) -> AssociationRule | None:
        return self._by_key.get(key)

    # -- index lookups -------------------------------------------------------

    def mentioning(self, item: int) -> tuple[AssociationRule, ...]:
        """Rules whose LHS or RHS contains ``item`` (one dict probe)."""
        return self._by_item.get(item, ())

    def with_rhs(self, rhs: int) -> tuple[AssociationRule, ...]:
        """Rules predicting annotation item ``rhs`` (one dict probe)."""
        return self._by_rhs.get(rhs, ())

    def of_kind(self, kind: RuleKind) -> tuple[AssociationRule, ...]:
        return self._by_kind.get(kind, ())

    def items(self) -> tuple[int, ...]:
        """Every item mentioned by at least one rule, ascending."""
        return tuple(sorted(self._by_item))

    def rhs_items(self) -> tuple[int, ...]:
        """Every annotation item some rule predicts, ascending."""
        return tuple(sorted(self._by_rhs))

    # -- significance --------------------------------------------------------

    def rhs_count(self, rule: AssociationRule) -> int:
        """The RHS marginal used for ``rule``'s contingency table:
        the enriched exact frequency when available, else the rule's
        own lower-bound estimate — clamped into the feasible
        ``[union_count, db_size]`` range either way."""
        count = None
        if self._rhs_counts is not None:
            count = self._rhs_counts.get(rule.rhs)
        if count is None:
            count = rule.rhs_count_estimate
        return min(max(count, rule.union_count), rule.db_size)

    def significance(self, rule: AssociationRule) -> tuple[float, float]:
        """``(chi_square, p_value)`` for one rule, memoized per key."""
        cached = self._significance.get(rule.key)
        if cached is None:
            counts = RuleCounts.from_rule(rule, self.rhs_count(rule))
            cached = (_chi_square_measure(counts), _p_value_measure(counts))
            self._significance[rule.key] = cached
        return cached

    def chi_square_of(self, rule: AssociationRule) -> float:
        return self.significance(rule)[0]

    def p_value_of(self, rule: AssociationRule) -> float:
        return self.significance(rule)[1]

    def metric_value(self, rule: AssociationRule, metric: str) -> float:
        """The value ``metric`` orders ``rule`` by (serving payloads)."""
        ensure_metric(metric)
        if metric == "chi_square":
            return self.chi_square_of(rule)
        if metric == "p_value":
            return self.p_value_of(rule)
        return getattr(rule, metric)

    def _key_for(self, metric: str) -> Callable[[AssociationRule], tuple]:
        """Catalog-aware sort key: the pure per-rule keys for the base
        metrics (identical to :func:`metric_key`), contingency-backed
        keys for the significance tier.  Chi-square sorts descending,
        p-value ascending; both tie-break on confidence then the
        canonical listing order, so equal-scored rules page
        deterministically."""
        base = _METRIC_KEYS.get(metric)
        if base is not None:
            return base
        ensure_metric(metric)
        if metric == "chi_square":
            return lambda rule: (-self.chi_square_of(rule), -rule.confidence,
                                 rule.kind.value, rule.lhs, rule.rhs)
        return lambda rule: (self.p_value_of(rule), -rule.confidence,
                             rule.kind.value, rule.lhs, rule.rhs)

    def ordered_by(self, metric: str) -> tuple[AssociationRule, ...]:
        """All rules, best-first by ``metric`` — sorted once on first
        use, served as the memoized tuple afterwards (a concurrent
        first use is a benign race: equal tuples, one wins the slot)."""
        ensure_metric(metric)
        memo = (self._orderings if metric in _METRIC_KEYS
                else self._sig_orderings)
        cached = memo.get(metric)
        if cached is None:
            cached = tuple(sorted(self._rules, key=self._key_for(metric)))
            memo[metric] = cached
        return cached

    def top(self, n: int, *, by: str = "confidence"
            ) -> tuple[AssociationRule, ...]:
        """The ``n`` best rules by ``by`` — a slice of a presorted
        ordering, O(n) however large the catalog."""
        if n < 0:
            raise CatalogError(f"top() needs n >= 0, got {n}")
        return self.ordered_by(by)[:n]

    # -- composable queries --------------------------------------------------

    def query(self) -> "CatalogQuery":
        """A fresh query over this catalog (immutable; refinements
        return new queries, so partial queries can be shared)."""
        return CatalogQuery(self)


@dataclass(frozen=True)
class CatalogQuery:
    """A composable, immutable rule query.

    Refinement methods narrow and return a *new* query; terminal
    methods (:meth:`all`, :meth:`count`, :meth:`first`, :meth:`top`)
    execute it.  Execution plans against the catalog's most selective
    matching index — :meth:`explain` runs the query and reports which.
    """

    _catalog: RuleCatalog
    _items: tuple[int, ...] = ()
    _rhs: int | None = None
    _kind: RuleKind | None = None
    _min_support: float | None = None
    _min_confidence: float | None = None
    _min_lift: float | None = None
    _min_chi_square: float | None = None
    _max_p_value: float | None = None
    _predicates: tuple[tuple[str, Callable[[AssociationRule], bool]], ...] = ()
    _ordering: str = _CANONICAL
    _offset: int = 0
    _limit: int | None = None
    _last_explain: list = field(default_factory=list, compare=False)

    # -- refinements ---------------------------------------------------------

    def mentioning(self, item: int) -> "CatalogQuery":
        """Require ``item`` in the rule's LHS or RHS (repeatable: each
        call adds one required item)."""
        if item in self._items:
            return self
        return replace(self, _items=self._items + (item,),
                       _last_explain=[])

    def with_rhs(self, rhs: int) -> "CatalogQuery":
        if self._rhs is not None and self._rhs != rhs:
            raise CatalogError(
                f"query already requires rhs={self._rhs}; a rule has "
                f"exactly one RHS, so with_rhs({rhs}) can match nothing")
        return replace(self, _rhs=rhs, _last_explain=[])

    def of_kind(self, kind: RuleKind) -> "CatalogQuery":
        if self._kind is not None and self._kind is not kind:
            raise CatalogError(
                f"query already requires kind={self._kind.value}; "
                f"of_kind({kind.value}) can match nothing")
        return replace(self, _kind=kind, _last_explain=[])

    def min_support(self, value: float) -> "CatalogQuery":
        return replace(self, _min_support=value, _last_explain=[])

    def min_confidence(self, value: float) -> "CatalogQuery":
        return replace(self, _min_confidence=value, _last_explain=[])

    def min_lift(self, value: float) -> "CatalogQuery":
        return replace(self, _min_lift=value, _last_explain=[])

    def min_chi_square(self, value: float) -> "CatalogQuery":
        """Significance floor: keep rules whose chi-square statistic is
        at least ``value`` (3.841 is the classic 5% critical value)."""
        return replace(self, _min_chi_square=value, _last_explain=[])

    def max_p_value(self, value: float) -> "CatalogQuery":
        """Significance ceiling: keep rules whose independence p-value
        is at most ``value``."""
        return replace(self, _max_p_value=value, _last_explain=[])

    def where(self, predicate: Callable[[AssociationRule], bool], *,
              label: str = "where") -> "CatalogQuery":
        """An arbitrary residual filter (never index-served)."""
        return replace(self,
                       _predicates=self._predicates + ((label, predicate),),
                       _last_explain=[])

    def order_by(self, metric: str) -> "CatalogQuery":
        """Order results best-first by a metric (or ``"canonical"``)."""
        if metric != _CANONICAL:
            ensure_metric(metric)
        return replace(self, _ordering=metric, _last_explain=[])

    def page(self, offset: int, limit: int | None) -> "CatalogQuery":
        """Window the ordered result: skip ``offset``, return at most
        ``limit`` (``None`` = unbounded)."""
        if offset < 0:
            raise CatalogError(f"page() needs offset >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise CatalogError(f"page() needs limit >= 0, got {limit}")
        return replace(self, _offset=offset, _limit=limit, _last_explain=[])

    # -- terminals -----------------------------------------------------------

    def all(self) -> tuple[AssociationRule, ...]:
        """Execute: the matching rules, ordered and windowed."""
        return self._execute()

    def top(self, n: int, *, by: str | None = None
            ) -> tuple[AssociationRule, ...]:
        """The first ``n`` results of *this* query, optionally
        re-ordered by ``by`` — an existing :meth:`page` window is
        respected (``top`` can narrow it, never widen it)."""
        if n < 0:
            raise CatalogError(f"top() needs n >= 0, got {n}")
        query = self if by is None else self.order_by(by)
        limit = n if self._limit is None else min(n, self._limit)
        return replace(query, _limit=limit, _last_explain=[])._execute()

    def count(self) -> int:
        """Matching rules, ignoring any page window."""
        unwindowed = replace(self, _offset=0, _limit=None, _last_explain=[])
        return len(unwindowed._execute())

    def first(self) -> AssociationRule | None:
        results = replace(self, _limit=1, _last_explain=[])._execute()
        return results[0] if results else None

    def explain(self) -> QueryExplain:
        """Execute and report which index served the query."""
        self._execute()
        return self._last_explain[-1]

    # -- planning and execution ----------------------------------------------

    def _execute(self) -> tuple[AssociationRule, ...]:
        catalog = self._catalog
        filters: list[str] = []
        residual: list[Callable[[AssociationRule], bool]] = []

        # Index selection: take the candidate set from the most
        # selective structure that matches a constraint, preferring the
        # narrow single-key indexes (RHS, then the rarest mentioned
        # item, then kind); with no constraint at all, a metric
        # ordering serves presorted, else the full canonical listing.
        presorted = False
        probe_item: int | None = None
        if self._rhs is not None:
            index = "rhs"
            base = catalog.with_rhs(self._rhs)
        elif self._items:
            index = "item"
            probe_item = min(self._items,
                             key=lambda item: len(catalog.mentioning(item)))
            base = catalog.mentioning(probe_item)
        elif self._kind is not None:
            index = "kind"
            base = catalog.of_kind(self._kind)
        elif self._ordering != _CANONICAL:
            index = f"ordering:{self._ordering}"
            base = catalog.ordered_by(self._ordering)
            presorted = True
        else:
            index = "full"
            base = catalog.rules

        # Residual filters: every constraint the chosen index does not
        # already guarantee (an RHS requirement always is — the RHS
        # index wins the selection whenever one is set).
        for item in self._items:
            if item == probe_item:
                continue  # the probed bucket already guarantees it
            residual.append(
                lambda rule, item=item: item in rule.union_itemset)
            filters.append(f"mentions={item}")
        if self._kind is not None and index != "kind":
            kind = self._kind
            residual.append(lambda rule: rule.kind is kind)
            filters.append(f"kind={kind.value}")
        if self._min_support is not None:
            floor = self._min_support
            residual.append(lambda rule: rule.support >= floor)
            filters.append(f"support>={floor}")
        if self._min_confidence is not None:
            floor = self._min_confidence
            residual.append(lambda rule: rule.confidence >= floor)
            filters.append(f"confidence>={floor}")
        if self._min_lift is not None:
            floor = self._min_lift
            residual.append(lambda rule: rule.lift >= floor)
            filters.append(f"lift>={floor}")
        if self._min_chi_square is not None:
            floor = self._min_chi_square
            residual.append(
                lambda rule: catalog.chi_square_of(rule) >= floor)
            filters.append(f"chi_square>={floor}")
        if self._max_p_value is not None:
            ceiling = self._max_p_value
            residual.append(lambda rule: catalog.p_value_of(rule) <= ceiling)
            filters.append(f"p_value<={ceiling}")
        for label, predicate in self._predicates:
            residual.append(predicate)
            filters.append(label)

        if residual:
            matched = tuple(rule for rule in base
                            if all(check(rule) for check in residual))
        else:
            matched = tuple(base)

        # Ordering: base sets from the key indexes are canonical; a
        # metric ordering re-sorts the (usually already narrow) match
        # set — unless the presorted ordering itself was the base, in
        # which case filtering preserved its order.
        if self._ordering != _CANONICAL and not presorted:
            matched = tuple(sorted(matched,
                                   key=catalog._key_for(self._ordering)))

        stop = (None if self._limit is None else self._offset + self._limit)
        results = matched[self._offset:stop]
        # Keep only the latest plan (explain() reads just that one): a
        # long-lived shared query must not accumulate one record per
        # execution.
        self._last_explain[:] = [QueryExplain(
            index=index,
            candidates=len(base),
            matched=len(matched),
            returned=len(results),
            filters=tuple(filters),
            ordering=self._ordering,
            presorted=presorted,
            offset=self._offset,
            limit=self._limit,
        )]
        return results

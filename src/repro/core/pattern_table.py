"""The maintained frequent-pattern table.

Figure 13 of the paper reads frequent data patterns and frequent
annotation patterns out of maintained state instead of re-mining them.
This table is that state: every constraint-admitted itemset whose
support is at least ``margin * min_support``, with its **exact** count.
It is downward closed, which the subset walks and the level-wise
completions rely on; :meth:`FrequentPatternTable.check_invariants`
verifies closure in tests and in the manager's validation mode.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator

from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary, Itemset, Transaction
from repro.mining.tables import check_downward_closure, iter_table_subsets


class PatternClass(enum.Enum):
    """Which rule family a table pattern serves."""

    DATA_ONLY = "data-only"              # D2A confidence denominators
    SINGLE_ANNOTATION = "one-annotation"  # D2A rule bodies (LHS ∪ {a})
    ANNOTATION_ONLY = "annotation-only"   # A2A bodies and denominators
    IRRELEVANT = "irrelevant"             # never stored (constraint)


def classify(itemset: Itemset, vocabulary: ItemVocabulary) -> PatternClass:
    annotations = vocabulary.count_annotation_like(itemset)
    if annotations == 0:
        return PatternClass.DATA_ONLY
    if annotations == len(itemset):
        return PatternClass.ANNOTATION_ONLY
    if annotations == 1:
        return PatternClass.SINGLE_ANNOTATION
    return PatternClass.IRRELEVANT


class FrequentPatternTable:
    """Itemset -> exact count with classification and closure checking."""

    def __init__(self, vocabulary: ItemVocabulary) -> None:
        self._vocabulary = vocabulary
        self.counts: dict[Itemset, int] = {}

    # -- reading -------------------------------------------------------------

    @property
    def vocabulary(self) -> ItemVocabulary:
        """The vocabulary this table classifies its patterns against."""
        return self._vocabulary

    def annotation_singletons(self) -> list[int]:
        """Stored single-item patterns that are annotation-like.

        Downward closure means any stored rule body ``LHS ∪ {a}`` has
        ``(a,)`` stored too — so this list is a complete probe set for
        "which unions may extend this LHS", which the dirty-scoped rule
        refresh uses to find affected rules without enumerating every
        stored pattern's rule shapes.
        """
        return [itemset[0] for itemset in self.counts
                if len(itemset) == 1
                and self._vocabulary.is_annotation_like(itemset[0])]

    def count(self, itemset: Itemset) -> int | None:
        return self.counts.get(itemset)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self.counts

    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self.counts)

    def classify(self, itemset: Itemset) -> PatternClass:
        return classify(itemset, self._vocabulary)

    def entries(self) -> Iterator[tuple[Itemset, int]]:
        return iter(self.counts.items())

    def subsets_in(self, transaction: Transaction, *,
                   required_items: frozenset[int] | None = None
                   ) -> Iterator[Itemset]:
        """Table patterns contained in ``transaction`` (closure walk)."""
        return iter_table_subsets(self.counts, transaction,
                                  required_items=required_items)

    def frequent_subpatterns(self, transaction: Transaction,
                             pattern_class: PatternClass) -> list[Itemset]:
        """E.g. "the data value patterns that are already frequent" inside
        a newly annotated tuple (paper Fig. 13, step 1)."""
        return [itemset for itemset in self.subsets_in(transaction)
                if self.classify(itemset) is pattern_class]

    # -- mutation ------------------------------------------------------------

    def replace(self, counts: dict[Itemset, int]) -> None:
        """Install a freshly mined table (initial ``mine()``)."""
        self.counts = dict(counts)

    def set_count(self, itemset: Itemset, count: int) -> None:
        if count < 0:
            raise MaintenanceError(
                f"negative count {count} for pattern {itemset}")
        self.counts[itemset] = count

    def prune_below(self, floor: int) -> list[Itemset]:
        """Drop entries with count < floor; returns them (sorted).

        The floor is the same for every level, and counts are monotone
        under subsets, so pruning preserves downward closure.
        """
        doomed = sorted(itemset for itemset, count in self.counts.items()
                        if count < floor)
        for itemset in doomed:
            del self.counts[itemset]
        return doomed

    # -- verification ----------------------------------------------------------

    def check_invariants(self, *, floor: int | None = None) -> None:
        """Raise MaintenanceError when closure or the floor is violated."""
        problems = check_downward_closure(self.counts)
        if floor is not None:
            problems += [f"{itemset} count {count} below floor {floor}"
                         for itemset, count in self.counts.items()
                         if count < floor]
        for itemset in self.counts:
            if self.classify(itemset) is PatternClass.IRRELEVANT:
                problems.append(f"{itemset} is constraint-irrelevant")
        if problems:
            raise MaintenanceError(
                "pattern table invariants violated: " + "; ".join(problems[:5]))

    def stats(self) -> dict[str, int]:
        """Per-class entry counts (observability for reports and CLI)."""
        out = {pattern_class.value: 0 for pattern_class in PatternClass}
        for itemset in self.counts:
            out[self.classify(itemset).value] += 1
        out["total"] = len(self.counts)
        return out

"""Multi-level rule mining with per-level thresholds (Han & Fu [1]).

The paper's related work (§2.2) recalls that with a generalization
hierarchy "some rules may hold at the higher level(s) of the hierarchy
which may not be true for the lower more-detailed levels" — and its
reference [1] (Han & Fu, VLDB'95) mines each hierarchy level under its
own minimum support, since coarse concepts are naturally more frequent.

This module layers that on the manager: one mining pass over the
extended database at the *loosest* level threshold, then per-rule
filtering by the threshold of the RHS label's hierarchy level, plus the
classic redundancy filter — a descendant-level rule is pruned when its
confidence is within ``redundancy_tolerance`` of an ancestor rule with
the same data LHS (the ancestor already explains it).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.engine import CorrelationEngine
from repro.core.rules import AssociationRule
from repro.errors import GeneralizationError
from repro.generalization.hierarchy import ConceptHierarchy
from repro.mining.itemsets import ItemKind
from repro._util import meets_fraction, validate_fraction


@dataclass(frozen=True, slots=True)
class LeveledRule:
    """A rule tagged with the hierarchy level of its RHS label."""

    rule: AssociationRule
    level: int
    min_support_at_level: float

    def render(self, vocabulary) -> str:
        return (f"[L{self.level}] {self.rule.render(vocabulary)} "
                f"(level floor {self.min_support_at_level:.3f})")


class MultiLevelMiner:
    """Per-level thresholding over a mined manager's label rules."""

    def __init__(self, manager: CorrelationEngine,
                 hierarchy: ConceptHierarchy, *,
                 base_support: float | None = None,
                 decay: float = 0.5,
                 redundancy_tolerance: float = 0.05) -> None:
        if manager.generalizer is None:
            raise GeneralizationError(
                "multi-level mining needs a manager with a generalizer")
        self.manager = manager
        self.hierarchy = hierarchy
        self.base_support = (manager.thresholds.min_support
                             if base_support is None else base_support)
        validate_fraction(self.base_support, "base_support")
        validate_fraction(decay, "decay")
        self.decay = decay
        if redundancy_tolerance < 0:
            raise GeneralizationError(
                f"redundancy_tolerance must be >= 0, "
                f"got {redundancy_tolerance}")
        self.redundancy_tolerance = redundancy_tolerance

    # -- the level filter ----------------------------------------------------

    def _label_of(self, rule: AssociationRule) -> str | None:
        item = self.manager.vocabulary.item(rule.rhs)
        if item.kind is not ItemKind.LABEL:
            return None
        return item.token

    def leveled_rules(self) -> list[LeveledRule]:
        """Label-RHS rules passing their level's support floor.

        The manager mines at its own (loosest) threshold; a rule whose
        RHS label sits at level L must additionally meet
        ``base_support * decay ** L``.  Deeper labels therefore get the
        *lower* floor of Han & Fu's reduced-support strategy — but only
        down to the manager's mined floor, below which counts are
        simply unknown.
        """
        out: list[LeveledRule] = []
        for rule in self.manager.rules:
            label = self._label_of(rule)
            if label is None or label not in self.hierarchy:
                continue
            level = self.hierarchy.level_of(label)
            floor = self.hierarchy.support_for_level(
                self.base_support, label, self.decay)
            if meets_fraction(rule.union_count, rule.db_size, floor):
                out.append(LeveledRule(rule=rule, level=level,
                                       min_support_at_level=floor))
        return out

    # -- redundancy pruning -------------------------------------------------------

    def non_redundant(self, leveled: Iterable[LeveledRule] | None = None
                      ) -> list[LeveledRule]:
        """Drop descendant rules already explained by an ancestor rule.

        A rule ``X ⇒ child`` is redundant when ``X ⇒ ancestor`` exists
        (same LHS) with confidence within ``redundancy_tolerance`` —
        the child adds no discriminative information over the coarser
        concept (Han & Fu's level filtering).
        """
        leveled = list(self.leveled_rules() if leveled is None else leveled)
        by_shape: dict[tuple, LeveledRule] = {}
        for entry in leveled:
            label = self._label_of(entry.rule)
            by_shape[(entry.rule.kind, entry.rule.lhs, label)] = entry

        keep: list[LeveledRule] = []
        for entry in leveled:
            label = self._label_of(entry.rule)
            redundant = False
            for ancestor in self.hierarchy.ancestors(label):
                parent = by_shape.get(
                    (entry.rule.kind, entry.rule.lhs, ancestor))
                if parent is None:
                    continue
                gap = abs(parent.rule.confidence - entry.rule.confidence)
                if gap <= self.redundancy_tolerance:
                    redundant = True
                    break
            if not redundant:
                keep.append(entry)
        return keep

    def by_level(self) -> dict[int, list[LeveledRule]]:
        """Rules grouped by hierarchy level (presentation helper)."""
        grouped: dict[int, list[LeveledRule]] = {}
        for entry in self.leveled_rules():
            grouped.setdefault(entry.level, []).append(entry)
        for bucket in grouped.values():
            bucket.sort(key=lambda entry: (-entry.rule.confidence,
                                           entry.rule.lhs))
        return grouped

"""Engine configuration: one immutable object instead of sprawling kwargs.

:class:`EngineConfig` gathers every knob the correlation engine takes —
thresholds, the near-miss margin, the mining backend, generalization,
search limits, counting strategy, observability toggles.  It is frozen,
so a config can be shared between engines, stored on a service, or used
as a template (:meth:`EngineConfig.replace`) without aliasing bugs.

:class:`EngineConfigBuilder` is the fluent construction path::

    config = (EngineConfig.builder()
              .support(0.2).confidence(0.6)
              .backend("eclat")
              .build())

Thresholds are validated eagerly at :meth:`~EngineConfigBuilder.build`
(and at ``EngineConfig`` construction) through the same
:class:`~repro.core.stats.Thresholds` rules the engine enforces, so a
bad config fails where it is written, not where it is first mined.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dataclass_replace
from typing import Any

from repro.core.stats import DEFAULT_MARGIN, Thresholds
from repro.errors import InvalidThresholdError, MiningError
from repro.mining.apriori import COUNTER_STRATEGIES
from repro.mining.backend import DEFAULT_BACKEND

#: Executors a sharded engine may run its phase-1 shard mines on.
#: ``"thread"`` (default) shares the interpreter — safe everywhere,
#: but pure-python candidate generation contends on the GIL;
#: ``"process"`` packs the shard bitmap indexes into shared-memory
#: pages (:mod:`repro.mining.pages`) and mines in worker processes,
#: falling back to threads when the platform cannot support it.
SHARD_EXECUTORS = ("thread", "process")


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Complete, validated configuration of a :class:`CorrelationEngine`."""

    min_support: float
    min_confidence: float
    margin: float = DEFAULT_MARGIN
    backend: str = DEFAULT_BACKEND
    generalizer: Any = None
    max_length: int | None = None
    counter: str = "auto"
    track_candidates: bool = True
    validate: bool = False
    #: Retain at most this many events in the engine's provenance log
    #: (``None`` = unbounded).  Long-lived served sessions set a bound
    #: so the log rotates instead of growing with the write stream.
    max_log_events: int | None = None
    #: Number of hash partitions the relation is mined and maintained
    #: in.  1 (the default) builds the classic monolithic
    #: :class:`~repro.core.engine.CorrelationEngine`; >= 2 makes the
    #: :func:`~repro.core.engine.engine` factory (and the serving
    #: facade) build a :class:`~repro.shard.ShardedEngine` whose rules
    #: are byte-identical to the monolithic ones (SON-style exact
    #: merge).
    shards: int = 1
    #: Workers for the concurrent phase-1 shard mines (``None`` =
    #: min(shards, cpu count)).  Only consulted when ``shards >= 2``.
    shard_workers: int | None = None
    #: Phase-1 executor: ``"thread"`` (default) or ``"process"`` —
    #: worker processes reading zero-copy shared-memory bitmap pages,
    #: escaping the GIL for true multi-core mining.  Process mode
    #: degrades to thread mode when the platform lacks shared memory
    #: or a worker pool cannot be started; answers are identical
    #: either way.  Only consulted when ``shards >= 2``.
    shard_executor: str = "thread"
    #: Bottom-k sample size of the approximate read tier
    #: (:mod:`repro.mining.sketch`): each item keeps the ``sketch_k``
    #: smallest tid hashes, giving estimate relative error around
    #: ``1/sqrt(sketch_k)``.  Sketches are built lazily on the first
    #: estimate read, so exact-only workloads pay nothing.
    sketch_k: int = 256

    def __post_init__(self) -> None:
        # Thresholds shares its validation; a bad fraction raises here.
        self.thresholds()
        if self.max_length is not None and self.max_length < 1:
            raise InvalidThresholdError(
                f"max_length must be >= 1 or None, got {self.max_length}")
        if self.max_log_events is not None and self.max_log_events < 1:
            raise InvalidThresholdError(
                f"max_log_events must be >= 1 or None, "
                f"got {self.max_log_events}")
        if not isinstance(self.shards, int) or self.shards < 1:
            raise InvalidThresholdError(
                f"shards must be an int >= 1, got {self.shards!r}")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise InvalidThresholdError(
                f"shard_workers must be >= 1 or None, "
                f"got {self.shard_workers}")
        if self.shard_executor not in SHARD_EXECUTORS:
            raise InvalidThresholdError(
                f"shard_executor must be one of "
                f"{', '.join(SHARD_EXECUTORS)}, got {self.shard_executor!r}")
        if not isinstance(self.sketch_k, int) or self.sketch_k < 8:
            raise InvalidThresholdError(
                f"sketch_k must be an int >= 8, got {self.sketch_k!r}")
        if self.counter not in COUNTER_STRATEGIES:
            raise MiningError(
                f"unknown counter strategy {self.counter!r}; choose from "
                f"{', '.join(COUNTER_STRATEGIES)}")

    def thresholds(self) -> Thresholds:
        """The engine-facing thresholds triple."""
        return Thresholds(self.min_support, self.min_confidence, self.margin)

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return _dataclass_replace(self, **changes)

    @classmethod
    def builder(cls) -> "EngineConfigBuilder":
        return EngineConfigBuilder()


class EngineConfigBuilder:
    """Fluent builder; every setter returns the builder itself."""

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}

    # -- required knobs --------------------------------------------------------

    def support(self, min_support: float) -> "EngineConfigBuilder":
        self._values["min_support"] = min_support
        return self

    def confidence(self, min_confidence: float) -> "EngineConfigBuilder":
        self._values["min_confidence"] = min_confidence
        return self

    # -- optional knobs --------------------------------------------------------

    def margin(self, margin: float) -> "EngineConfigBuilder":
        self._values["margin"] = margin
        return self

    def backend(self, name: str) -> "EngineConfigBuilder":
        self._values["backend"] = name
        return self

    def generalizer(self, generalizer: Any) -> "EngineConfigBuilder":
        self._values["generalizer"] = generalizer
        return self

    def max_length(self, max_length: int | None) -> "EngineConfigBuilder":
        self._values["max_length"] = max_length
        return self

    def counter(self, counter: str) -> "EngineConfigBuilder":
        self._values["counter"] = counter
        return self

    def track_candidates(self, enabled: bool = True) -> "EngineConfigBuilder":
        self._values["track_candidates"] = enabled
        return self

    def validate(self, enabled: bool = True) -> "EngineConfigBuilder":
        self._values["validate"] = enabled
        return self

    def max_log_events(self, bound: int | None) -> "EngineConfigBuilder":
        self._values["max_log_events"] = bound
        return self

    def shards(self, count: int) -> "EngineConfigBuilder":
        self._values["shards"] = count
        return self

    def shard_workers(self, workers: int | None) -> "EngineConfigBuilder":
        self._values["shard_workers"] = workers
        return self

    def shard_executor(self, executor: str) -> "EngineConfigBuilder":
        self._values["shard_executor"] = executor
        return self

    def sketch_k(self, k: int) -> "EngineConfigBuilder":
        self._values["sketch_k"] = k
        return self

    # -- terminal --------------------------------------------------------------

    def build(self) -> EngineConfig:
        missing = [name for name in ("min_support", "min_confidence")
                   if name not in self._values]
        if missing:
            raise InvalidThresholdError(
                "EngineConfig.builder() is missing required "
                f"{' and '.join(missing)} — call .support(...) / "
                ".confidence(...) before .build()")
        return EngineConfig(**self._values)

"""Deprecated kwargs facade over :class:`~repro.core.engine.CorrelationEngine`.

:class:`AnnotationRuleManager` was the original public entry point,
configured through a sprawl of keyword arguments.  The engine now takes
an immutable :class:`~repro.core.config.EngineConfig` (usually built
fluently — see :func:`repro.engine` and ``EngineConfig.builder()``);
this module keeps the old surface importable and fully functional, as a
thin subclass that translates kwargs to a config and warns.

Migration::

    AnnotationRuleManager(rel, min_support=0.2, min_confidence=0.6)
    # becomes
    repro.engine(rel, min_support=0.2, min_confidence=0.6)
    # or, spelled out
    CorrelationEngine(rel, EngineConfig.builder()
                           .support(0.2).confidence(0.6).build())

The kwarg-by-kwarg table lives in DESIGN.md.  ``RuleSignature`` and
``VerificationResult`` are re-exported here for callers that imported
them from this module.
"""

from __future__ import annotations

import warnings

from repro.core.config import EngineConfig
from repro.core.engine import (  # noqa: F401  (re-exported for back-compat)
    CorrelationEngine,
    RuleSignature,
    VerificationResult,
)
from repro.core.stats import DEFAULT_MARGIN
from repro.mining.backend import DEFAULT_BACKEND
from repro.relation.relation import AnnotatedRelation


class AnnotationRuleManager(CorrelationEngine):
    """Deprecated: construct via :func:`repro.engine` instead.

    Behaviour is identical to :class:`CorrelationEngine` — this class
    only adapts the legacy keyword-argument constructor.
    """

    def __init__(self,
                 relation: AnnotatedRelation | None = None,
                 *,
                 min_support: float,
                 min_confidence: float,
                 margin: float = DEFAULT_MARGIN,
                 generalizer=None,
                 max_length: int | None = None,
                 counter: str = "auto",
                 track_candidates: bool = True,
                 validate: bool = False,
                 backend: str = DEFAULT_BACKEND) -> None:
        warnings.warn(
            "AnnotationRuleManager is deprecated; use repro.engine(...) or "
            "CorrelationEngine with an EngineConfig (see DESIGN.md for the "
            "kwarg migration table)",
            DeprecationWarning, stacklevel=2)
        super().__init__(relation, EngineConfig(
            min_support=min_support,
            min_confidence=min_confidence,
            margin=margin,
            backend=backend,
            generalizer=generalizer,
            max_length=max_length,
            counter=counter,
            track_candidates=track_candidates,
            validate=validate,
        ))

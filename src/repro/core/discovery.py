"""Discovering new correlations after updates — the paper's Figure 13.

After a δ batch of annotations, the only itemsets whose counts changed
contain at least one added annotation (or generalization label), and the
database size is unchanged — so every itemset that newly crosses the
table floor contains a δ item.  :func:`discover_with_seeds` therefore
runs one seeded vertical search per distinct δ item: the annotation
frequency table gates the search ("the annotation must be a frequent
annotation by itself"), and all counting happens inside the seed's
tidset ("checking only the data tuples in the database having [the]
annotation") — never a full database scan.

:func:`complete_table` is the level-wise completion used after tuple
deletion, where a *shrinking* database can promote patterns whose counts
never changed; candidates are generated Apriori-style from the stored
levels and counted by index intersection.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.annotation_index import VerticalIndex
from repro.core.pattern_table import FrequentPatternTable
from repro.errors import MaintenanceError
from repro.mining.apriori import generate_candidates
from repro.mining.constraints import CandidateConstraint
from repro.mining.eclat import mine_containing
from repro.mining.itemsets import Itemset
from repro.mining.tables import level_partition


def discover_with_seeds(table: FrequentPatternTable,
                        index: VerticalIndex,
                        seeds: Iterable[int],
                        *,
                        min_count: int,
                        constraint: CandidateConstraint,
                        max_length: int | None = None,
                        validate: bool = False) -> list[Itemset]:
    """Add to ``table`` every admitted itemset containing a seed item
    whose exact count is at least ``min_count``.

    Returns the newly added itemsets.  With ``validate=True``, itemsets
    the seeded search finds that are *already* stored must carry the
    same count the table holds — a strong cross-check that the Figure-12
    refresh and the Figure-13 search agree.
    """
    added: list[Itemset] = []
    for seed in sorted(set(seeds)):
        # Annotation frequency gate (Fig. 13 step 1): an infrequent
        # annotation cannot head any frequent pattern.
        if index.frequency(seed) < min_count:
            continue
        mined = mine_containing(index.as_mapping(), seed,
                                min_count=min_count,
                                constraint=constraint,
                                max_length=max_length)
        for itemset, count in mined.items():
            stored = table.count(itemset)
            if stored is None:
                table.set_count(itemset, count)
                added.append(itemset)
            elif validate and stored != count:
                raise MaintenanceError(
                    f"maintenance drift on {itemset}: table says {stored}, "
                    f"index says {count}")
    return added


def complete_table(table: FrequentPatternTable,
                   index: VerticalIndex,
                   *,
                   floor: int,
                   constraint: CandidateConstraint,
                   max_length: int | None = None) -> list[Itemset]:
    """Add every admitted itemset with count >= ``floor`` missing from
    ``table`` (used when the database shrinks and thresholds loosen).

    Level-wise: any missing frequent itemset has all its admitted
    subsets frequent, so once level k-1 is complete, Apriori candidate
    generation over the stored level k-1 reaches it.  Counting is a
    tidset intersection per candidate — no database scan.
    """
    added: list[Itemset] = []
    for item in index.items():
        frequency = index.frequency(item)
        if frequency >= floor and constraint.admits_item(item) \
                and (item,) not in table:
            table.set_count((item,), frequency)
            added.append((item,))

    levels = level_partition(table.counts)
    length = 2
    while levels.get(length - 1) and (max_length is None
                                      or length <= max_length):
        fresh: set[Itemset] = set()
        for candidate in generate_candidates(levels[length - 1]):
            if candidate in table or not constraint.admits(candidate):
                continue
            count = index.count(candidate)
            if count >= floor:
                table.set_count(candidate, count)
                added.append(candidate)
                fresh.add(candidate)
        levels.setdefault(length, set()).update(fresh)
        length += 1
    return added

"""Thresholds and rule statistics.

Support and confidence are defined exactly as in the paper's section 2.2:
support is the fraction of tuples containing ``LHS ∪ RHS`` relative to
the database size; confidence is ``support(LHS ∪ RHS) / support(LHS)``.
Both the from-scratch miner and the incremental path convert fractional
thresholds to integer counts through the same helpers, so the
equivalence guarantees are never lost to floating-point drift.

The *margin* implements the paper's candidate-rule idea: "storing the
existing rules and candidate rules (rules slightly below the minimum
support and confidence requirements)".  The pattern table keeps every
itemset with support >= ``margin * min_support``; rules in the band
between the margined and the real thresholds live in the candidate
store, ready for cheap promotion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import meets_fraction, min_count_for, validate_fraction
from repro.errors import InvalidThresholdError
from repro.core.rules import AssociationRule

#: Default margin factor for the near-miss band.
DEFAULT_MARGIN = 0.75


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Minimum support / confidence with a near-miss margin."""

    min_support: float
    min_confidence: float
    margin: float = DEFAULT_MARGIN

    def __post_init__(self) -> None:
        validate_fraction(self.min_support, "min_support")
        validate_fraction(self.min_confidence, "min_confidence")
        validate_fraction(self.margin, "margin")
        if self.margin > 1.0:
            raise InvalidThresholdError(
                f"margin must be <= 1, got {self.margin}")

    @property
    def keep_support(self) -> float:
        """Support floor of the pattern table (margined)."""
        return self.min_support * self.margin

    @property
    def keep_confidence(self) -> float:
        """Confidence floor under which near-miss rules are discarded."""
        return self.min_confidence * self.margin

    def support_count(self, db_size: int) -> int:
        """Counts at or above this are *valid-rule* frequent."""
        return min_count_for(self.min_support, db_size)

    def keep_count(self, db_size: int) -> int:
        """Counts at or above this stay in the pattern table."""
        return min_count_for(self.keep_support, db_size)

    def meets_support(self, union_count: int, db_size: int) -> bool:
        return meets_fraction(union_count, db_size, self.min_support)

    def meets_confidence(self, union_count: int, lhs_count: int) -> bool:
        return meets_fraction(union_count, lhs_count, self.min_confidence)

    def is_valid(self, rule: AssociationRule) -> bool:
        """Does the rule satisfy both user thresholds?"""
        return (self.meets_support(rule.union_count, rule.db_size)
                and self.meets_confidence(rule.union_count, rule.lhs_count))

    def is_near_miss(self, rule: AssociationRule) -> bool:
        """Inside the margin band but failing at least one threshold."""
        if self.is_valid(rule):
            return False
        in_support_band = meets_fraction(rule.union_count, rule.db_size,
                                         self.keep_support)
        in_confidence_band = meets_fraction(rule.union_count, rule.lhs_count,
                                            self.keep_confidence)
        return in_support_band and in_confidence_band

    def with_margin(self, margin: float) -> "Thresholds":
        return Thresholds(self.min_support, self.min_confidence, margin)

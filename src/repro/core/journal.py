"""Write-ahead event journal: durable flushes, point-in-time recovery.

The paper's future work moves the incremental maintainer "into an
actual database management system"; a database that forgets its write
history on a crash is not one.  This module is the durability tier the
serving stack flushes through:

* :class:`EventJournal` — one append-only file of length-prefixed,
  CRC-checksummed JSON records.  Every record is written in a single
  ``write()`` + ``flush`` + ``fsync`` before the engine mutates, so an
  acknowledged flush survives any crash.  Opening a journal scans it
  and truncates a torn tail (a record cut short by a crash mid-append)
  — a *mid-file* checksum mismatch, which no crash can produce, is
  corruption and raises :class:`~repro.errors.FormatError` instead;
* :class:`JournalStore` — a journal plus its periodic compacted
  snapshots (persistence format v4) in one directory.  Snapshot writes
  are atomic (tmp + fsync + rename + directory fsync), so the store
  always holds at least one loadable base state;
* :func:`JournalStore.recover` — latest snapshot at-or-before the
  requested sequence + replay of the journal suffix through the
  delta-plan compiler.  ``upto`` gives point-in-time recovery to any
  journaled flush boundary still covered by a retained snapshot.

Replay mirrors the service's flush semantics exactly, including the
poison-event fallback: a batch whose plan compilation fails (provably
unmutated) replays per-event with the valid prefix applied, the poison
dropped, and the remainder *skipped* — live, that remainder was
re-queued and therefore appears again in a later journal record.

Crash injection hooks: both classes accept a ``fault_hook`` callable
invoked with a named fault point (``"journal.append"``,
``"snapshot.written"``, ``"snapshot.renamed"``, ``"compact.trim"``).
A hook may raise to simulate a crash at that point; for
``"journal.append"`` it may instead return a byte budget, in which
case only that many bytes of the record are written (and flushed)
before :class:`CrashInjected` is raised — a genuinely torn tail on
disk, exactly what a power cut mid-``write`` leaves behind.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.engine import CorrelationEngine
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.errors import FormatError, MaintenanceError

#: File magic: identifies a journal and its record format revision.
MAGIC = b"RPJRNL1\n"
#: Per-record header: payload length + CRC32 of the payload, both LE.
_HEADER = struct.Struct("<II")
#: Snapshot files are ``snapshot-<zero-padded seq>.json``.
_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{10})\.json$")
WAL_NAME = "events.wal"

#: Named fault points a crash-injection hook is called at.
FAULT_POINTS = ("journal.append", "snapshot.written",
                "snapshot.renamed", "compact.trim")

FaultHook = Callable[[str], int | None]


class CrashInjected(RuntimeError):
    """Raised by the crash-injection plumbing, never by real operation.

    Tests install a ``fault_hook`` that raises this (or returns a byte
    budget for a torn ``journal.append``); production code never sees
    it.
    """


# -- event codec ---------------------------------------------------------------
#
# The journal trusts its own records (they were encoded here), so this
# codec's decode side raises FormatError — corruption, not user input.
# The wire ``type`` names intentionally match the server's public event
# codec (repro.server.tenants.event_from_json) so journal dumps and
# HTTP payloads read the same.

def event_to_json(event: UpdateEvent) -> dict:
    """One update event as a deterministic JSON-able dict."""
    if isinstance(event, AddAnnotatedTuples):
        return {"type": "add_annotated_tuples",
                "rows": [[list(values), sorted(annotations)]
                         for values, annotations in event.rows]}
    if isinstance(event, AddUnannotatedTuples):
        return {"type": "add_unannotated_tuples",
                "rows": [list(values) for values in event.rows]}
    if isinstance(event, AddAnnotations):
        return {"type": "add_annotations",
                "additions": [[tid, annotation]
                              for tid, annotation in event.additions]}
    if isinstance(event, RemoveAnnotations):
        return {"type": "remove_annotations",
                "removals": [[tid, annotation]
                             for tid, annotation in event.removals]}
    if isinstance(event, RemoveTuples):
        return {"type": "remove_tuples", "tids": list(event.tids)}
    raise MaintenanceError(f"cannot journal unknown event {event!r}")


def event_from_json(obj: object) -> UpdateEvent:
    """Decode one journaled event; corruption raises FormatError."""
    if not isinstance(obj, dict):
        raise FormatError(f"journaled event must be an object, "
                          f"got {type(obj).__name__}")
    kind = obj.get("type")
    try:
        if kind == "add_annotated_tuples":
            return AddAnnotatedTuples.build(
                (values, annotations)
                for values, annotations in obj["rows"])
        if kind == "add_unannotated_tuples":
            return AddUnannotatedTuples.build(obj["rows"])
        if kind == "add_annotations":
            return AddAnnotations.build(
                (tid, annotation) for tid, annotation in obj["additions"])
        if kind == "remove_annotations":
            return RemoveAnnotations.build(
                (tid, annotation) for tid, annotation in obj["removals"])
        if kind == "remove_tuples":
            return RemoveTuples.build(obj["tids"])
    except (KeyError, TypeError, ValueError, MaintenanceError) as error:
        raise FormatError(
            f"corrupt journaled {kind!r} event: {error}") from None
    raise FormatError(f"unknown journaled event type {kind!r}")


# -- records -------------------------------------------------------------------

@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    #: ``"batch"`` (a flushed event batch) or ``"mine"`` (a full
    #: re-mine boundary — replay runs ``engine.mine()``).
    kind: str
    events: tuple[UpdateEvent, ...] = ()
    #: Byte offset of the record header in the journal file.
    offset: int = 0


@dataclass(frozen=True)
class JournalScan:
    """Result of scanning a journal file."""

    records: tuple[JournalRecord, ...]
    #: Bytes up to and including the last valid record.
    valid_bytes: int
    #: Bytes past ``valid_bytes`` that form a torn (incomplete) tail.
    torn_bytes: int


def _decode_payload(payload: bytes, offset: int,
                    previous_seq: int | None) -> JournalRecord:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FormatError(f"journal record at byte {offset} is not "
                          f"valid JSON: {error}") from None
    if not isinstance(doc, dict):
        raise FormatError(f"journal record at byte {offset} is not "
                          f"an object")
    seq = doc.get("seq")
    kind = doc.get("kind")
    if not isinstance(seq, int) or seq < 1:
        raise FormatError(f"journal record at byte {offset} has "
                          f"invalid seq {seq!r}")
    if previous_seq is not None and seq != previous_seq + 1:
        raise FormatError(
            f"journal sequence break at byte {offset}: record {seq} "
            f"follows {previous_seq}")
    if kind == "batch":
        events = tuple(event_from_json(entry)
                       for entry in doc.get("events", ()))
        if not events:
            raise FormatError(f"journal batch record {seq} carries "
                              f"no events")
        return JournalRecord(seq=seq, kind="batch", events=events,
                             offset=offset)
    if kind == "mine":
        return JournalRecord(seq=seq, kind="mine", offset=offset)
    raise FormatError(f"journal record {seq} has unknown kind {kind!r}")


def scan_journal(path: str | os.PathLike, *,
                 start_seq: int | None = None) -> JournalScan:
    """Scan a journal file, validating every record.

    A tail that stops mid-record (header or payload cut short, or a
    checksum/parse failure on the *final* record — what a crash during
    append leaves) is reported as ``torn_bytes``, not an error.  The
    same damage anywhere *before* the final record cannot be produced
    by an append crash and raises :class:`FormatError`.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(MAGIC):
        if MAGIC.startswith(blob):
            # A crash while writing the magic of a brand-new journal:
            # nothing was ever appended, the whole file is a torn tail.
            return JournalScan(records=(), valid_bytes=0,
                               torn_bytes=len(blob))
        raise FormatError(
            f"{os.fspath(path)!r} is not an event journal "
            f"(bad magic {blob[:8]!r})")
    records: list[JournalRecord] = []
    offset = len(MAGIC)
    previous = None if start_seq is None else start_seq
    size = len(blob)

    def torn() -> JournalScan:
        return JournalScan(records=tuple(records), valid_bytes=offset,
                           torn_bytes=size - offset)

    while offset < size:
        if size - offset < _HEADER.size:
            return torn()
        length, crc = _HEADER.unpack_from(blob, offset)
        end = offset + _HEADER.size + length
        if end > size:
            return torn()
        payload = blob[offset + _HEADER.size:end]
        at_tail = end == size
        if zlib.crc32(payload) != crc:
            if at_tail:
                return torn()
            raise FormatError(
                f"journal checksum mismatch at byte {offset} with "
                f"{size - end} valid bytes following — file corrupted")
        try:
            record = _decode_payload(payload, offset, previous)
        except FormatError:
            if at_tail:
                # The checksum matched but the content does not parse
                # or continue the sequence: on the final record this is
                # still recoverable-by-truncation (e.g. a torn write
                # that happened to checksum), so prefer recovery.
                return torn()
            raise
        records.append(record)
        previous = record.seq
        offset = end
    return JournalScan(records=tuple(records), valid_bytes=offset,
                       torn_bytes=0)


# -- the journal file ----------------------------------------------------------

class EventJournal:
    """Append-only, checksummed, fsync'd journal of update batches."""

    def __init__(self, path: str | os.PathLike, *,
                 fsync: bool = True,
                 fault_hook: FaultHook | None = None) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self.fault_hook = fault_hook
        #: Bytes of torn tail truncated when the journal was opened.
        self.truncated_bytes = 0
        if os.path.exists(self.path):
            scan = scan_journal(self.path)
            if scan.torn_bytes:
                with open(self.path, "rb+") as handle:
                    handle.truncate(scan.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.truncated_bytes = scan.torn_bytes
            self._last_seq = (scan.records[-1].seq
                              if scan.records else 0)
            #: Seq of the record before the first on-disk one — the
            #: compaction floor (records below it were trimmed).
            self._floor_seq = (scan.records[0].seq - 1
                               if scan.records else self._last_seq)
            self._handle = open(self.path, "ab")
            if scan.valid_bytes == 0:
                self._handle.write(MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
        else:
            self._last_seq = 0
            self._floor_seq = 0
            self._handle = open(self.path, "ab")
            self._handle.write(MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._dirty = False

    # -- write side ------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 = none)."""
        return self._last_seq

    @property
    def floor_seq(self) -> int:
        """Records with seq <= this were compacted out of the file."""
        return self._floor_seq

    def advance_to(self, seq: int) -> None:
        """Move an empty journal's sequence floor forward.

        A compaction can trim *every* record (they are all covered by
        the retained snapshot), after which the file itself carries no
        sequence state — the store re-anchors the counter here from
        its newest snapshot so appends continue the global sequence
        instead of restarting at 1.
        """
        if seq <= self._last_seq:
            return
        if self._last_seq != self._floor_seq:
            raise FormatError(
                f"cannot advance journal {self.path!r} to seq {seq}: "
                f"it still holds records up to {self._last_seq}")
        self._last_seq = seq
        self._floor_seq = seq

    def append_batch(self, events: Sequence[UpdateEvent]) -> int:
        """Durably append one flush batch; returns its sequence."""
        if not events:
            raise MaintenanceError("cannot journal an empty batch")
        return self._append({
            "seq": self._last_seq + 1,
            "kind": "batch",
            "events": [event_to_json(event) for event in events],
        })

    def append_mine(self) -> int:
        """Durably append a re-mine boundary; returns its sequence."""
        return self._append({"seq": self._last_seq + 1, "kind": "mine"})

    def _append(self, document: dict) -> int:
        payload = json.dumps(document, separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
        blob = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        budget = self._fault("journal.append")
        if budget is not None and budget < len(blob):
            # Simulate a crash mid-write: persist a genuinely torn
            # record, then die.  The partial bytes are flushed so the
            # tear is really on disk for the re-open to truncate.
            self._handle.write(blob[:budget])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise CrashInjected(
                f"torn journal append: {budget} of {len(blob)} bytes")
        self._handle.write(blob)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
            self._dirty = False
        else:
            self._dirty = True
        self._last_seq = document["seq"]
        return self._last_seq

    def sync(self) -> None:
        """Force every appended record onto disk (no-op when clean).

        This is the :attr:`~repro.core.events.EventLog.ensure_durable`
        hook target: a bounded in-memory log about to rotate an event
        out calls here first, so nothing leaves memory before it is on
        disk.
        """
        if self._dirty:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._dirty = False

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()

    # -- read side -------------------------------------------------------------

    def records(self, *, after: int = 0,
                tolerate_torn_tail: bool = False
                ) -> Iterator[JournalRecord]:
        """Records with ``seq > after``, re-read from disk.

        ``tolerate_torn_tail=True`` stops silently at an incomplete
        tail instead of raising — for readers racing a live appender
        (the online-rebalance catch-up loop), where a half-written
        final record is an in-flight append, not damage.
        """
        self.sync()
        scan = scan_journal(self.path)
        if scan.torn_bytes and not tolerate_torn_tail:
            raise FormatError(
                f"journal {self.path!r} has a {scan.torn_bytes}-byte "
                f"torn tail — reopen it to truncate and recover")
        for record in scan.records:
            if record.seq > after:
                yield record

    # -- plumbing --------------------------------------------------------------

    def _fault(self, point: str) -> int | None:
        if self.fault_hook is not None:
            return self.fault_hook(point)
        return None


# -- replay --------------------------------------------------------------------

@dataclass
class ReplayStats:
    """What a replay pass did."""

    records: int = 0
    events: int = 0
    mines: int = 0
    #: Batch records that hit the poison-event fallback during replay.
    poisoned: int = 0


def replay_into(engine: CorrelationEngine,
                records: Iterable[JournalRecord]) -> ReplayStats:
    """Apply journal records to ``engine``, mirroring flush semantics.

    Each batch record goes through the delta-plan compiler
    (``apply_batch``); a compile-rejected batch (provably unmutated)
    falls back to per-event application with the poison event dropped
    and the remainder skipped — live, that remainder was re-queued and
    shows up in a later record, so skipping it here is what keeps
    replay equivalent.  A failure that mutated mid-batch is repaired
    the way the live system's version guard forces: a full re-mine
    (the live operator had to ``mine()`` before further updates too,
    which journaled a ``mine`` record).
    """
    stats = ReplayStats()
    for record in records:
        stats.records += 1
        if record.kind == "mine":
            engine.mine()
            stats.mines += 1
            continue
        stats.events += len(record.events)
        version_before = engine.relation.version
        try:
            engine.apply_batch(list(record.events))
        except Exception:
            if engine.relation.version != version_before:
                engine.mine()
                stats.poisoned += 1
                continue
            stats.poisoned += 1
            for event in record.events:
                try:
                    engine.apply(event)
                except Exception:
                    break  # poison dropped; remainder was re-queued live
    return stats


# -- the store: journal + snapshots --------------------------------------------

@dataclass
class RecoveryResult:
    """Outcome of :meth:`JournalStore.recover`."""

    engine: CorrelationEngine
    #: Seq of the snapshot the recovery started from.
    snapshot_seq: int
    #: Seq of the last record replayed (== snapshot_seq when none).
    last_seq: int
    replay: ReplayStats = field(default_factory=ReplayStats)
    #: Torn-tail bytes truncated when the journal was opened.
    truncated_bytes: int = 0


class JournalStore:
    """One session's durability directory: ``events.wal`` + snapshots.

    Layout::

        <directory>/events.wal          append-only journal
        <directory>/snapshot-NNNNNNNNNN.json   state at journal seq N

    The store is created with a *base* snapshot (seq = the journal's
    current tail, usually 0) the first time an engine attaches, so
    every recovery has a floor to replay from.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 fsync: bool = True,
                 snapshot_every: int | None = None,
                 fault_hook: FaultHook | None = None) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise MaintenanceError(
                f"snapshot_every must be >= 1 or None, "
                f"got {snapshot_every}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.fault_hook = fault_hook
        self.journal = EventJournal(
            os.path.join(self.directory, WAL_NAME),
            fsync=fsync, fault_hook=fault_hook)
        self._align_journal()

    def _align_journal(self) -> None:
        """Re-anchor the journal sequence from the newest snapshot.

        A fully-trimmed journal (compaction retained no records) holds
        no sequence state of its own; without this, reopening it would
        restart appends at seq 1 and collide with compacted history.
        A *non-empty* journal whose tail is still behind the newest
        snapshot means acknowledged records were lost (only possible
        with ``fsync=False``) — refuse rather than reuse sequences.
        """
        snapshots = self.snapshots()
        if not snapshots:
            return
        newest = snapshots[-1][0]
        if newest <= self.journal.last_seq:
            return
        if self.journal.last_seq != self.journal.floor_seq:
            raise FormatError(
                f"journal store {self.directory!r} is inconsistent: "
                f"snapshot-{newest:010d}.json is newer than the "
                f"journal tail (seq {self.journal.last_seq}) — "
                f"journaled records were lost")
        self.journal.advance_to(newest)

    # -- journal pass-through --------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self.journal.last_seq

    def append_batch(self, events: Sequence[UpdateEvent]) -> int:
        return self.journal.append_batch(events)

    def append_mine(self) -> int:
        return self.journal.append_mine()

    def records(self, *, after: int = 0,
                tolerate_torn_tail: bool = False
                ) -> Iterator[JournalRecord]:
        return self.journal.records(after=after,
                                    tolerate_torn_tail=tolerate_torn_tail)

    def sync(self) -> None:
        self.journal.sync()

    def close(self) -> None:
        self.journal.close()

    # -- snapshots -------------------------------------------------------------

    def snapshot_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"snapshot-{seq:010d}.json")

    def snapshots(self) -> list[tuple[int, str]]:
        """``(seq, path)`` of every snapshot file, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_NAME.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, name)))
        return sorted(found)

    @property
    def has_snapshot(self) -> bool:
        return bool(self.snapshots())

    def write_snapshot(self, engine: CorrelationEngine, seq: int) -> str:
        """Atomically persist the engine's state as of journal ``seq``.

        tmp-write + fsync + rename + directory fsync: a crash at any
        point leaves either no snapshot (a stale ``.tmp`` is ignored
        by :meth:`snapshots`) or the complete one — never a torn file.
        """
        from repro.core import persistence  # local: persistence imports shard

        path = self.snapshot_path(seq)
        tmp = path + ".tmp"
        document = persistence.snapshot(engine, journal_seq=seq)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        self._fault("snapshot.written")
        os.replace(tmp, path)
        self._fault("snapshot.renamed")
        self._sync_directory()
        return path

    def ensure_base_snapshot(self, engine: CorrelationEngine) -> bool:
        """Write the initial snapshot if the store has none yet."""
        if self.has_snapshot:
            return False
        self.write_snapshot(engine, self.journal.last_seq)
        return True

    def maybe_snapshot(self, engine: CorrelationEngine,
                       seq: int) -> bool:
        """Periodic compaction point: snapshot once ``snapshot_every``
        records accumulated past the newest snapshot."""
        if self.snapshot_every is None:
            return False
        snapshots = self.snapshots()
        newest = snapshots[-1][0] if snapshots else 0
        if seq - newest < self.snapshot_every:
            return False
        self.write_snapshot(engine, seq)
        return True

    def compact(self, engine: CorrelationEngine, seq: int, *,
                keep_snapshots: int = 2) -> int:
        """Snapshot at ``seq``, prune old snapshots, trim the journal.

        Keeps the newest ``keep_snapshots`` snapshot files and every
        journal record newer than the *oldest retained* snapshot — so
        point-in-time recovery still reaches any seq at or above that
        floor.  Returns the number of journal records trimmed.

        Order matters for crash safety: the new snapshot lands first
        (atomic), snapshot pruning is per-file atomic, and the journal
        rewrite is tmp + rename — a crash between any two steps leaves
        a recoverable store, at worst with extra history.
        """
        if keep_snapshots < 1:
            raise MaintenanceError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.write_snapshot(engine, seq)
        snapshots = self.snapshots()
        for old_seq, path in snapshots[:-keep_snapshots]:
            os.remove(path)
        floor = self.snapshots()[0][0]
        retained = [record for record
                    in self.records(tolerate_torn_tail=True)
                    if record.seq > floor]
        trimmed = ((self.journal.last_seq - self.journal.floor_seq)
                   - len(retained))
        if trimmed <= 0:
            return 0
        self._rewrite_journal(retained)
        return trimmed

    def _rewrite_journal(self, records: list[JournalRecord]) -> None:
        tmp = self.journal.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            for record in records:
                document: dict = {"seq": record.seq, "kind": record.kind}
                if record.kind == "batch":
                    document["events"] = [event_to_json(event)
                                          for event in record.events]
                payload = json.dumps(document, separators=(",", ":"),
                                     sort_keys=True).encode("utf-8")
                handle.write(_HEADER.pack(len(payload),
                                          zlib.crc32(payload)) + payload)
            handle.flush()
            os.fsync(handle.fileno())
        self._fault("compact.trim")
        self.journal.close()
        os.replace(tmp, self.journal.path)
        self._sync_directory()
        self.journal = EventJournal(self.journal.path,
                                    fsync=self.journal._fsync,
                                    fault_hook=self.fault_hook)
        self._align_journal()

    # -- recovery --------------------------------------------------------------

    def recover(self, *, upto: int | None = None,
                generalizer=None) -> RecoveryResult:
        """Rebuild an engine: newest usable snapshot + journal replay.

        ``upto`` recovers the state as of journal sequence ``upto``
        (point-in-time); the default replays everything durable.  The
        snapshot chosen is the newest with seq <= the target; if it
        fails to load (bit rot — the write path can't tear one), older
        snapshots are tried before giving up.
        """
        from repro.core import persistence  # local: persistence imports shard

        # Re-scan by reopening: truncates any torn tail first.
        fsync = self.journal._fsync
        self.journal.close()
        self.journal = EventJournal(
            self.journal.path, fsync=fsync, fault_hook=self.fault_hook)
        self._align_journal()
        truncated = self.journal.truncated_bytes

        target = self.journal.last_seq if upto is None else upto
        if upto is not None and upto < self.journal.floor_seq:
            raise FormatError(
                f"cannot recover to seq {upto}: journal records at or "
                f"below {self.journal.floor_seq} were compacted away")
        candidates = [(seq, path) for seq, path in self.snapshots()
                      if seq <= target]
        if not candidates:
            raise FormatError(
                f"journal store {self.directory!r} has no snapshot at "
                f"or before seq {target} — nothing to recover from")
        errors: list[str] = []
        for seq, path in reversed(candidates):
            try:
                with open(path, encoding="utf-8") as handle:
                    document = json.load(handle)
                saved_seq = snapshot_journal_seq(document)
                if saved_seq is not None and saved_seq != seq:
                    raise FormatError(
                        f"snapshot {path!r} claims journal seq "
                        f"{saved_seq}, filename says {seq}")
                engine = persistence.restore(document,
                                             generalizer=generalizer)
            except (OSError, ValueError, FormatError) as error:
                errors.append(f"{os.path.basename(path)}: {error}")
                continue
            records = [record for record in self.records()
                       if seq < record.seq <= target]
            stats = replay_into(engine, records)
            return RecoveryResult(
                engine=engine, snapshot_seq=seq,
                last_seq=records[-1].seq if records else seq,
                replay=stats, truncated_bytes=truncated)
        raise FormatError(
            f"no snapshot in {self.directory!r} restores cleanly: "
            f"{'; '.join(errors)}")

    def status(self) -> dict:
        """Operational summary (CLI ``journal`` and tenant status)."""
        snapshots = self.snapshots()
        return {
            "directory": self.directory,
            "last_seq": self.journal.last_seq,
            "floor_seq": self.journal.floor_seq,
            "snapshots": [seq for seq, _path in snapshots],
            "truncated_bytes": self.journal.truncated_bytes,
        }

    # -- plumbing --------------------------------------------------------------

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _sync_directory(self) -> None:
        # Directory fsync makes the rename itself durable; some
        # platforms refuse O_RDONLY directory fds — best effort there.
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover — platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover — platform-dependent
            pass
        finally:
            os.close(fd)


def snapshot_journal_seq(document: dict) -> int | None:
    """The journal sequence a v4 snapshot was taken at (None if the
    document predates format v4 or was saved outside a store)."""
    journal = document.get("journal")
    if journal is None:
        return None
    seq = journal.get("seq") if isinstance(journal, dict) else None
    if not isinstance(seq, int) or seq < 0:
        raise FormatError(
            f"snapshot journal key is malformed: {journal!r}")
    return seq


__all__ = [
    "CrashInjected",
    "EventJournal",
    "FAULT_POINTS",
    "JournalRecord",
    "JournalScan",
    "JournalStore",
    "RecoveryResult",
    "ReplayStats",
    "WAL_NAME",
    "event_from_json",
    "event_to_json",
    "replay_into",
    "scan_journal",
    "snapshot_journal_seq",
]

"""The correlation engine — the library's central lifecycle object.

:class:`CorrelationEngine` owns an annotated relation together with all
maintained state the paper describes: the transaction encoding, the
annotation (vertical) index and frequency table, the frequent-pattern
table, the valid rule set, and the near-miss candidate store.  It
exposes exactly the lifecycle of the paper's application:

* :meth:`mine` — the initial, from-scratch pass, run by whichever
  :class:`~repro.mining.backend.MiningBackend` the config selects;
* :meth:`apply` — route an update event (the paper's three cases plus
  the deletion extensions) through the incremental algorithms of
  Figures 12 and 13;
* :meth:`rules` / :meth:`rules_of_kind` — the current correlations;
* :meth:`signature` — a vocabulary-independent snapshot used by every
  equivalence check against full re-mining.

Construction goes through :class:`~repro.core.config.EngineConfig`
(usually via :func:`engine` or ``EngineConfig.builder()``); the legacy
kwargs surface survives as the deprecated
:class:`~repro.core.manager.AnnotationRuleManager` shim.

All mutation must flow through the engine (or a relation it has not
yet adopted): it records the relation's version counter and refuses to
proceed if the relation changed behind its back, because incremental
maintenance over unseen mutations would silently desynchronize counts.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.core.annotation_index import VerticalIndex
from repro.core.candidate_store import CandidateRuleStore
from repro.core.config import EngineConfig
from repro.core.derive import derive_rules
from repro.core.discovery import complete_table, discover_with_seeds
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    EventLog,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.core.maintenance import (
    MaintenanceReport,
    TupleDelta,
    decay_for_deleted_tuples,
    decay_for_removed_items,
    refresh_for_added_items,
)
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.errors import MaintenanceError
from repro.mining.backend import MiningBackend, get_backend
from repro.mining.constraints import CombinedRelevanceConstraint
from repro.mining.itemsets import ItemVocabulary, TransactionDatabase
from repro.relation.relation import AnnotatedRelation
from repro.relation.transactions import encode_tuple

#: Vocabulary-independent fingerprint of one rule (used across engines).
RuleSignature = tuple[str, tuple[str, ...], str, int, int, int]


def engine(relation: AnnotatedRelation | None = None,
           config: EngineConfig | None = None,
           **overrides) -> "CorrelationEngine":
    """Build a :class:`CorrelationEngine` — the one-call public entry.

    ``overrides`` are :class:`EngineConfig` fields; they either build a
    config from scratch (``repro.engine(rel, min_support=0.2,
    min_confidence=0.6, backend="eclat")``) or refine a given one.
    """
    return CorrelationEngine(relation, config, **overrides)


class CorrelationEngine:
    """Discovers and incrementally maintains annotation correlations."""

    def __init__(self,
                 relation: AnnotatedRelation | None = None,
                 config: EngineConfig | None = None,
                 **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.relation = relation if relation is not None else AnnotatedRelation()
        self.config = config
        self.thresholds = config.thresholds()
        self._backend: MiningBackend = get_backend(config.backend)

        self.vocabulary = ItemVocabulary()
        self.database = TransactionDatabase(self.vocabulary)
        self.index = VerticalIndex(self.vocabulary)
        self.table = FrequentPatternTable(self.vocabulary)
        self.constraint = CombinedRelevanceConstraint(self.vocabulary)
        self.candidates = CandidateRuleStore(enabled=config.track_candidates)
        self.log = EventLog()
        self._rules = RuleSet()
        self._mined = False
        self._relation_version = -1

    # -- properties ----------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Registry name of the mining backend in use."""
        return self._backend.name

    @property
    def generalizer(self):
        return self.config.generalizer

    @property
    def max_length(self) -> int | None:
        return self.config.max_length

    @property
    def counter(self) -> str:
        return self.config.counter

    def _counting_index(self) -> VerticalIndex | None:
        """The index, when maintenance should recount via bitmaps.

        With ``counter="vertical"`` the Figure-12 refresh/decay paths
        recount the touched patterns by bitmap-tidset intersection
        instead of adjusting counts tuple by tuple.
        """
        return self.index if self.config.counter == "vertical" else None

    @property
    def validate(self) -> bool:
        return self.config.validate

    @property
    def db_size(self) -> int:
        """|DB| — the support denominator (live tuples)."""
        return self.relation.live_count

    @property
    def rules(self) -> RuleSet:
        self._require_mined()
        return self._rules

    def rules_of_kind(self, kind: RuleKind) -> list[AssociationRule]:
        return self.rules.of_kind(kind)

    @property
    def is_mined(self) -> bool:
        return self._mined

    # -- initial mining --------------------------------------------------------

    def mine(self) -> MaintenanceReport:
        """From-scratch pass: encode, apply generalizations, run the
        backend's constrained miner at the margined floor, derive rules."""
        started = time.perf_counter()
        if self.generalizer is not None:
            for row in self.relation:
                self.relation.set_labels(
                    row.tid, self.generalizer.labels_for(row.annotation_ids))

        self.database = TransactionDatabase(self.vocabulary)
        self.index = VerticalIndex(self.vocabulary)
        for tid in range(self.relation.tid_range):
            if self.relation.is_live(tid):
                transaction = encode_tuple(self.relation, tid, self.vocabulary)
            else:
                transaction = frozenset()
            self.database.add(transaction)
            self.index.add_transaction(tid, transaction)

        counts = self._backend.mine_initial(
            self.database.transactions,
            min_count=self.thresholds.keep_count(self.db_size),
            constraint=self.constraint,
            counter=self.counter,
            max_length=self.max_length,
        )
        self.table.replace(counts)
        self._mined = True
        self._relation_version = self.relation.version

        report = MaintenanceReport(event="mine", db_size=self.db_size)
        self._refresh_rules(report)
        report.duration_seconds = time.perf_counter() - started
        self._finish(report)
        return report

    # -- convenience wrappers ---------------------------------------------------

    def insert_annotated(self, rows: Iterable[tuple[Sequence[str],
                                                    Iterable[str]]]
                         ) -> MaintenanceReport:
        return self.apply(AddAnnotatedTuples.build(rows))

    def insert_unannotated(self, rows: Iterable[Sequence[str]]
                           ) -> MaintenanceReport:
        return self.apply(AddUnannotatedTuples.build(rows))

    def add_annotations(self, additions: Iterable[tuple[int, str]]
                        ) -> MaintenanceReport:
        return self.apply(AddAnnotations.build(additions))

    def remove_annotations(self, removals: Iterable[tuple[int, str]]
                           ) -> MaintenanceReport:
        return self.apply(RemoveAnnotations.build(removals))

    def remove_tuples(self, tids: Iterable[int]) -> MaintenanceReport:
        return self.apply(RemoveTuples.build(tids))

    # -- event routing ---------------------------------------------------------

    def apply(self, event: UpdateEvent) -> MaintenanceReport:
        """Route an update through the matching incremental algorithm."""
        self._require_mined()
        if self.relation.version != self._relation_version:
            raise MaintenanceError(
                "relation was modified outside the engine; incremental "
                "state is stale — re-run mine()")
        started = time.perf_counter()
        if isinstance(event, AddAnnotatedTuples):
            report = self._apply_inserts(event.rows, "add-annotated-tuples")
        elif isinstance(event, AddUnannotatedTuples):
            rows = tuple((values, frozenset()) for values in event.rows)
            report = self._apply_inserts(rows, "add-unannotated-tuples")
        elif isinstance(event, AddAnnotations):
            report = self._apply_annotations(event)
        elif isinstance(event, RemoveAnnotations):
            report = self._apply_annotation_removal(event)
        elif isinstance(event, RemoveTuples):
            report = self._apply_tuple_removal(event)
        else:
            raise MaintenanceError(f"unknown update event {event!r}")
        self._refresh_rules(report)
        report.duration_seconds = time.perf_counter() - started
        self.log.record(event)
        self._relation_version = self.relation.version
        self._finish(report)
        return report

    # -- Cases 1 and 2: tuple inserts (backend increment path) ------------------

    def _apply_inserts(self,
                       rows: Sequence[tuple[Sequence[str], frozenset[str]]],
                       label: str) -> MaintenanceReport:
        increment = []
        for values, annotation_ids in rows:
            tid = self.relation.insert(values, annotation_ids)
            if self.generalizer is not None:
                self.relation.set_labels(
                    tid, self.generalizer.labels_for(frozenset(annotation_ids)))
            transaction = encode_tuple(self.relation, tid, self.vocabulary)
            db_tid = self.database.add(transaction)
            if db_tid != tid:
                raise MaintenanceError(
                    f"tid drift: relation says {tid}, database says {db_tid}")
            self.index.add_transaction(tid, transaction)
            increment.append(transaction)

        fup_report = self._backend.apply_increment(
            self.table.counts,
            increment,
            index=self.index.as_mapping(),
            new_size=self.db_size,
            keep_fraction=self.thresholds.keep_support,
            constraint=self.constraint,
            max_length=self.max_length,
            counter=self.counter,
        )
        report = MaintenanceReport(event=label, db_size=self.db_size)
        report.patterns_touched = fup_report.refreshed
        report.patterns_added = fup_report.added
        report.patterns_pruned = fup_report.pruned
        report.tuples_scanned = len(increment)
        return report

    # -- Case 3: the δ batch of new annotations ---------------------------------

    def _apply_annotations(self, event: AddAnnotations) -> MaintenanceReport:
        deltas: list[TupleDelta] = []
        seeds: set[int] = set()
        for tid, annotation_ids in event.by_tid().items():
            new_items = set()
            for annotation_id in annotation_ids:
                if self.relation.annotate(tid, annotation_id):
                    new_items.add(
                        self.vocabulary.intern_annotation(annotation_id))
            if self.generalizer is not None:
                row = self.relation.tuple(tid)
                fresh_labels = self.relation.add_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
                new_items |= {self.vocabulary.intern_label(label)
                              for label in fresh_labels}
            if not new_items:
                continue  # every annotation was already present
            self.database.extend_transaction(tid, new_items)
            self.index.extend_transaction(tid, new_items)
            deltas.append(TupleDelta(
                tid=tid,
                after=self.database.transaction(tid),
                changed_items=frozenset(new_items)))
            seeds |= new_items

        report = MaintenanceReport(event="add-annotations",
                                   db_size=self.db_size)
        report.tuples_scanned = len(deltas)
        # Figure 12: refresh stored patterns, touching only δ tuples.
        report.patterns_touched = refresh_for_added_items(
            self.table, deltas, index=self._counting_index())
        # Figure 13: seeded discovery through the annotation index.
        report.patterns_added = discover_with_seeds(
            self.table, self.index, seeds,
            min_count=self.thresholds.keep_count(self.db_size),
            constraint=self.constraint,
            max_length=self.max_length,
            validate=self.validate,
        )
        return report

    # -- extensions: removals ----------------------------------------------------

    def _apply_annotation_removal(self, event: RemoveAnnotations
                                  ) -> MaintenanceReport:
        deltas: list[TupleDelta] = []
        for tid, annotation_ids in event.by_tid().items():
            before = self.database.transaction(tid)
            removed_items = set()
            for annotation_id in annotation_ids:
                if self.relation.detach(tid, annotation_id):
                    removed_items.add(
                        self.vocabulary.intern_annotation(annotation_id))
            if self.generalizer is not None:
                row = self.relation.tuple(tid)
                kept_labels = self.generalizer.labels_for(row.annotation_ids)
                lost_labels = row.labels - set(kept_labels)
                if lost_labels:
                    self.relation.set_labels(tid, kept_labels)
                    removed_items |= {self.vocabulary.intern_label(label)
                                      for label in lost_labels}
            if not removed_items:
                continue
            self.database.shrink_transaction(tid, removed_items)
            self.index.shrink_transaction(tid, removed_items)
            deltas.append(TupleDelta(
                tid=tid, after=before,
                changed_items=frozenset(removed_items)))

        report = MaintenanceReport(event="remove-annotations",
                                   db_size=self.db_size)
        report.tuples_scanned = len(deltas)
        report.patterns_touched = decay_for_removed_items(
            self.table, deltas, index=self._counting_index())
        # Counts only fell and |DB| is unchanged: nothing new can appear.
        report.patterns_pruned = self.table.prune_below(
            self.thresholds.keep_count(self.db_size))
        return report

    def _apply_tuple_removal(self, event: RemoveTuples) -> MaintenanceReport:
        old_transactions = []
        for tid in event.tids:
            self.relation.delete(tid)
            old = self.database.clear_transaction(tid)
            self.index.remove_transaction(tid, old)
            old_transactions.append(old)

        report = MaintenanceReport(event="remove-tuples",
                                   db_size=self.db_size)
        report.tuples_scanned = len(old_transactions)
        report.patterns_touched = decay_for_deleted_tuples(
            self.table, old_transactions, index=self._counting_index())
        floor = self.thresholds.keep_count(self.db_size)
        report.patterns_pruned = self.table.prune_below(floor)
        # |DB| fell, so patterns whose counts never changed may now
        # qualify: run the level-wise completion.
        report.patterns_added = complete_table(
            self.table, self.index,
            floor=floor,
            constraint=self.constraint,
            max_length=self.max_length,
        )
        return report

    # -- rule refresh & verification -----------------------------------------------

    def _refresh_rules(self, report: MaintenanceReport) -> None:
        new_rules, near_misses = derive_rules(self.table, self.thresholds,
                                              self.db_size)
        old_rules = self._rules
        added_keys = new_rules.keys() - old_rules.keys()
        dropped_keys = old_rules.keys() - new_rules.keys()
        report.rules_added = sorted(
            (new_rules.get(key) for key in added_keys),
            key=lambda rule: (rule.kind.value, rule.lhs, rule.rhs))
        report.rules_dropped = sorted(dropped_keys,
                                      key=lambda key: (key[0].value, key[1],
                                                       key[2]))
        report.rules_updated = sum(
            1 for rule in new_rules
            if rule.key not in added_keys and old_rules.get(rule.key) != rule)

        demoted = [rule for rule in near_misses if rule.key in dropped_keys]
        promoted = [key for key in added_keys if key in self.candidates]
        self.candidates.refresh(near_misses, promoted_keys=promoted,
                                demoted=demoted)
        self._rules = new_rules
        report.table_size = len(self.table)
        report.candidate_count = len(self.candidates)

    def _finish(self, report: MaintenanceReport) -> None:
        """Post-event validation; timing and failure context land on
        ``report`` so callers can see *which* event broke an invariant."""
        if not self.validate:
            return
        started = time.perf_counter()
        try:
            self.table.check_invariants(
                floor=self.thresholds.keep_count(self.db_size))
        except MaintenanceError as error:
            report.validation_seconds = time.perf_counter() - started
            raise MaintenanceError(
                f"invariant check failed after event {report.event!r} "
                f"(db_size={report.db_size}, backend={self.backend_name}): "
                f"{error}") from error
        report.validation_seconds = time.perf_counter() - started

    def _require_mined(self) -> None:
        if not self._mined:
            raise MaintenanceError(
                "call mine() before using rules or applying updates")

    # -- equivalence with full re-mining ---------------------------------------------

    def signature(self) -> frozenset[RuleSignature]:
        """Vocabulary-independent fingerprint of the current rule set.

        Two engines (e.g. an incrementally maintained one and a fresh
        re-mine of the same relation) agree iff their signatures are
        equal — the comparison the paper's three "Results" sections run.
        """
        out = set()
        for rule in self.rules:
            lhs_tokens = tuple(sorted(self.vocabulary.item(item).token
                                      for item in rule.lhs))
            rhs_token = self.vocabulary.item(rule.rhs).token
            out.add((rule.kind.value, lhs_tokens, rhs_token,
                     rule.union_count, rule.lhs_count, rule.db_size))
        return frozenset(out)

    def verify_against_remine(self) -> "VerificationResult":
        """Re-mine the relation from scratch and compare rule sets."""
        from repro.baselines.remine import remine  # local: avoid cycle

        fresh = remine(
            self.relation,
            min_support=self.thresholds.min_support,
            min_confidence=self.thresholds.min_confidence,
            margin=self.thresholds.margin,
            generalizer=self.generalizer,
            max_length=self.max_length,
            backend=self.config.backend,
        )
        mine_signature = self.signature()
        fresh_signature = fresh.signature()
        return VerificationResult(
            equivalent=mine_signature == fresh_signature,
            only_incremental=mine_signature - fresh_signature,
            only_remine=fresh_signature - mine_signature,
        )


class VerificationResult:
    """Outcome of an incremental-vs-remine comparison."""

    def __init__(self, *, equivalent: bool,
                 only_incremental: frozenset[RuleSignature],
                 only_remine: frozenset[RuleSignature]) -> None:
        self.equivalent = equivalent
        self.only_incremental = only_incremental
        self.only_remine = only_remine

    def __bool__(self) -> bool:
        return self.equivalent

    def explain(self) -> str:
        if self.equivalent:
            return "rule sets identical (counts included)"
        return (f"{len(self.only_incremental)} rules only incremental, "
                f"{len(self.only_remine)} rules only in re-mine")

"""The correlation engine — the library's central lifecycle object.

:class:`CorrelationEngine` owns an annotated relation together with all
maintained state the paper describes: the transaction encoding, the
annotation (vertical) index and frequency table, the frequent-pattern
table, the valid rule set, and the near-miss candidate store.  It
exposes exactly the lifecycle of the paper's application:

* :meth:`mine` — the initial, from-scratch pass, run by whichever
  :class:`~repro.mining.backend.MiningBackend` the config selects;
* :meth:`apply_batch` — coalesce an ordered batch of update events
  into one :class:`~repro.core.deltas.DeltaPlan` and run it through
  the incremental algorithms of Figures 12 and 13 with **one**
  relation/index update, one maintenance walk per case, one
  (dirty-scoped) rule refresh and one invariant check;
* :meth:`apply` — the single-event case of :meth:`apply_batch`,
  returning the per-event :class:`MaintenanceReport` shape;
* :meth:`rules` / :meth:`rules_of_kind` — the current correlations;
* :meth:`catalog` — the revision-memoized
  :class:`~repro.core.catalog.RuleCatalog` (indexed lookups, metric
  orderings, composable queries) the serving read path answers from;
* :meth:`signature` — a vocabulary-independent snapshot used by every
  equivalence check against full re-mining.

Construction goes through :class:`~repro.core.config.EngineConfig`
(usually via :func:`engine` or ``EngineConfig.builder()``); the legacy
kwargs surface survives as the deprecated
:class:`~repro.core.manager.AnnotationRuleManager` shim.

All mutation must flow through the engine (or a relation it has not
yet adopted): it records the relation's version counter and refuses to
proceed if the relation changed behind its back, because incremental
maintenance over unseen mutations would silently desynchronize counts.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.annotation_index import VerticalIndex
from repro.core.candidate_store import CandidateRuleStore
from repro.core.catalog import RuleCatalog
from repro.core.config import EngineConfig
from repro.core.deltas import (
    DeltaPlan,
    PlannedInsert,
    compile_plan,
    event_label,
)
from repro.core.derive import (
    affected_unions,
    derive_rules,
    derive_rules_for_unions,
)
from repro.core.discovery import complete_table, discover_with_seeds
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    EventLog,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.core.maintenance import (
    BatchReport,
    MaintenanceReport,
    PhaseTimings,
    TupleDelta,
    decay_for_deleted_tuples,
    decay_for_removed_items,
    refresh_for_added_items,
)
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import AssociationRule, RuleKey, RuleKind, RuleSet
from repro.errors import MaintenanceError, SchemaError
from repro.mining.backend import MiningBackend, get_backend
from repro.mining.constraints import CombinedRelevanceConstraint
from repro.mining.sketch import Estimate, RuleEstimate, SketchIndex
from repro.mining.itemsets import Itemset, ItemVocabulary, TransactionDatabase
from repro.relation.annotation import Annotation
from repro.relation.relation import AnnotatedRelation
from repro.relation.transactions import encode_tuple

#: Vocabulary-independent fingerprint of one rule (used across engines).
RuleSignature = tuple[str, tuple[str, ...], str, int, int, int]


def engine(relation: AnnotatedRelation | None = None,
           config: EngineConfig | None = None,
           **overrides) -> "CorrelationEngine":
    """Build a correlation engine — the one-call public entry.

    ``overrides`` are :class:`EngineConfig` fields; they either build a
    config from scratch (``repro.engine(rel, min_support=0.2,
    min_confidence=0.6, backend="eclat")``) or refine a given one.

    With ``shards >= 2`` in the config the factory returns a
    :class:`~repro.shard.ShardedEngine` — a drop-in
    :class:`CorrelationEngine` subclass that partitions the relation by
    tid, mines/maintains the partitions independently, and merges them
    exactly (identical rules and ``signature()``).
    """
    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    if config.shards > 1:
        from repro.shard import ShardedEngine  # local: shard imports us

        return ShardedEngine(relation, config)
    return CorrelationEngine(relation, config)


@dataclass(frozen=True)
class EncodedSubstrate:
    """A pre-built mining substrate :meth:`CorrelationEngine.mine` can
    adopt instead of encoding the relation tuple by tuple.

    The sharded path builds one per partition in a single bulk pass
    (token -> id caching, no per-occurrence ``Item`` construction), so
    shard mines skip the engine's per-tuple encode loop entirely.  The
    database and index must be built against the engine's *own*
    vocabulary and aligned with its relation (transaction index == tid,
    tombstones encoded as empty transactions, index covering exactly
    the database's transactions).  :meth:`CorrelationEngine.mine`
    verifies the vocabulary identity of both halves and the
    database/relation alignment; index/database agreement is the
    builder's contract (:func:`repro.shard.partition.build_substrate`
    derives both from one transaction list).
    """

    database: TransactionDatabase
    index: VerticalIndex


class CorrelationEngine:
    """Discovers and incrementally maintains annotation correlations."""

    def __init__(self,
                 relation: AnnotatedRelation | None = None,
                 config: EngineConfig | None = None,
                 *,
                 vocabulary: ItemVocabulary | None = None,
                 **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.relation = relation if relation is not None else AnnotatedRelation()
        self.config = config
        self.thresholds = config.thresholds()
        self._backend: MiningBackend = get_backend(config.backend)

        # A caller-supplied vocabulary lets several engines share one
        # interning space — the sharded engine gives every partition
        # (and its own merged table) the same vocabulary so itemset ids
        # are comparable across shards without translation.
        self.vocabulary = vocabulary if vocabulary is not None \
            else ItemVocabulary()
        self.database = TransactionDatabase(self.vocabulary)
        self.index = VerticalIndex(self.vocabulary)
        self.table = FrequentPatternTable(self.vocabulary)
        self.constraint = CombinedRelevanceConstraint(self.vocabulary)
        self.candidates = CandidateRuleStore(enabled=config.track_candidates)
        self.log = EventLog(max_events=config.max_log_events)
        self._rules = RuleSet()
        #: Full current near-miss set, keyed — maintained alongside the
        #: rules so the dirty-scoped refresh can revalidate untouched
        #: near misses arithmetically (independent of the candidate
        #: store, which may be disabled).
        self._near_misses: dict[RuleKey, AssociationRule] = {}
        self._mined = False
        self._relation_version = -1
        #: Monotone rule-state revision: bumped once by ``mine()`` and
        #: once per ``apply_batch`` — the key the read path's catalog
        #: cache is invalidated by (exactly once per flushed batch).
        self._revision = 0
        self._catalog: RuleCatalog | None = None
        #: The rule-set-built catalog ``_catalog`` was stamped from —
        #: a rule-set replacement (even one whose batch later failed
        #: validation, leaving ``_revision`` unbumped) must invalidate
        #: the memo, or reads would serve rules the engine no longer
        #: holds.
        self._catalog_base: RuleCatalog | None = None
        #: Approximate read tier (built lazily; ``None`` until the
        #: first estimate read, so exact-only workloads never pay for
        #: sketch maintenance).  ``_sketch_source`` records which index
        #: object the registry observes — a wholesale index replacement
        #: (``mine()`` adopting a substrate) invalidates it.
        self._sketches: SketchIndex | None = None
        self._sketch_source: VerticalIndex | None = None

    # -- properties ----------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Registry name of the mining backend in use."""
        return self._backend.name

    @property
    def generalizer(self):
        return self.config.generalizer

    @property
    def max_length(self) -> int | None:
        return self.config.max_length

    @property
    def counter(self) -> str:
        return self.config.counter

    def _counting_index(self) -> VerticalIndex | None:
        """The index, when maintenance should recount via bitmaps.

        With ``counter="vertical"`` the Figure-12 refresh/decay paths
        recount the touched patterns by bitmap-tidset intersection
        instead of adjusting counts tuple by tuple.
        """
        return self.index if self.config.counter == "vertical" else None

    @property
    def validate(self) -> bool:
        return self.config.validate

    @property
    def db_size(self) -> int:
        """|DB| — the support denominator (live tuples)."""
        return self.relation.live_count

    @property
    def rules(self) -> RuleSet:
        self._require_mined()
        return self._rules

    def rules_of_kind(self, kind: RuleKind) -> list[AssociationRule]:
        return list(self.catalog().of_kind(kind))

    @property
    def is_mined(self) -> bool:
        return self._mined

    @property
    def revision(self) -> int:
        """Monotone counter of committed rule-state changes."""
        return self._revision

    @property
    def log_dropped(self) -> int:
        """Events rotated out of a bounded provenance log (0 while the
        log is still complete) — a nonzero value means replaying the
        log cannot reconstruct the full history."""
        return self.log.dropped

    # -- the serving read path -------------------------------------------------

    def catalog(self) -> RuleCatalog:
        """The indexed, immutable query view of the current rules.

        Memoized by :attr:`revision` *and* rule-set identity: a flush
        invalidates it exactly once per batch, and every read at an
        unchanged revision returns the *same* catalog object —
        concurrent readers share one set of indexes.  The indexes
        themselves are built (lazily, once) by the rule set and only
        re-stamped with the engine revision here, so the engine and
        :meth:`RuleSet.catalog` never hold duplicate index builds.
        (The memo is a benign race under concurrent first reads: both
        derive equal catalogs and one wins the slot.)
        """
        self._require_mined()
        base: RuleCatalog = self._rules.catalog()
        cached = self._catalog
        if (cached is None or self._catalog_base is not base
                or cached.revision != self._revision):
            cached = base.with_revision(
                self._revision, rhs_counts=self._rhs_frequencies(base))
            self._catalog = cached
            self._catalog_base = base
        return cached

    def _rhs_frequencies(self, base: RuleCatalog) -> dict[int, int]:
        """Exact RHS marginals for the catalog's significance tier —
        one frequency probe per distinct predicted item, once per
        revision (the catalog memoizes the enriched clone)."""
        index = self.index
        return {rhs: index.frequency(rhs) for rhs in base.rhs_items()}

    # -- the approximate read tier ------------------------------------------

    def sketches(self) -> SketchIndex:
        """The bottom-k sketch registry over the live vertical index.

        Built lazily in one sweep on first use, then kept fresh by the
        index's maintenance observer at O(delta) per applied batch —
        never a re-mine.  A wholesale index replacement (a fresh
        ``mine()`` adopting a substrate) is detected by identity and
        triggers a rebuild on the next estimate read.
        """
        if self._sketches is None or self._sketch_source is not self.index:
            self._sketches = SketchIndex.from_mapping(
                self.index.as_mapping(), k=self.config.sketch_k)
            self.index.set_observer(self._sketches)
            self._sketch_source = self.index
        return self._sketches

    def adopt_sketches(self, sketches: SketchIndex) -> None:
        """Install a pre-built registry (process-mode shard workers
        build sketches next to the substrate and ship them back as
        plain data) and attach it to the current index."""
        self._sketches = sketches
        self.index.set_observer(sketches)
        self._sketch_source = self.index

    @property
    def sketches_ready(self) -> bool:
        """True when the registry is built and tracking the live index."""
        return (self._sketches is not None
                and self._sketch_source is self.index)

    def warm_sketches(self) -> None:
        """Force the lazy sketch build.  Callers that must not race a
        concurrent writer (the serving facade) run this once under
        their read lock; after that, estimate reads are lock-free."""
        self.sketches()

    def sketch_cardinality(self, item: int) -> int:
        """Exact live occurrence count of one item (the sketch tracks
        the full cardinality even when it samples the tidset)."""
        self._require_mined()
        return self.sketches().cardinality(item)

    def estimate_itemset(self, items: Itemset | Iterable[int], *,
                         z: float = 2.0) -> Estimate:
        """Approximate ``count(items)`` with an error bound."""
        self._require_mined()
        return self.sketches().itemset_estimate(items, z=z)

    def estimate_rule(self, lhs: Itemset | Iterable[int], rhs: int, *,
                      z: float = 2.0) -> RuleEstimate:
        """Approximate support/confidence/lift of ``lhs -> rhs``."""
        self._require_mined()
        return self.sketches().rule_estimate(lhs, rhs, self.db_size, z=z)

    def adopt_revision(self, revision: int) -> None:
        """Install a restored revision counter (persistence only):
        the restored engine's catalog is then keyed exactly as the
        saved engine's was."""
        if revision < 0:
            raise MaintenanceError(
                f"revision must be >= 0, got {revision}")
        self._revision = revision
        self._catalog = None
        self._catalog_base = None

    # -- initial mining --------------------------------------------------------

    def mine(self, *,
             substrate: EncodedSubstrate | None = None,
             counts: dict[Itemset, int] | None = None) -> MaintenanceReport:
        """From-scratch pass: encode, apply generalizations, run the
        backend's constrained miner at the margined floor, derive rules.

        A pre-built :class:`EncodedSubstrate` (the sharded bulk-encode
        path) replaces the per-tuple encode loop; its caller owns label
        application, so the generalizer pass is skipped with it too.
        ``counts`` additionally skips the search: the sharded engine's
        process executor runs the identical vertical mine over this
        engine's bitmap pages in a worker and hands the finished table
        back — everything else (rule derivation, revision, validation)
        proceeds exactly as if the search had run here.
        """
        started = time.perf_counter()
        phases = PhaseTimings()
        if counts is not None and substrate is None:
            raise MaintenanceError(
                "pre-computed counts require the pre-built substrate "
                "they were mined from")
        encode_started = time.perf_counter()
        if substrate is not None:
            if (substrate.database.vocabulary is not self.vocabulary
                    or substrate.index.vocabulary is not self.vocabulary):
                raise MaintenanceError(
                    "substrate was encoded against a different vocabulary "
                    "than this engine's")
            if len(substrate.database) != self.relation.tid_range:
                raise MaintenanceError(
                    f"substrate covers {len(substrate.database)} "
                    f"transactions but the relation has tid range "
                    f"{self.relation.tid_range}")
            self.database = substrate.database
            self.index = substrate.index
        else:
            if self.generalizer is not None:
                for row in self.relation:
                    self.relation.set_labels(
                        row.tid,
                        self.generalizer.labels_for(row.annotation_ids))

            self.database = TransactionDatabase(self.vocabulary)
            self.index = VerticalIndex(self.vocabulary)
            for tid in range(self.relation.tid_range):
                if self.relation.is_live(tid):
                    transaction = encode_tuple(self.relation, tid,
                                               self.vocabulary)
                else:
                    transaction = frozenset()
                self.database.add(transaction)
                self.index.add_transaction(tid, transaction)
        phases.add("encode", time.perf_counter() - encode_started)

        mine_started = time.perf_counter()
        if counts is not None:
            # The worker ran exactly the vertical search below over
            # this engine's own bitmap pages; adopting its table keeps
            # every following state transition identical.
            pass
        elif substrate is not None:
            # A pre-encoded substrate mines on its native vertical
            # path: the bitmap index is already built, and every
            # backend honours the identical table contract (each
            # constraint-admitted itemset at/above the floor with its
            # exact count), so the result is the same table the
            # configured backend would produce.  The backend choice
            # still governs all incremental maintenance.
            from repro.mining.eclat import (  # local: avoid miner cycle
                mine_frequent_itemsets_vertical,
            )

            counts = mine_frequent_itemsets_vertical(
                self.database.transactions,
                min_count=self.thresholds.keep_count(self.db_size),
                constraint=self.constraint,
                max_length=self.max_length,
                index=self.index.as_mapping(),
            )
        else:
            counts = self._backend.mine_initial(
                self.database.transactions,
                min_count=self.thresholds.keep_count(self.db_size),
                constraint=self.constraint,
                counter=self.counter,
                max_length=self.max_length,
            )
        self.table.replace(counts)
        phases.add("mine", time.perf_counter() - mine_started)
        self._mined = True
        self._relation_version = self.relation.version

        report = MaintenanceReport(event="mine", db_size=self.db_size,
                                   phases=phases)
        with phases.timed("refresh"):
            self._refresh_rules(report)
        # The rule state is committed: bump the revision even if the
        # invariant check below fails — readers are already served the
        # new rules, and staleness consumers key on this number.
        self._revision += 1
        report.duration_seconds = time.perf_counter() - started
        self._finish(report)
        return report

    # -- convenience wrappers ---------------------------------------------------

    def insert_annotated(self, rows: Iterable[tuple[Sequence[str],
                                                    Iterable[str]]]
                         ) -> MaintenanceReport:
        return self.apply(AddAnnotatedTuples.build(rows))

    def insert_unannotated(self, rows: Iterable[Sequence[str]]
                           ) -> MaintenanceReport:
        return self.apply(AddUnannotatedTuples.build(rows))

    def add_annotations(self, additions: Iterable[tuple[int, str]]
                        ) -> MaintenanceReport:
        return self.apply(AddAnnotations.build(additions))

    def remove_annotations(self, removals: Iterable[tuple[int, str]]
                           ) -> MaintenanceReport:
        return self.apply(RemoveAnnotations.build(removals))

    def remove_tuples(self, tids: Iterable[int]) -> MaintenanceReport:
        return self.apply(RemoveTuples.build(tids))

    # -- event routing ---------------------------------------------------------

    def apply(self, event: UpdateEvent) -> MaintenanceReport:
        """Route one update event — the single-element batch case."""
        batch = self.apply_batch([event])
        report = MaintenanceReport(event=event_label(event),
                                   db_size=batch.db_size)
        # One event exercises one case, but a sharded engine emits one
        # case report per *touched shard* — aggregate them all so the
        # per-event statistics match per-event application everywhere.
        for case in batch.case_reports:
            report.patterns_touched += case.patterns_touched
            report.patterns_added += case.patterns_added
            report.patterns_pruned += case.patterns_pruned
            report.tuples_scanned += case.tuples_scanned
        report.rules_added = batch.rules_added
        report.rules_dropped = batch.rules_dropped
        report.rules_updated = batch.rules_updated
        report.table_size = batch.table_size
        report.candidate_count = batch.candidate_count
        report.duration_seconds = batch.duration_seconds
        report.validation_seconds = batch.validation_seconds
        return report

    def apply_batch(self, events: Sequence[UpdateEvent]) -> BatchReport:
        """Coalesce ``events`` into one delta plan and apply it.

        The plan is compiled — and every compile-detectable failure
        raised — *before* any state is mutated, so a
        :class:`~repro.errors.DeltaPlanError` from this method leaves
        the engine untouched (the serving facade relies on this to fall
        back to per-event application around poison events).  The batch
        runs one maintenance walk per case over the merged deltas, then
        **one** dirty-scoped rule refresh and **one** invariant check.
        """
        self._require_mined()
        if not events:
            raise MaintenanceError("apply_batch needs at least one event")
        if self.relation.version != self._relation_version:
            raise MaintenanceError(
                "relation was modified outside the engine; incremental "
                "state is stale — re-run mine()")
        plan = compile_plan(
            events,
            next_tid=self.relation.tid_range,
            is_live=self.relation.is_live,
            annotations_of=lambda tid: self.relation.tuple(tid).annotation_ids,
            validate_row=self._validate_insert_row,
            validate_annotation=Annotation,
        )
        return self._apply_plan(plan)

    def close(self) -> None:
        """Release pooled resources and leave the engine reusable.

        The monolithic engine holds none — this is the no-op base of
        ``ShardedEngine.close()`` so services and the server drain can
        close any hosted engine uniformly."""

    def apply_batch_substrate(self, events: Sequence[UpdateEvent]
                              ) -> BatchReport:
        """Apply a batch's *substrate* mutations only — relation,
        database, vertical index, event log, version counters — and
        skip every pattern-table / rule maintenance walk.

        This is the parent-side half of a pooled flush: the sharded
        engine runs each touched shard's mutations here, then re-mines
        the shard's complete table exactly in a worker process against
        the refreshed bitmap pages.  A maintained table equals the
        exact table at the keep floor (the invariant ``_finish``
        enforces), so replacing it with the worker's re-mine is
        indistinguishable from having run the maintenance walks — but
        the O(patterns) work leaves the parent.

        Lockstep mirror: the four mutation blocks below must match
        ``_plan_inserts`` / ``_plan_annotation_adds`` /
        ``_plan_annotation_removes`` / ``_plan_tuple_removals`` token
        for token (case order, tuple order, interning calls), or
        vocabulary ids drift from the thread path and cross-path
        signatures diverge.  The table is stale when this returns; the
        caller owns installing the re-mined table and validating.
        """
        self._require_mined()
        if not events:
            raise MaintenanceError("apply_batch needs at least one event")
        if self.relation.version != self._relation_version:
            raise MaintenanceError(
                "relation was modified outside the engine; incremental "
                "state is stale — re-run mine()")
        started = time.perf_counter()
        plan = compile_plan(
            events,
            next_tid=self.relation.tid_range,
            is_live=self.relation.is_live,
            annotations_of=lambda tid: self.relation.tuple(tid).annotation_ids,
            validate_row=self._validate_insert_row,
            validate_annotation=Annotation,
        )
        batch = BatchReport(db_size=self.db_size)
        batch.audits = list(plan.audits)
        batch.plan_stats = plan.stats
        if len(plan.audits) == 1:
            batch.event = plan.audits[0].event
        else:
            batch.event = f"apply-batch[{len(plan.audits)}]"

        if plan.inserts:
            case = MaintenanceReport(event="insert-tuples",
                                     db_size=self.db_size)
            for planned in plan.inserts:
                tid = self.relation.insert(planned.values,
                                           planned.annotations)
                if tid != planned.tid:
                    raise MaintenanceError(
                        f"tid drift: plan says {planned.tid}, "
                        f"relation says {tid}")
                if planned.elided:
                    self.relation.delete(tid)
                    db_tid = self.database.add(frozenset())
                    if db_tid != tid:
                        raise MaintenanceError(
                            f"tid drift: relation says {tid}, database "
                            f"says {db_tid}")
                    continue
                if self.generalizer is not None:
                    self.relation.set_labels(
                        tid,
                        self.generalizer.labels_for(
                            frozenset(planned.annotations)))
                transaction = encode_tuple(self.relation, tid,
                                           self.vocabulary)
                db_tid = self.database.add(transaction)
                if db_tid != tid:
                    raise MaintenanceError(
                        f"tid drift: relation says {tid}, database "
                        f"says {db_tid}")
                self.index.add_transaction(tid, transaction)
                case.tuples_scanned += 1
            case.db_size = self.db_size
            batch.case_reports.append(case)

        if plan.annotation_adds:
            case = MaintenanceReport(event="add-annotations",
                                     db_size=self.db_size)
            for tid, annotation_ids in plan.annotation_adds.items():
                new_items = set()
                for annotation_id in annotation_ids:
                    if self.relation.annotate(tid, annotation_id):
                        new_items.add(
                            self.vocabulary.intern_annotation(annotation_id))
                if self.generalizer is not None:
                    row = self.relation.tuple(tid)
                    fresh_labels = self.relation.add_labels(
                        tid,
                        self.generalizer.labels_for(row.annotation_ids))
                    new_items |= {self.vocabulary.intern_label(label)
                                  for label in fresh_labels}
                if not new_items:
                    continue
                self.database.extend_transaction(tid, new_items)
                self.index.extend_transaction(tid, new_items)
                case.tuples_scanned += 1
            batch.case_reports.append(case)

        if plan.annotation_removes:
            case = MaintenanceReport(event="remove-annotations",
                                     db_size=self.db_size)
            for tid, annotation_ids in plan.annotation_removes.items():
                removed_items = set()
                for annotation_id in annotation_ids:
                    if self.relation.detach(tid, annotation_id):
                        removed_items.add(
                            self.vocabulary.intern_annotation(annotation_id))
                if self.generalizer is not None:
                    row = self.relation.tuple(tid)
                    kept_labels = self.generalizer.labels_for(
                        row.annotation_ids)
                    lost_labels = row.labels - set(kept_labels)
                    if lost_labels:
                        self.relation.set_labels(tid, kept_labels)
                        removed_items |= {self.vocabulary.intern_label(label)
                                          for label in lost_labels}
                if not removed_items:
                    continue
                self.database.shrink_transaction(tid, removed_items)
                self.index.shrink_transaction(tid, removed_items)
                case.tuples_scanned += 1
            batch.case_reports.append(case)

        if plan.deletions:
            case = MaintenanceReport(event="remove-tuples",
                                     db_size=self.db_size)
            for tid in plan.deletions:
                self.relation.delete(tid)
                old = self.database.clear_transaction(tid)
                self.index.remove_transaction(tid, old)
                case.tuples_scanned += 1
            case.db_size = self.db_size
            batch.case_reports.append(case)

        batch.db_size = self.db_size
        self._revision += 1
        for event in plan.events:
            self.log.record(event)
        self._relation_version = self.relation.version
        batch.duration_seconds = time.perf_counter() - started
        return batch

    def _validate_insert_row(self, values: Sequence[str]) -> None:
        """Mirror of ``relation.insert``'s row validation, run at plan
        compile time so a malformed row is rejected before any state is
        mutated (same exception per-event application would raise)."""
        if self.relation.schema is not None:
            self.relation.schema.validate_row(values)
        elif not values:
            raise SchemaError("a tuple needs at least one data value")

    def _apply_plan(self, plan: DeltaPlan) -> BatchReport:
        started = time.perf_counter()
        batch = BatchReport(db_size=self.db_size)
        batch.audits = list(plan.audits)
        batch.plan_stats = plan.stats
        # Name single-event batches after their event so validation
        # failures carry the same context per-event application did.
        if len(plan.audits) == 1:
            batch.event = plan.audits[0].event
        else:
            batch.event = f"apply-batch[{len(plan.audits)}]"
        dirty: set[Itemset] = set()
        with batch.phases.timed("apply"):
            if plan.inserts:
                batch.case_reports.append(
                    self._plan_inserts(plan.inserts, dirty))
            if plan.annotation_adds:
                batch.case_reports.append(
                    self._plan_annotation_adds(plan.annotation_adds, dirty))
            if plan.annotation_removes:
                batch.case_reports.append(
                    self._plan_annotation_removes(plan.annotation_removes,
                                                  dirty))
            if plan.deletions:
                batch.case_reports.append(
                    self._plan_tuple_removals(plan.deletions, dirty))
        batch.db_size = self.db_size
        batch.patterns_dirty = len(dirty)
        with batch.phases.timed("refresh"):
            self._refresh_rules_scoped(batch, dirty)
        # One revision bump per batch, committed *with* the rule state:
        # a batch that installs new rules and then fails the invariant
        # check below must still advance the number that advice
        # staleness (Recommendation.revision and friends) keys on.
        self._revision += 1
        batch.duration_seconds = time.perf_counter() - started
        for event in plan.events:
            self.log.record(event)
        # Validate *before* syncing the version counter: a failed
        # invariant check leaves the engine stale, so the guard at the
        # top of apply_batch forces a re-mine instead of letting
        # incremental maintenance continue over a corrupt table.
        self._finish(batch)
        self._relation_version = self.relation.version
        return batch

    # -- Cases 1 and 2: tuple inserts (backend increment path) ------------------

    def _plan_inserts(self, inserts: Sequence[PlannedInsert],
                      dirty: set[Itemset]) -> MaintenanceReport:
        increment = []
        for planned in inserts:
            tid = self.relation.insert(planned.values, planned.annotations)
            if tid != planned.tid:
                raise MaintenanceError(
                    f"tid drift: plan says {planned.tid}, "
                    f"relation says {tid}")
            if planned.elided:
                # Born dead (inserted and deleted within the batch): it
                # consumes its tid so later tids match per-event
                # application, but never reaches the mining substrate.
                self.relation.delete(tid)
                db_tid = self.database.add(frozenset())
                if db_tid != tid:
                    raise MaintenanceError(
                        f"tid drift: relation says {tid}, database "
                        f"says {db_tid}")
                continue
            if self.generalizer is not None:
                self.relation.set_labels(
                    tid,
                    self.generalizer.labels_for(
                        frozenset(planned.annotations)))
            transaction = encode_tuple(self.relation, tid, self.vocabulary)
            db_tid = self.database.add(transaction)
            if db_tid != tid:
                raise MaintenanceError(
                    f"tid drift: relation says {tid}, database says {db_tid}")
            self.index.add_transaction(tid, transaction)
            increment.append(transaction)

        report = MaintenanceReport(event="insert-tuples",
                                   db_size=self.db_size)
        report.tuples_scanned = len(increment)
        if not increment:
            return report  # every insert was elided: |DB| net unchanged
        fup_report = self._backend.apply_increment(
            self.table.counts,
            increment,
            index=self.index.as_mapping(),
            new_size=self.db_size,
            keep_fraction=self.thresholds.keep_support,
            constraint=self.constraint,
            max_length=self.max_length,
            counter=self.counter,
        )
        report.patterns_touched = fup_report.refreshed
        report.patterns_added = fup_report.added
        report.patterns_pruned = fup_report.pruned
        dirty |= fup_report.touched
        dirty.update(fup_report.added)
        dirty.update(fup_report.pruned)
        return report

    # -- Case 3: the δ batch of new annotations ---------------------------------

    def _plan_annotation_adds(self, adds: dict[int, list[str]],
                              dirty: set[Itemset]) -> MaintenanceReport:
        deltas: list[TupleDelta] = []
        seeds: set[int] = set()
        for tid, annotation_ids in adds.items():
            new_items = set()
            for annotation_id in annotation_ids:
                if self.relation.annotate(tid, annotation_id):
                    new_items.add(
                        self.vocabulary.intern_annotation(annotation_id))
            if self.generalizer is not None:
                row = self.relation.tuple(tid)
                fresh_labels = self.relation.add_labels(
                    tid, self.generalizer.labels_for(row.annotation_ids))
                new_items |= {self.vocabulary.intern_label(label)
                              for label in fresh_labels}
            if not new_items:
                continue  # every annotation was already present
            self.database.extend_transaction(tid, new_items)
            self.index.extend_transaction(tid, new_items)
            deltas.append(TupleDelta(
                tid=tid,
                after=self.database.transaction(tid),
                changed_items=frozenset(new_items)))
            seeds |= new_items

        report = MaintenanceReport(event="add-annotations",
                                   db_size=self.db_size)
        report.tuples_scanned = len(deltas)
        # Figure 12: refresh stored patterns, touching only δ tuples.
        report.patterns_touched = refresh_for_added_items(
            self.table, deltas, index=self._counting_index(),
            touched_out=dirty)
        # Figure 13: seeded discovery through the annotation index.
        report.patterns_added = discover_with_seeds(
            self.table, self.index, seeds,
            min_count=self.thresholds.keep_count(self.db_size),
            constraint=self.constraint,
            max_length=self.max_length,
            validate=self.validate,
        )
        dirty.update(report.patterns_added)
        return report

    # -- extensions: removals ----------------------------------------------------

    def _plan_annotation_removes(self, removes: dict[int, list[str]],
                                 dirty: set[Itemset]) -> MaintenanceReport:
        deltas: list[TupleDelta] = []
        for tid, annotation_ids in removes.items():
            before = self.database.transaction(tid)
            removed_items = set()
            for annotation_id in annotation_ids:
                if self.relation.detach(tid, annotation_id):
                    removed_items.add(
                        self.vocabulary.intern_annotation(annotation_id))
            if self.generalizer is not None:
                row = self.relation.tuple(tid)
                kept_labels = self.generalizer.labels_for(row.annotation_ids)
                lost_labels = row.labels - set(kept_labels)
                if lost_labels:
                    self.relation.set_labels(tid, kept_labels)
                    removed_items |= {self.vocabulary.intern_label(label)
                                      for label in lost_labels}
            if not removed_items:
                continue
            self.database.shrink_transaction(tid, removed_items)
            self.index.shrink_transaction(tid, removed_items)
            deltas.append(TupleDelta(
                tid=tid, after=before,
                changed_items=frozenset(removed_items)))

        report = MaintenanceReport(event="remove-annotations",
                                   db_size=self.db_size)
        report.tuples_scanned = len(deltas)
        report.patterns_touched = decay_for_removed_items(
            self.table, deltas, index=self._counting_index(),
            touched_out=dirty)
        # Counts only fell and |DB| is unchanged: nothing new can appear.
        report.patterns_pruned = self.table.prune_below(
            self.thresholds.keep_count(self.db_size))
        dirty.update(report.patterns_pruned)
        return report

    def _plan_tuple_removals(self, tids: Sequence[int],
                             dirty: set[Itemset]) -> MaintenanceReport:
        old_transactions = []
        for tid in tids:
            self.relation.delete(tid)
            old = self.database.clear_transaction(tid)
            self.index.remove_transaction(tid, old)
            old_transactions.append(old)

        report = MaintenanceReport(event="remove-tuples",
                                   db_size=self.db_size)
        report.tuples_scanned = len(old_transactions)
        report.patterns_touched = decay_for_deleted_tuples(
            self.table, old_transactions, index=self._counting_index(),
            touched_out=dirty)
        floor = self.thresholds.keep_count(self.db_size)
        report.patterns_pruned = self.table.prune_below(floor)
        # |DB| fell, so patterns whose counts never changed may now
        # qualify: run the level-wise completion.
        report.patterns_added = complete_table(
            self.table, self.index,
            floor=floor,
            constraint=self.constraint,
            max_length=self.max_length,
        )
        dirty.update(report.patterns_pruned)
        dirty.update(report.patterns_added)
        return report

    # -- rule refresh & verification -----------------------------------------------

    def _refresh_rules(self, report: MaintenanceReport) -> None:
        """Full derivation over the whole table (initial ``mine()``)."""
        new_rules, near_misses = derive_rules(self.table, self.thresholds,
                                              self.db_size)
        self._commit_rules(report, new_rules, near_misses)

    def _refresh_rules_scoped(self, report, dirty: set[Itemset]) -> None:
        """Re-derive rules only where ``dirty`` patterns can reach.

        Rules whose union was added, pruned or recounted — or whose LHS
        was — are re-enumerated from the table
        (:func:`~repro.core.derive.affected_unions` finds exactly those
        unions).  Every other rule's two counts are untouched, so its
        validity under the (possibly new) ``db_size`` is a pure
        arithmetic recheck: no table lookups, no shape enumeration.
        Rules that were neither valid nor near-miss stay untracked:
        their confidence is unchanged and the table floor already
        guarantees the support band, so no comparison can flip for
        them without their counts changing.
        """
        db_size = self.db_size
        thresholds = self.thresholds
        affected = affected_unions(self.table, dirty)
        new_rules, near_misses = derive_rules_for_unions(
            self.table, affected, thresholds, db_size)
        for rule in itertools.chain(self._rules, self._near_misses.values()):
            if rule.union_itemset in affected:
                continue
            if rule.db_size != db_size:
                rule = rule.with_counts(db_size=db_size)
            if thresholds.is_valid(rule):
                new_rules.add(rule)
            elif thresholds.is_near_miss(rule):
                near_misses.append(rule)
        self._commit_rules(report, new_rules, near_misses)

    def _commit_rules(self, report, new_rules: RuleSet,
                      near_misses: list[AssociationRule]) -> None:
        """Install a refreshed rule set; ``report`` may be a
        :class:`MaintenanceReport` or a :class:`BatchReport` (both carry
        the rule-statistics fields)."""
        old_rules = self._rules
        added_keys = new_rules.keys() - old_rules.keys()
        dropped_keys = old_rules.keys() - new_rules.keys()
        report.rules_added = sorted(
            (new_rules.get(key) for key in added_keys),
            key=lambda rule: (rule.kind.value, rule.lhs, rule.rhs))
        report.rules_dropped = sorted(dropped_keys,
                                      key=lambda key: (key[0].value, key[1],
                                                       key[2]))
        report.rules_updated = sum(
            1 for rule in new_rules
            if rule.key not in added_keys and old_rules.get(rule.key) != rule)

        demoted = [rule for rule in near_misses if rule.key in dropped_keys]
        promoted = [key for key in added_keys if key in self.candidates]
        self.candidates.refresh(near_misses, promoted_keys=promoted,
                                demoted=demoted)
        self._rules = new_rules
        self._near_misses = {rule.key: rule for rule in near_misses}
        report.table_size = len(self.table)
        report.candidate_count = len(self.candidates)

    def _finish(self, report: MaintenanceReport) -> None:
        """Post-event validation; timing and failure context land on
        ``report`` so callers can see *which* event broke an invariant."""
        if not self.validate:
            return
        started = time.perf_counter()
        try:
            self.table.check_invariants(
                floor=self.thresholds.keep_count(self.db_size))
        except MaintenanceError as error:
            report.validation_seconds = time.perf_counter() - started
            raise MaintenanceError(
                f"invariant check failed after event {report.event!r} "
                f"(db_size={report.db_size}, backend={self.backend_name}): "
                f"{error}") from error
        report.validation_seconds = time.perf_counter() - started

    def _require_mined(self) -> None:
        if not self._mined:
            raise MaintenanceError(
                "call mine() before using rules or applying updates")

    # -- equivalence with full re-mining ---------------------------------------------

    def signature(self) -> frozenset[RuleSignature]:
        """Vocabulary-independent fingerprint of the current rule set.

        Two engines (e.g. an incrementally maintained one and a fresh
        re-mine of the same relation) agree iff their signatures are
        equal — the comparison the paper's three "Results" sections run.
        """
        out = set()
        for rule in self.rules:
            lhs_tokens = tuple(sorted(self.vocabulary.item(item).token
                                      for item in rule.lhs))
            rhs_token = self.vocabulary.item(rule.rhs).token
            out.add((rule.kind.value, lhs_tokens, rhs_token,
                     rule.union_count, rule.lhs_count, rule.db_size))
        return frozenset(out)

    def verify_against_remine(self) -> "VerificationResult":
        """Re-mine the relation from scratch and compare rule sets."""
        from repro.baselines.remine import remine  # local: avoid cycle

        fresh = remine(
            self.relation,
            min_support=self.thresholds.min_support,
            min_confidence=self.thresholds.min_confidence,
            margin=self.thresholds.margin,
            generalizer=self.generalizer,
            max_length=self.max_length,
            backend=self.config.backend,
        )
        mine_signature = self.signature()
        fresh_signature = fresh.signature()
        return VerificationResult(
            equivalent=mine_signature == fresh_signature,
            only_incremental=mine_signature - fresh_signature,
            only_remine=fresh_signature - mine_signature,
        )


class VerificationResult:
    """Outcome of an incremental-vs-remine comparison."""

    def __init__(self, *, equivalent: bool,
                 only_incremental: frozenset[RuleSignature],
                 only_remine: frozenset[RuleSignature]) -> None:
        self.equivalent = equivalent
        self.only_incremental = only_incremental
        self.only_remine = only_remine

    def __bool__(self) -> bool:
        return self.equivalent

    def explain(self) -> str:
        if self.equivalent:
            return "rule sets identical (counts included)"
        return (f"{len(self.only_incremental)} rules only incremental, "
                f"{len(self.only_remine)} rules only in re-mine")

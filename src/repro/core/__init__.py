"""The paper's primary contribution: rule discovery and incremental maintenance."""

"""Deep consistency audit of a manager's maintained state.

Incremental maintenance is only as trustworthy as its redundant state
is consistent: the relation, the transaction encoding, the vertical
index and the pattern table all describe the same database.  The audit
cross-checks every pair of them — the kind of check a production
deployment runs after a crash recovery or a suspicious verification
failure, and the soak tests run at checkpoints.

The audit is read-only and independent of the incremental code paths:
counts are recomputed from raw transactions, so a bug in the
maintenance walks cannot hide itself here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import CorrelationEngine
from repro.core.derive import derive_rules
from repro.relation.transactions import encode_tuple


@dataclass
class AuditReport:
    """Findings of one audit pass; empty findings == consistent."""

    findings: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def consistent(self) -> bool:
        return not self.findings

    def note(self, finding: str) -> None:
        self.findings.append(finding)

    def summary(self) -> str:
        status = "consistent" if self.consistent else "INCONSISTENT"
        head = f"audit: {status} ({self.checks_run} checks)"
        if self.consistent:
            return head
        return "\n".join([head] + [f"  - {finding}"
                                   for finding in self.findings[:10]])


def audit(manager: CorrelationEngine, *,
          max_pattern_checks: int | None = None) -> AuditReport:
    """Run every consistency check; returns the findings.

    ``max_pattern_checks`` caps the expensive table-recount phase (the
    largest patterns are checked first, since maintenance bugs surface
    soonest in high-order counts); ``None`` checks the whole table.
    """
    report = AuditReport()
    relation = manager.relation
    database = manager.database
    index = manager.index

    # 1. Database size agreement.
    report.checks_run += 1
    if manager.db_size != relation.live_count:
        report.note(f"db_size {manager.db_size} != live tuples "
                    f"{relation.live_count}")

    # 2. Transactions mirror the relation (including tombstones).
    for tid in range(relation.tid_range):
        report.checks_run += 1
        stored = database.transaction(tid)
        if not relation.is_live(tid):
            if stored:
                report.note(f"tombstoned tid {tid} has a non-empty "
                            f"transaction")
            continue
        expected = encode_tuple(relation, tid, manager.vocabulary)
        if stored != expected:
            report.note(f"transaction {tid} diverges from the relation: "
                        f"stored {sorted(stored)}, "
                        f"expected {sorted(expected)}")

    # 3. Vertical index mirrors the transactions, both directions.
    from_transactions: dict[int, set[int]] = {}
    for tid, transaction in enumerate(database.transactions):
        for item in transaction:
            from_transactions.setdefault(item, set()).add(tid)
    for item in index.items():
        report.checks_run += 1
        expected_tids = from_transactions.get(item, set())
        if set(index.tids(item)) != expected_tids:
            report.note(f"index for item {item} "
                        f"({manager.vocabulary.item(item).token!r}) "
                        f"diverges from the transactions")
    for item, tids in from_transactions.items():
        report.checks_run += 1
        if set(index.tids(item)) != tids:
            report.note(f"item {item} present in transactions but "
                        f"missing/incomplete in the index")

    # 4. Pattern table: exact counts, floor, closure, constraint.
    floor = manager.thresholds.keep_count(manager.db_size)
    entries = sorted(manager.table.entries(),
                     key=lambda entry: -len(entry[0]))
    if max_pattern_checks is not None:
        entries = entries[:max_pattern_checks]
    for itemset, stored_count in entries:
        report.checks_run += 1
        true_count = sum(
            1 for tid, transaction in enumerate(database.transactions)
            if relation.is_live(tid)
            and all(item in transaction for item in itemset))
        if stored_count != true_count:
            report.note(f"pattern {itemset} stored count {stored_count} "
                        f"!= true count {true_count}")
        if stored_count < floor:
            report.note(f"pattern {itemset} below the floor {floor}")
        if not manager.constraint.admits(itemset):
            report.note(f"pattern {itemset} violates the constraint")

    # 5. Rules are exactly the derivation of the table.
    report.checks_run += 1
    derived, _near = derive_rules(manager.table, manager.thresholds,
                                  manager.db_size)
    if not derived.same_rules(manager.rules):
        only_live, only_derived = manager.rules.diff_keys(derived)
        report.note(f"rule set diverges from table derivation "
                    f"({len(only_live)} stale, {len(only_derived)} missing)")

    return report

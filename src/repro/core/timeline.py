"""Rule statistic trajectories across update events — paper Figure 11.

The paper's Figure 11 tabulates the *effect of evolving data on support
(S) and confidence (C)*: which direction each statistic can move, per
update case and rule family.  This module makes that observable on a
live manager: a :class:`TimelineRecorder` snapshots every rule after
every event, yielding per-rule trajectories (birth, death, statistic
series) and the empirical direction matrix the benchmark E9 compares
against the paper's table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.events import UpdateEvent
from repro.core.maintenance import MaintenanceReport
from repro.core.engine import CorrelationEngine
from repro.core.rules import RuleKey, RuleKind
from repro.errors import MaintenanceError


class Direction(enum.Enum):
    """How a statistic moved over one event."""

    UP = "up"
    DOWN = "down"
    FLAT = "flat"

    @classmethod
    def of(cls, before: float, after: float,
           tolerance: float = 1e-12) -> "Direction":
        if after > before + tolerance:
            return cls.UP
        if after < before - tolerance:
            return cls.DOWN
        return cls.FLAT


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One rule's statistics right after one event."""

    event_index: int
    event_name: str
    support: float
    confidence: float
    union_count: int
    lhs_count: int
    db_size: int


@dataclass
class RuleTrajectory:
    """Lifecycle of one rule key across the recorded events."""

    key: RuleKey
    points: list[TimelinePoint] = field(default_factory=list)
    born_at: int | None = None
    died_at: int | None = None

    @property
    def alive(self) -> bool:
        return self.died_at is None

    def statistic_series(self, statistic: str) -> list[float]:
        if statistic not in ("support", "confidence"):
            raise MaintenanceError(
                f"unknown statistic {statistic!r}; use 'support' or "
                f"'confidence'")
        return [getattr(point, statistic) for point in self.points]


class TimelineRecorder:
    """Wraps a mined manager; snapshots rules around each event."""

    def __init__(self, manager: CorrelationEngine) -> None:
        if not manager.is_mined:
            raise MaintenanceError(
                "TimelineRecorder needs an already-mined manager")
        self.manager = manager
        self.trajectories: dict[RuleKey, RuleTrajectory] = {}
        self.event_names: list[str] = []
        self._snapshot(event_name="mine")

    # -- recording -------------------------------------------------------------

    def apply(self, event: UpdateEvent) -> MaintenanceReport:
        """Apply an event through the manager and record the outcome."""
        report = self.manager.apply(event)
        self._snapshot(event_name=report.event)
        return report

    def _snapshot(self, event_name: str) -> None:
        event_index = len(self.event_names)
        self.event_names.append(event_name)
        seen: set[RuleKey] = set()
        for rule in self.manager.rules:
            seen.add(rule.key)
            trajectory = self.trajectories.get(rule.key)
            if trajectory is None:
                trajectory = RuleTrajectory(key=rule.key,
                                            born_at=event_index)
                self.trajectories[rule.key] = trajectory
            elif not trajectory.alive:
                # Re-promoted after a death: record the resurrection.
                trajectory.died_at = None
            trajectory.points.append(TimelinePoint(
                event_index=event_index,
                event_name=event_name,
                support=rule.support,
                confidence=rule.confidence,
                union_count=rule.union_count,
                lhs_count=rule.lhs_count,
                db_size=rule.db_size,
            ))
        for key, trajectory in self.trajectories.items():
            if key not in seen and trajectory.alive:
                trajectory.died_at = event_index

    # -- queries ----------------------------------------------------------------

    def trajectory(self, key: RuleKey) -> RuleTrajectory:
        try:
            return self.trajectories[key]
        except KeyError:
            raise MaintenanceError(f"no trajectory for rule {key}") from None

    def living_rules(self) -> list[RuleTrajectory]:
        return [trajectory for trajectory in self.trajectories.values()
                if trajectory.alive]

    def dead_rules(self) -> list[RuleTrajectory]:
        return [trajectory for trajectory in self.trajectories.values()
                if not trajectory.alive]

    # -- the Figure 11 matrix ------------------------------------------------------

    def direction_matrix(self) -> dict[tuple[str, RuleKind, str],
                                       set[Direction]]:
        """Observed movement directions per (event, rule kind, statistic).

        Keys are ``(event_name, kind, "support" | "confidence")``; the
        value is the set of directions that statistic was observed to
        take over that event type — the empirical form of the paper's
        Figure 11 table.
        """
        matrix: dict[tuple[str, RuleKind, str], set[Direction]] = {}
        for trajectory in self.trajectories.values():
            kind = trajectory.key[0]
            for previous, current in zip(trajectory.points,
                                         trajectory.points[1:]):
                if current.event_index != previous.event_index + 1:
                    continue  # rule was absent in between
                event_name = current.event_name
                for statistic in ("support", "confidence"):
                    direction = Direction.of(
                        getattr(previous, statistic),
                        getattr(current, statistic))
                    matrix.setdefault((event_name, kind, statistic),
                                      set()).add(direction)
        return matrix

    def render_matrix(self) -> str:
        """Figure 11 as text: one row per (event, kind), S and C cells."""
        matrix = self.direction_matrix()
        rows = [f"{'event':<24} {'rule kind':<26} {'S':<12} {'C':<12}"]
        keys = sorted({(event, kind) for event, kind, _ in matrix},
                      key=lambda pair: (pair[0], pair[1].value))
        for event_name, kind in keys:
            def cell(statistic: str) -> str:
                directions = matrix.get((event_name, kind, statistic),
                                        set())
                symbols = {Direction.UP: "+", Direction.DOWN: "-",
                           Direction.FLAT: "="}
                return "".join(symbols[direction]
                               for direction in sorted(
                                   directions, key=lambda d: d.value))

            rows.append(f"{event_name:<24} {kind.value:<26} "
                        f"{cell('support'):<12} {cell('confidence'):<12}")
        return "\n".join(rows)

"""Saving and restoring a manager's maintained state.

The paper's future work includes "implementing the incremental updating
of association rules into an actual database management system, as
currently it is a standalone application".  A standalone application
that loses its pattern table on exit must re-run Apriori at startup —
exactly the cost the incremental engine exists to avoid.  This module
serializes everything the manager maintains (relation content, pattern
table with exact counts, thresholds, event count) to a JSON document so
a session can resume where it stopped.

The snapshot stores *tokens*, not interned ids: vocabularies are
rebuilt on load, so snapshots are portable across processes and
library versions that change interning order.

Format version 2 additionally records the engine's rule-state
``revision`` and the shape of its read-path catalog
(:class:`~repro.core.catalog.CatalogStats`): :func:`restore` adopts
the revision, pre-builds the catalog (so a restored engine serves its
first read from warm indexes) and verifies the rebuilt shape against
the saved one.  Version-1 documents (without those fields) still load.

Format version 3 adds the shard layout of a partitioned engine
(:class:`~repro.shard.ShardedEngine`): shard count, worker setting and
the tid -> shard assignment.  :func:`restore` rebuilds a sharded engine
with the identical layout, so the partition a session was running with
survives a restart bit for bit (future inserts on a restored custom
layout fall back to the default modulo scheme).  Monolithic snapshots
simply omit the key; version-1 and -2 documents still load.

Format version 4 adds the write-ahead journal anchor
(``"journal": {"seq": N}``): the journal sequence the snapshot was
taken at, so :class:`~repro.core.journal.JournalStore` recovery knows
exactly which journal suffix to replay on top.  Snapshots saved
outside a journal store omit the key.  Versions 1-3 still load.
"""

from __future__ import annotations

import json
import os

from repro.core.config import SHARD_EXECUTORS, EngineConfig
from repro.core.engine import CorrelationEngine
from repro.errors import FormatError, MaintenanceError
from repro.mining.backend import DEFAULT_BACKEND
from repro.relation.annotation import Annotation
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema

FORMAT_VERSION = 4
#: Versions :func:`restore` accepts; 1 lacks the revision/catalog keys,
#: 2 lacks the shard layout, 3 lacks the journal anchor.
SUPPORTED_VERSIONS = (1, 2, 3, 4)


def snapshot(manager: CorrelationEngine, *,
             journal_seq: int | None = None) -> dict:
    """The manager's full maintained state as a JSON-able dict."""
    if not manager.is_mined:
        raise MaintenanceError("cannot snapshot an unmined manager")
    relation = manager.relation
    tuples = []
    for tid in range(relation.tid_range):
        if not relation.is_live(tid):
            tuples.append(None)
            continue
        row = relation.tuple(tid)
        tuples.append({
            "values": list(row.values),
            "annotations": sorted(row.annotation_ids),
            "labels": sorted(row.labels),
        })
    annotations = [
        {
            "id": annotation.annotation_id,
            "text": annotation.text,
            "category": annotation.category,
            "author": annotation.author,
            "created": annotation.created,
        }
        for annotation in relation.registry
    ]
    table = [
        {
            "items": [_token_ref(manager, item) for item in itemset],
            "count": count,
        }
        for itemset, count in sorted(manager.table.entries())
    ]
    document = {
        "format_version": FORMAT_VERSION,
        "thresholds": {
            "min_support": manager.thresholds.min_support,
            "min_confidence": manager.thresholds.min_confidence,
            "margin": manager.thresholds.margin,
        },
        "max_length": manager.max_length,
        "backend": manager.config.backend,
        "schema": ([attribute.name
                    for attribute in relation.schema.attributes]
                   if relation.schema is not None else None),
        "relation_name": relation.name,
        "tuples": tuples,
        "annotations": annotations,
        "pattern_table": table,
        "events_applied": len(manager.log),
        "engine_revision": manager.revision,
        "catalog": manager.catalog().stats.as_dict(),
    }
    from repro.shard import ShardedEngine  # local: shard imports core

    if isinstance(manager, ShardedEngine):
        document["shards"] = {
            "count": manager.shard_count,
            "workers": manager.config.shard_workers,
            "executor": manager.config.shard_executor,
            "assignment": manager.assignment(),
        }
    if journal_seq is not None:
        if not isinstance(journal_seq, int) or journal_seq < 0:
            raise MaintenanceError(
                f"journal_seq must be a non-negative int, "
                f"got {journal_seq!r}")
        document["journal"] = {"seq": journal_seq}
    return document


def _token_ref(manager: CorrelationEngine, item_id: int) -> list:
    item = manager.vocabulary.item(item_id)
    return [item.kind.value, item.token]


def save(manager: CorrelationEngine,
         path: str | os.PathLike) -> None:
    """Write a snapshot to ``path`` (JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot(manager), handle, indent=1)


def restore(document: dict, *, generalizer=None) -> CorrelationEngine:
    """Rebuild a mined manager from a snapshot dict.

    The pattern table is restored via a fresh ``mine()`` over the
    restored relation, then cross-checked count-by-count against the
    snapshot — a corrupted or hand-edited snapshot fails loudly instead
    of silently desynchronizing future incremental updates.
    """
    version = document.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise FormatError(
            f"unsupported snapshot format_version {version!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})")

    schema_names = document.get("schema")
    schema = Schema(schema_names) if schema_names else None
    relation = AnnotatedRelation(
        schema, name=document.get("relation_name", "R"))
    for record in document.get("annotations", ()):
        relation.registry.register(Annotation(
            record["id"], record.get("text", ""),
            record.get("category", ""), record.get("author", ""),
            record.get("created", "")))
    doomed = []
    for entry in document["tuples"]:
        if entry is None:
            tid = relation.insert(("__tombstone__",))
            doomed.append(tid)
            continue
        tid = relation.insert(entry["values"], entry["annotations"])
        relation.set_labels(tid, entry.get("labels", ()))
    for tid in doomed:
        relation.delete(tid)

    thresholds = document["thresholds"]
    config = EngineConfig(
        min_support=thresholds["min_support"],
        min_confidence=thresholds["min_confidence"],
        margin=thresholds["margin"],
        backend=document.get("backend", DEFAULT_BACKEND),
        max_length=document.get("max_length"),
        generalizer=generalizer,
    )
    sharding = document.get("shards")
    if sharding is not None:
        manager = _restore_sharded(relation, config, sharding)
    else:
        manager = CorrelationEngine(relation, config)
    manager.mine()
    _verify_table(manager, document)
    revision = document.get("engine_revision")
    if version >= 2 and (revision is None
                         or document.get("catalog") is None):
        # A v2 writer always records both; their absence is truncation,
        # not an older format — restoring would silently regress the
        # revision counter every continuity consumer keys on.
        raise FormatError(
            "format_version 2 snapshot is missing its engine_revision/"
            "catalog keys — snapshot corrupted or edited")
    if revision is not None:
        manager.adopt_revision(revision)
    _verify_catalog(manager, document)
    journal = document.get("journal")
    if journal is not None and (
            not isinstance(journal, dict)
            or not isinstance(journal.get("seq"), int)
            or journal["seq"] < 0):
        raise FormatError(
            f"snapshot journal key is malformed: {journal!r}")
    return manager


def _restore_sharded(relation: AnnotatedRelation, config: EngineConfig,
                     sharding: dict) -> CorrelationEngine:
    """Rebuild a sharded engine with the snapshot's exact shard layout."""
    from repro.shard import ShardedEngine  # local: shard imports core

    count = sharding.get("count")
    if not isinstance(count, int) or count < 1:
        raise FormatError(
            f"snapshot shard layout has invalid count {count!r}")
    assignment = sharding.get("assignment")
    if not isinstance(assignment, list):
        raise FormatError("snapshot shard layout is missing its "
                          "tid assignment")
    if any(shard is not None and not (isinstance(shard, int)
                                      and 0 <= shard < count)
           for shard in assignment):
        raise FormatError(
            f"snapshot shard assignment names shards outside 0..{count - 1}")
    workers = sharding.get("workers")
    if workers is not None and not (isinstance(workers, int)
                                    and workers >= 1):
        raise FormatError(
            f"snapshot shard layout has invalid workers {workers!r}")
    # Absent in snapshots written before the process executor existed:
    # those engines ran (and restore as) the thread default.
    executor = sharding.get("executor", "thread")
    if executor not in SHARD_EXECUTORS:
        raise FormatError(
            f"snapshot shard layout has invalid executor {executor!r}")

    def partitioner(tid: int) -> int:
        if tid < len(assignment) and assignment[tid] is not None:
            return assignment[tid]
        return tid % count

    return ShardedEngine(
        relation,
        config.replace(shards=count,
                       shard_workers=sharding.get("workers"),
                       shard_executor=executor),
        partitioner=partitioner)


def load(path: str | os.PathLike, *, generalizer=None
         ) -> CorrelationEngine:
    """Read a snapshot file and rebuild the manager."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    return restore(document, generalizer=generalizer)


def _verify_catalog(manager: CorrelationEngine, document: dict) -> None:
    """Rebuild the read-path catalog (warming it for the first query)
    and check its shape against the saved stats — a snapshot that
    restores to a differently shaped read state fails loudly."""
    expected = document.get("catalog")
    if expected is None:
        return  # version-1 document: nothing recorded to verify
    actual = manager.catalog().stats.as_dict()
    # Every current stat must match the saved value; a saved entry
    # *missing* a stat is corruption too (keys only a newer writer
    # knows, present in the document but not in ``actual``, pass).
    mismatched = sorted(
        key for key, value in actual.items()
        if expected.get(key) != value)
    if mismatched:
        details = ", ".join(
            f"{key}: saved {expected.get(key)} != restored {actual[key]}"
            for key in mismatched)
        raise FormatError(
            f"snapshot catalog stats disagree with the restored "
            f"engine ({details}) — snapshot corrupted or edited")


def _verify_table(manager: CorrelationEngine, document: dict) -> None:
    from repro.mining.itemsets import Item, ItemKind

    expected: dict[tuple, int] = {}
    for entry in document.get("pattern_table", ()):
        itemset = []
        for kind_value, token in entry["items"]:
            item = Item(ItemKind(kind_value), token)
            if item not in manager.vocabulary:
                raise FormatError(
                    f"snapshot pattern mentions unknown item {token!r}")
            itemset.append(manager.vocabulary.id_of(item))
        expected[tuple(sorted(itemset))] = entry["count"]
    actual = dict(manager.table.entries())
    if expected != actual:
        missing = len(set(expected) - set(actual))
        extra = len(set(actual) - set(expected))
        raise FormatError(
            f"snapshot pattern table disagrees with restored relation "
            f"({missing} missing, {extra} extra entries) — snapshot "
            f"corrupted or edited")

"""Near-miss candidate rule store.

Section 4.3 (Case 3, Results): "By storing the existing rules and
candidate rules (rules slightly below the minimum support and confidence
requirements) and referencing those after updates, a substantial amount
of time could be saved."  The store keeps rules inside the margin band
— failing a user threshold but above ``margin *`` that threshold — with
their exact counts, and records promotion/demotion traffic so the
ablation benchmark (E8) can quantify its effect.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.rules import AssociationRule, RuleKey
from repro.core.stats import Thresholds


@dataclass
class CandidateStoreStats:
    """Traffic counters for observability and the E8 ablation."""

    promotions: int = 0
    demotions: int = 0
    evictions: int = 0
    refreshes: int = 0


@dataclass
class CandidateRuleStore:
    """Keyed near-miss rules with exact counts."""

    enabled: bool = True
    _rules: dict[RuleKey, AssociationRule] = field(default_factory=dict)
    stats: CandidateStoreStats = field(default_factory=CandidateStoreStats)

    def refresh(self, near_misses: Iterable[AssociationRule],
                promoted_keys: Iterable[RuleKey],
                demoted: Iterable[AssociationRule]) -> None:
        """Reconcile the store after a derivation pass.

        ``near_misses`` is the full current near-miss set; ``promoted_keys``
        are rules that left the band upward (now valid) and ``demoted``
        rules that fell out of the valid set into the band.
        """
        if not self.enabled:
            self._rules.clear()
            return
        previous = self._rules
        self._rules = {}
        for rule in near_misses:
            self._rules[rule.key] = rule
            if rule.key in previous:
                self.stats.refreshes += 1
        for key in promoted_keys:
            if key in previous:
                self.stats.promotions += 1
        for rule in demoted:
            if rule.key in self._rules:
                self.stats.demotions += 1
        self.stats.evictions += sum(1 for key in previous
                                    if key not in self._rules)

    def get(self, key: RuleKey) -> AssociationRule | None:
        return self._rules.get(key)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, key: RuleKey) -> bool:
        return key in self._rules

    def closest_to_valid(self, thresholds: Thresholds,
                         limit: int = 10) -> list[AssociationRule]:
        """Near-miss rules ranked by how close they are to promotion.

        Exposed by the CLI so curators can see which correlations are
        about to become rules as annotations accumulate.
        """
        def gap(rule: AssociationRule) -> float:
            support_gap = max(0.0, thresholds.min_support - rule.support)
            confidence_gap = max(0.0,
                                 thresholds.min_confidence - rule.confidence)
            return support_gap + confidence_gap

        return sorted(self._rules.values(), key=gap)[:limit]

"""Association rules over annotated databases (Definitions 4.2 / 4.3).

A rule is ``LHS => rhs_annotation`` where the RHS is always a *single*
annotation item and the LHS is either a set of data values
(:attr:`RuleKind.DATA_TO_ANNOTATION`) or a set of annotations
(:attr:`RuleKind.ANNOTATION_TO_ANNOTATION`).  Rules carry **exact
integer counts**, not floats, because incremental maintenance (section
4.3) works by adjusting numerators and denominators; support and
confidence are derived properties.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
import enum
import warnings

from repro.errors import ItemKindError
from repro.mining.itemsets import ItemVocabulary, Itemset, canonical


class RuleKind(enum.Enum):
    """The two correlation families the paper targets."""

    DATA_TO_ANNOTATION = "data-to-annotation"
    ANNOTATION_TO_ANNOTATION = "annotation-to-annotation"


#: Stable identity of a rule: its structure without its statistics.
RuleKey = tuple[RuleKind, Itemset, int]


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """An annotation-RHS association rule with exact counts.

    ``union_count``  — occurrences of ``LHS ∪ {rhs}`` (the numerator of
    both support and confidence);
    ``lhs_count``    — occurrences of ``LHS`` (the confidence
    denominator);
    ``db_size``      — live tuples at evaluation time (the support
    denominator).
    """

    kind: RuleKind
    lhs: Itemset
    rhs: int
    union_count: int
    lhs_count: int
    db_size: int

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ItemKindError("a rule needs a non-empty LHS")
        if self.rhs in self.lhs:
            raise ItemKindError(
                f"RHS item {self.rhs} must not appear in the LHS {self.lhs}")
        if tuple(sorted(self.lhs)) != tuple(self.lhs):
            raise ItemKindError(f"LHS {self.lhs} is not canonical")
        if not 0 <= self.union_count <= self.lhs_count:
            raise ItemKindError(
                f"union_count={self.union_count} must be within "
                f"[0, lhs_count={self.lhs_count}]")
        if self.lhs_count > self.db_size:
            raise ItemKindError(
                f"lhs_count={self.lhs_count} exceeds db_size={self.db_size}")

    # -- identity ----------------------------------------------------------

    @property
    def key(self) -> RuleKey:
        return (self.kind, self.lhs, self.rhs)

    @property
    def union_itemset(self) -> Itemset:
        return canonical(self.lhs + (self.rhs,))

    # -- statistics ---------------------------------------------------------

    @property
    def support(self) -> float:
        """Fraction of tuples containing ``LHS ∪ {rhs}``."""
        return self.union_count / self.db_size if self.db_size else 0.0

    @property
    def confidence(self) -> float:
        """``support(LHS ∪ {rhs}) / support(LHS)``."""
        return self.union_count / self.lhs_count if self.lhs_count else 0.0

    @property
    def lift(self) -> float:
        """Confidence relative to the RHS base rate (extension, not in
        the paper; used by the recommender's ranking)."""
        if not self.db_size or not self.lhs_count:
            return 0.0
        rhs_rate = self.rhs_count_estimate / self.db_size
        return self.confidence / rhs_rate if rhs_rate else 0.0

    @property
    def rhs_count_estimate(self) -> int:
        """Lower bound on the RHS annotation count (exact value lives in
        the annotation frequency table; the rule alone knows only that
        the RHS occurs at least ``union_count`` times)."""
        return self.union_count

    def with_counts(self, *, union_count: int | None = None,
                    lhs_count: int | None = None,
                    db_size: int | None = None) -> "AssociationRule":
        """A copy with some counts replaced (rules are immutable)."""
        return replace(
            self,
            union_count=self.union_count if union_count is None else union_count,
            lhs_count=self.lhs_count if lhs_count is None else lhs_count,
            db_size=self.db_size if db_size is None else db_size,
        )

    def render(self, vocabulary: ItemVocabulary) -> str:
        """Paper Figure 7 style: ``x1 x2 ==> a, conf, sup``."""
        lhs = vocabulary.render(self.lhs)
        rhs = vocabulary.item(self.rhs).token
        return (f"{lhs} ==> {rhs}, "
                f"{self.confidence:.4f}, {self.support:.4f}")


class RuleSet:
    """A keyed collection of rules with indexed lookups.

    Lookups (:meth:`mentioning` / :meth:`with_rhs` / :meth:`of_kind`)
    are served by a lazily built
    :class:`~repro.core.catalog.RuleCatalog` that is invalidated by
    mutation and rebuilt on the next query — so a burst of queries
    between mutations pays for the indexes once.  Hot read paths
    should not query a RuleSet at all: they should take the engine's
    revision-memoized ``catalog()`` directly, which survives across
    rule-set replacements and is shared by all readers.
    """

    def __init__(self, rules: Iterable[AssociationRule] = ()) -> None:
        self._rules: dict[RuleKey, AssociationRule] = {}
        self._version = 0
        self._catalog = None
        for rule in rules:
            self.add(rule)

    def add(self, rule: AssociationRule) -> None:
        self._rules[rule.key] = rule
        self._version += 1

    def discard(self, key: RuleKey) -> AssociationRule | None:
        rule = self._rules.pop(key, None)
        if rule is not None:
            self._version += 1
        return rule

    def get(self, key: RuleKey) -> AssociationRule | None:
        return self._rules.get(key)

    def catalog(self):
        """An indexed, immutable view of the current rules, keyed by
        this set's mutation counter and rebuilt only after changes."""
        from repro.core.catalog import RuleCatalog  # local: avoid cycle

        cached = self._catalog
        if cached is None or cached.revision != self._version:
            cached = RuleCatalog(self._rules.values(),
                                 revision=self._version)
            self._catalog = cached
        return cached

    def mentioning(self, item: int) -> list[AssociationRule]:
        """Rules whose LHS or RHS contains ``item``.

        Deprecated — query the engine's ``catalog()`` instead, which is
        memoized across rule-set replacements.
        """
        self._warn_deprecated("mentioning")
        return list(self.catalog().mentioning(item))

    def of_kind(self, kind: RuleKind) -> list[AssociationRule]:
        """Deprecated — prefer ``catalog().of_kind``."""
        self._warn_deprecated("of_kind")
        return list(self.catalog().of_kind(kind))

    def with_rhs(self, rhs: int) -> list[AssociationRule]:
        """Deprecated — prefer ``catalog().with_rhs``."""
        self._warn_deprecated("with_rhs")
        return list(self.catalog().with_rhs(rhs))

    @staticmethod
    def _warn_deprecated(name: str) -> None:
        # stacklevel 3: point past this helper and the deprecated
        # method at the caller that should migrate.
        warnings.warn(
            f"RuleSet.{name}() is deprecated; query the engine's "
            f"revision-memoized catalog() instead (RuleCatalog.{name})",
            DeprecationWarning, stacklevel=3)

    def keys(self) -> set[RuleKey]:
        return set(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, key: RuleKey) -> bool:
        return key in self._rules

    def sorted_rules(self) -> list[AssociationRule]:
        """Deterministic order: kind, LHS length, LHS items, RHS (the
        canonical listing order the catalog stores)."""
        return list(self.catalog().rules)

    def same_rules(self, other: "RuleSet") -> bool:
        """Structural equality including counts (equivalence checks)."""
        if self.keys() != other.keys():
            return False
        return all(self._rules[key] == other._rules[key]
                   for key in self._rules)

    def diff_keys(self, other: "RuleSet") -> tuple[set[RuleKey], set[RuleKey]]:
        """(only in self, only in other) — used by verification output."""
        mine, theirs = self.keys(), other.keys()
        return mine - theirs, theirs - mine

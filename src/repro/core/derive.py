"""Deriving annotation-RHS rules from the frequent-pattern table.

Rule derivation is deliberately separated from counting: all the cost of
mining and of incremental maintenance lives in keeping the pattern table
exact, after which the rules of Definitions 4.2 / 4.3 are a cheap pure
function of the table.  The same function therefore serves the initial
mining pass, every incremental update, and the from-scratch baseline —
guaranteeing that rule-level thresholds are applied identically
everywhere (the paper's equivalence results hinge on this).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import MaintenanceError
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.core.stats import Thresholds
from repro.mining.itemsets import ItemVocabulary, Itemset


def iter_rule_shapes(itemset: Itemset,
                     vocabulary: ItemVocabulary
                     ) -> Iterator[tuple[RuleKind, Itemset, int]]:
    """The (kind, LHS, RHS) rule shapes an itemset can produce.

    A single-annotation mixed pattern yields exactly one D2A shape (the
    annotation is forced to the RHS).  An annotation-only pattern of
    size k yields k A2A shapes, one per choice of RHS.
    """
    if len(itemset) < 2:
        return
    annotations = [item for item in itemset
                   if vocabulary.is_annotation_like(item)]
    if len(annotations) == 1:
        rhs = annotations[0]
        lhs = tuple(item for item in itemset if item != rhs)
        yield (RuleKind.DATA_TO_ANNOTATION, lhs, rhs)
    elif len(annotations) == len(itemset):
        for rhs in itemset:
            lhs = tuple(item for item in itemset if item != rhs)
            yield (RuleKind.ANNOTATION_TO_ANNOTATION, lhs, rhs)


def _classify_rule(rule: AssociationRule,
                   thresholds: Thresholds,
                   valid: RuleSet,
                   near_misses: list[AssociationRule]) -> None:
    if thresholds.is_valid(rule):
        valid.add(rule)
    elif thresholds.is_near_miss(rule):
        near_misses.append(rule)


def _derive_for_union(table: FrequentPatternTable,
                      itemset: Itemset,
                      union_count: int,
                      thresholds: Thresholds,
                      db_size: int,
                      valid: RuleSet,
                      near_misses: list[AssociationRule]) -> None:
    for kind, lhs, rhs in iter_rule_shapes(itemset, table.vocabulary):
        lhs_count = table.count(lhs)
        if lhs_count is None:
            raise MaintenanceError(
                f"pattern table lost closure: {lhs} missing while "
                f"{itemset} is stored")
        rule = AssociationRule(
            kind=kind, lhs=lhs, rhs=rhs,
            union_count=union_count, lhs_count=lhs_count,
            db_size=db_size)
        _classify_rule(rule, thresholds, valid, near_misses)


def derive_rules(table: FrequentPatternTable,
                 thresholds: Thresholds,
                 db_size: int) -> tuple[RuleSet, list[AssociationRule]]:
    """(valid rules, near-miss candidate rules) from the current table.

    Every LHS count is read from the table — downward closure guarantees
    it is present for any stored union pattern.
    """
    valid = RuleSet()
    near_misses: list[AssociationRule] = []
    for itemset, union_count in table.entries():
        _derive_for_union(table, itemset, union_count, thresholds, db_size,
                          valid, near_misses)
    return valid, near_misses


def affected_unions(table: FrequentPatternTable,
                    dirty: Iterable[Itemset]) -> set[Itemset]:
    """Every stored-or-pruned union whose rules a dirty set may change.

    A rule reads exactly two table counts: its union's and its LHS's.
    So a rule is affected iff its union is dirty (added, pruned or
    recounted) **or** its LHS is.  Unions whose LHS is dirty are found
    by probing one-item annotation extensions of each dirty LHS-shaped
    pattern against the table — closure guarantees every extension item
    is a stored annotation singleton, so the probe set is exact and no
    full rule-shape enumeration over the table is needed.
    """
    vocabulary = table.vocabulary
    affected: set[Itemset] = set()
    extensions: list[int] | None = None
    for pattern in dirty:
        if len(pattern) >= 2:
            # As a union (whether still stored or just pruned).
            affected.add(pattern)
        # As an LHS: only data-only or annotation-only patterns head
        # rules, and both extend by exactly one annotation-like item.
        annotation_items = vocabulary.count_annotation_like(pattern)
        if annotation_items not in (0, len(pattern)):
            continue
        if pattern not in table:
            continue  # pruned: closure pruned every extension first
        if extensions is None:
            extensions = table.annotation_singletons()
        pattern_set = set(pattern)
        for item in extensions:
            if item in pattern_set:
                continue
            union = tuple(sorted(pattern + (item,)))
            if union in table:
                affected.add(union)
    return affected


def derive_rules_for_unions(table: FrequentPatternTable,
                            unions: Iterable[Itemset],
                            thresholds: Thresholds,
                            db_size: int
                            ) -> tuple[RuleSet, list[AssociationRule]]:
    """Like :func:`derive_rules`, restricted to the given union patterns.

    Unions no longer stored (pruned by maintenance) are skipped — their
    rules simply cease to exist.  This is the re-derivation half of the
    dirty-scoped refresh; untouched rules are revalidated arithmetically
    by the engine without ever reading the table.
    """
    valid = RuleSet()
    near_misses: list[AssociationRule] = []
    for itemset in unions:
        union_count = table.count(itemset)
        if union_count is None:
            continue
        _derive_for_union(table, itemset, union_count, thresholds, db_size,
                          valid, near_misses)
    return valid, near_misses

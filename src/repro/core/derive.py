"""Deriving annotation-RHS rules from the frequent-pattern table.

Rule derivation is deliberately separated from counting: all the cost of
mining and of incremental maintenance lives in keeping the pattern table
exact, after which the rules of Definitions 4.2 / 4.3 are a cheap pure
function of the table.  The same function therefore serves the initial
mining pass, every incremental update, and the from-scratch baseline —
guaranteeing that rule-level thresholds are applied identically
everywhere (the paper's equivalence results hinge on this).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import MaintenanceError
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.core.stats import Thresholds
from repro.mining.itemsets import ItemVocabulary, Itemset


def iter_rule_shapes(itemset: Itemset,
                     vocabulary: ItemVocabulary
                     ) -> Iterator[tuple[RuleKind, Itemset, int]]:
    """The (kind, LHS, RHS) rule shapes an itemset can produce.

    A single-annotation mixed pattern yields exactly one D2A shape (the
    annotation is forced to the RHS).  An annotation-only pattern of
    size k yields k A2A shapes, one per choice of RHS.
    """
    if len(itemset) < 2:
        return
    annotations = [item for item in itemset
                   if vocabulary.is_annotation_like(item)]
    if len(annotations) == 1:
        rhs = annotations[0]
        lhs = tuple(item for item in itemset if item != rhs)
        yield (RuleKind.DATA_TO_ANNOTATION, lhs, rhs)
    elif len(annotations) == len(itemset):
        for rhs in itemset:
            lhs = tuple(item for item in itemset if item != rhs)
            yield (RuleKind.ANNOTATION_TO_ANNOTATION, lhs, rhs)


def derive_rules(table: FrequentPatternTable,
                 thresholds: Thresholds,
                 db_size: int) -> tuple[RuleSet, list[AssociationRule]]:
    """(valid rules, near-miss candidate rules) from the current table.

    Every LHS count is read from the table — downward closure guarantees
    it is present for any stored union pattern.
    """
    valid = RuleSet()
    near_misses: list[AssociationRule] = []
    vocabulary = table._vocabulary  # same package; table owns the vocab
    for itemset, union_count in table.entries():
        for kind, lhs, rhs in iter_rule_shapes(itemset, vocabulary):
            lhs_count = table.count(lhs)
            if lhs_count is None:
                raise MaintenanceError(
                    f"pattern table lost closure: {lhs} missing while "
                    f"{itemset} is stored")
            rule = AssociationRule(
                kind=kind, lhs=lhs, rhs=rhs,
                union_count=union_count, lhs_count=lhs_count,
                db_size=db_size)
            if thresholds.is_valid(rule):
                valid.add(rule)
            elif thresholds.is_near_miss(rule):
                near_misses.append(rule)
    return valid, near_misses

"""Updating existing correlations — the paper's Figure 12.

The defining property of Case 3 maintenance is its access pattern: only
the *newly annotated* tuples are read.  A pattern's count increases by
exactly the number of δ tuples where the pattern (a) is contained in the
tuple's post-update item set and (b) includes at least one of the items
added by the batch — condition (b) is what certifies the pattern was not
already satisfied before the update, because the added items were absent
by construction.

The same walk with ``delta=-1`` over the *pre-update* item set handles
annotation removal (future-work extension), and with no required-items
filter it handles whole-tuple deletion.

Counting happens one of two ways.  The default walk *adjusts* stored
counts in place (``count += delta`` per touched tuple).  When the
caller hands in the engine's (already updated) vertical index, the
touched patterns are instead *recounted* exactly by bitmap-tidset
intersection — the ``counter="vertical"`` substrate.  Both produce the
same table because stored counts are exact before and after.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.annotation_index import VerticalIndex
from repro.core.deltas import EventAudit, PlanStats
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import AssociationRule, RuleKey
from repro.mining.itemsets import Itemset, Transaction
from repro.mining.tables import increment_counts, iter_table_subsets


@dataclass(frozen=True, slots=True)
class TupleDelta:
    """One tuple touched by a δ batch.

    ``after`` is the tuple's item set once the whole batch is applied;
    ``changed_items`` the annotation/label items the batch added to (or,
    for removals, removed from) this tuple.
    """

    tid: int
    after: Transaction
    changed_items: frozenset[int]


@dataclass
class PhaseTimings:
    """Structured wall-clock breakdown of one lifecycle operation.

    ``wall`` maps a phase name to the seconds the *parent* spent in it
    (phases of an initial mine: ``partition`` / ``encode`` / ``build``
    / ``mine`` / ``merge`` / ``refresh``; a routed flush uses
    ``partition`` / ``encode`` / ``build`` / ``mine`` on the pooled
    path or ``partition`` / ``apply`` on the thread path, plus the
    shared ``merge`` / ``refresh``).  ``per_shard`` maps a phase name
    to one duration per shard, in shard order, for the phases that run
    per shard (worker-side ``build`` and ``mine`` durations land here
    — the parent wall for those phases includes pool dispatch).
    """

    wall: dict[str, float] = field(default_factory=dict)
    per_shard: dict[str, list[float]] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.wall[phase] = self.wall.get(phase, 0.0) + seconds

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - started)

    def record_shards(self, phase: str, seconds: Iterable[float]) -> None:
        self.per_shard.setdefault(phase, []).extend(seconds)

    def __bool__(self) -> bool:
        return bool(self.wall or self.per_shard)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (benchmark rows, ``/metrics``, status)."""
        return {"wall": dict(self.wall),
                "per_shard": {phase: list(values)
                              for phase, values in self.per_shard.items()}}

    def summary(self) -> str:
        """Compact one-line breakdown for CLI status output."""
        return " ".join(f"{phase}={seconds * 1000:.1f}ms"
                        for phase, seconds in self.wall.items())


@dataclass
class MaintenanceReport:
    """What one update event did — returned by ``manager.apply``."""

    event: str
    db_size: int
    duration_seconds: float = 0.0
    #: Time spent in post-event invariant validation (0.0 when disabled).
    validation_seconds: float = 0.0
    patterns_touched: int = 0
    patterns_added: list[Itemset] = field(default_factory=list)
    patterns_pruned: list[Itemset] = field(default_factory=list)
    rules_added: list[AssociationRule] = field(default_factory=list)
    rules_dropped: list[RuleKey] = field(default_factory=list)
    rules_updated: int = 0
    table_size: int = 0
    candidate_count: int = 0
    tuples_scanned: int = 0
    #: Phase-level wall/per-shard timing breakdown (empty when the
    #: operation predates phase instrumentation, e.g. per-case reports).
    phases: PhaseTimings = field(default_factory=PhaseTimings)

    def summary(self) -> str:
        line = (f"{self.event}: db={self.db_size} "
                f"rules +{len(self.rules_added)}/-{len(self.rules_dropped)} "
                f"(~{self.rules_updated} updated), "
                f"patterns +{len(self.patterns_added)}"
                f"/-{len(self.patterns_pruned)} "
                f"({self.patterns_touched} refreshed), "
                f"{self.duration_seconds * 1000:.2f} ms")
        if self.phases:
            line += f" | {self.phases.summary()}"
        return line


@dataclass
class BatchReport:
    """What one coalesced batch of update events did.

    ``apply_batch`` runs the whole delta plan through one relation/index
    update, one maintenance walk per case, and **one** rule refresh —
    so rule- and table-level statistics live here, at batch granularity,
    while :attr:`case_reports` carries the per-case maintenance detail
    and :attr:`audits` the per-event provenance rows the serving layer
    and the event log still account for individually.
    """

    db_size: int
    #: Report label (mirrors ``MaintenanceReport.event`` so validation
    #: failures can name what was being applied).
    event: str = "apply-batch"
    #: Per-case maintenance reports, in application order (inserts,
    #: annotation adds, annotation removes, tuple deletes) — only the
    #: cases the plan actually exercised appear.
    case_reports: list[MaintenanceReport] = field(default_factory=list)
    #: One provenance row per submitted event, in submission order.
    audits: list[EventAudit] = field(default_factory=list)
    plan_stats: PlanStats = field(default_factory=PlanStats)
    duration_seconds: float = 0.0
    validation_seconds: float = 0.0
    #: Distinct patterns the dirty-scoped rule refresh re-derived from.
    patterns_dirty: int = 0
    #: Partitions a sharded engine routed sub-plans to (0 on the
    #: monolithic engine).
    shards_touched: int = 0
    rules_added: list[AssociationRule] = field(default_factory=list)
    rules_dropped: list[RuleKey] = field(default_factory=list)
    rules_updated: int = 0
    table_size: int = 0
    candidate_count: int = 0
    #: Phase-level wall/per-shard timing breakdown of this flush.
    phases: PhaseTimings = field(default_factory=PhaseTimings)

    @property
    def events(self) -> int:
        return len(self.audits)

    def __len__(self) -> int:
        return len(self.audits)

    def __iter__(self) -> Iterator[EventAudit]:
        return iter(self.audits)

    def summary(self) -> str:
        saved = (self.plan_stats.pairs_cancelled
                 + self.plan_stats.pairs_collapsed
                 + self.plan_stats.pairs_folded_into_inserts
                 + self.plan_stats.inserts_elided)
        line = (f"batch of {self.events} event(s): db={self.db_size} "
                f"rules +{len(self.rules_added)}/-{len(self.rules_dropped)} "
                f"(~{self.rules_updated} updated), "
                f"{self.patterns_dirty} dirty pattern(s), "
                f"{saved} op(s) coalesced away, "
                f"{self.duration_seconds * 1000:.2f} ms")
        if self.phases:
            line += f" | {self.phases.summary()}"
        return line


def _recount_touched(table: FrequentPatternTable,
                     index: VerticalIndex,
                     touched: Iterable[Itemset],
                     touched_out: set[Itemset] | None = None) -> int:
    """Set each touched pattern to its exact bitmap-intersection count.

    ``index`` must already reflect the update batch, so the
    intersection is the post-update truth; deduplication means one
    popcount per distinct pattern however many δ tuples hit it.
    """
    patterns = set(touched)
    for itemset in patterns:
        table.counts[itemset] = index.count(itemset)
    if touched_out is not None:
        touched_out |= patterns
    return len(patterns)


def _adjust_counts(table: FrequentPatternTable,
                   deltas: Sequence[TupleDelta],
                   *,
                   delta: int,
                   touched_out: set[Itemset] | None) -> int:
    """The horizontal walk: ``count += delta`` per (pattern, δ tuple)."""
    touched = 0
    for tuple_delta in deltas:
        touched += increment_counts(
            table.counts, tuple_delta.after,
            required_items=tuple_delta.changed_items, delta=delta,
            touched_out=touched_out)
    return touched


def refresh_for_added_items(table: FrequentPatternTable,
                            deltas: Sequence[TupleDelta],
                            *,
                            index: VerticalIndex | None = None,
                            touched_out: set[Itemset] | None = None) -> int:
    """Figure 12: bump counts of stored patterns newly satisfied by δ.

    Touches only the δ tuples.  A stored pattern gains one occurrence
    per δ tuple that contains it *and* where it includes a changed item
    (so it cannot have been satisfied before the batch).
    Returns the number of (pattern, tuple) increments performed — or,
    with ``index`` (the vertical counting substrate), the number of
    distinct patterns recounted by bitmap intersection.  With
    ``touched_out``, the identities of the touched patterns are
    collected there (the dirty set of the scoped rule refresh).
    """
    if index is not None:
        return _recount_touched(table, index, (
            itemset
            for delta in deltas
            for itemset in iter_table_subsets(
                table.counts, delta.after,
                required_items=delta.changed_items)), touched_out)
    return _adjust_counts(table, deltas, delta=1, touched_out=touched_out)


def decay_for_removed_items(table: FrequentPatternTable,
                            deltas: Sequence[TupleDelta],
                            *,
                            index: VerticalIndex | None = None,
                            touched_out: set[Itemset] | None = None) -> int:
    """Inverse walk for annotation removal.

    ``delta.after`` must hold the tuple's item set *before* the removal
    (the last state in which the patterns were satisfied) and
    ``changed_items`` the removed items.
    """
    if index is not None:
        return _recount_touched(table, index, (
            itemset
            for delta in deltas
            for itemset in iter_table_subsets(
                table.counts, delta.after,
                required_items=delta.changed_items)), touched_out)
    return _adjust_counts(table, deltas, delta=-1, touched_out=touched_out)


def decay_for_deleted_tuples(table: FrequentPatternTable,
                             old_transactions: Sequence[Transaction],
                             *,
                             index: VerticalIndex | None = None,
                             touched_out: set[Itemset] | None = None) -> int:
    """Remove a deleted tuple's contribution from every stored pattern."""
    if index is not None:
        return _recount_touched(table, index, (
            itemset
            for transaction in old_transactions
            for itemset in iter_table_subsets(table.counts, transaction)),
            touched_out)
    touched = 0
    for transaction in old_transactions:
        touched += increment_counts(table.counts, transaction, delta=-1,
                                    touched_out=touched_out)
    return touched


"""Update events — the paper's three cases plus the future-work pair.

Every mutation of an annotated database flows through one of these
events so the manager can route it to the matching incremental
algorithm:

* :class:`AddAnnotatedTuples`    — Case 1 (FUP-style increment mining);
* :class:`AddUnannotatedTuples`  — Case 2 (counts of annotation patterns
  frozen; supports dilute);
* :class:`AddAnnotations`        — Case 3, the paper's main contribution
  (the δ batch of ``(tid, annotation)`` pairs);
* :class:`RemoveAnnotations`, :class:`RemoveTuples` — the deletion
  support the paper lists as future work, implemented as an extension.
"""

from __future__ import annotations

import warnings
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import MaintenanceError


@dataclass(frozen=True, slots=True)
class AddAnnotatedTuples:
    """Case 1: new tuples that arrive already carrying annotations."""

    rows: tuple[tuple[tuple[str, ...], frozenset[str]], ...]

    @classmethod
    def build(cls, rows: Iterable[tuple[Sequence[str], Iterable[str]]]
              ) -> "AddAnnotatedTuples":
        packed = tuple((tuple(str(value) for value in values),
                        frozenset(annotations))
                       for values, annotations in rows)
        return cls(packed)

    def __post_init__(self) -> None:
        if not self.rows:
            raise MaintenanceError("AddAnnotatedTuples needs at least one row")


@dataclass(frozen=True, slots=True)
class AddUnannotatedTuples:
    """Case 2: new tuples without any annotations."""

    rows: tuple[tuple[str, ...], ...]

    @classmethod
    def build(cls, rows: Iterable[Sequence[str]]) -> "AddUnannotatedTuples":
        return cls(tuple(tuple(str(value) for value in values)
                         for values in rows))

    def __post_init__(self) -> None:
        if not self.rows:
            raise MaintenanceError(
                "AddUnannotatedTuples needs at least one row")


@dataclass(frozen=True, slots=True)
class AddAnnotations:
    """Case 3: the δ batch — new annotations on existing tuples.

    This is the file format of the paper's Figure 14 (``150: Annot_3``)
    lifted into an event.  Duplicate pairs are collapsed; attaching an
    annotation a tuple already has is a silent no-op at apply time (the
    paper counts each (tuple, annotation) pair at most once).
    """

    additions: tuple[tuple[int, str], ...]

    @classmethod
    def build(cls, additions: Iterable[tuple[int, str]]) -> "AddAnnotations":
        seen: set[tuple[int, str]] = set()
        packed: list[tuple[int, str]] = []
        for tid, annotation_id in additions:
            pair = (int(tid), str(annotation_id))
            if pair not in seen:
                seen.add(pair)
                packed.append(pair)
        return cls(tuple(packed))

    def __post_init__(self) -> None:
        if not self.additions:
            raise MaintenanceError("AddAnnotations needs at least one pair")

    def by_tid(self) -> dict[int, list[str]]:
        grouped: dict[int, list[str]] = {}
        for tid, annotation_id in self.additions:
            grouped.setdefault(tid, []).append(annotation_id)
        return grouped


@dataclass(frozen=True, slots=True)
class RemoveAnnotations:
    """Future-work extension: detach annotations from tuples."""

    removals: tuple[tuple[int, str], ...]

    @classmethod
    def build(cls, removals: Iterable[tuple[int, str]]) -> "RemoveAnnotations":
        return cls(tuple((int(tid), str(annotation_id))
                         for tid, annotation_id in dict.fromkeys(
                             (int(tid), str(annotation_id))
                             for tid, annotation_id in removals)))

    def __post_init__(self) -> None:
        if not self.removals:
            raise MaintenanceError("RemoveAnnotations needs at least one pair")

    def by_tid(self) -> dict[int, list[str]]:
        grouped: dict[int, list[str]] = {}
        for tid, annotation_id in self.removals:
            grouped.setdefault(tid, []).append(annotation_id)
        return grouped


@dataclass(frozen=True, slots=True)
class RemoveTuples:
    """Future-work extension: delete whole tuples."""

    tids: tuple[int, ...]

    @classmethod
    def build(cls, tids: Iterable[int]) -> "RemoveTuples":
        return cls(tuple(dict.fromkeys(int(tid) for tid in tids)))

    def __post_init__(self) -> None:
        if not self.tids:
            raise MaintenanceError("RemoveTuples needs at least one tid")


#: Union of every event the manager accepts.
UpdateEvent = (AddAnnotatedTuples | AddUnannotatedTuples | AddAnnotations
               | RemoveAnnotations | RemoveTuples)


@dataclass
class EventLog:
    """Ordered record of applied events (provenance / replay).

    By default the log grows without bound, which is what replay and
    the short-lived application sessions want.  Long-lived *served*
    sessions set ``max_events`` to rotate instead: once full, recording
    a new event drops the oldest one and :attr:`dropped` counts how
    many rotated out, so provenance consumers can tell a complete log
    from a windowed one.

    Rotation is a restart hazard — a restore that replays this log no
    longer reconstructs the full history — so the *first* drop of a
    log's lifetime also emits a :class:`RuntimeWarning`; after that the
    counter (surfaced through engine/service/tenant status) is the
    record.

    When a write-ahead journal is attached to the session,
    :attr:`ensure_durable` points at its ``sync`` — rotation then
    blocks on the journal fsync *before* evicting, so an event can
    only ever leave memory after it is safely on disk.  The
    :attr:`dropped` counter still counts every eviction: durability
    does not make the in-memory window any less windowed.
    """

    #: Stored as a list when unbounded, a ``deque(maxlen=...)`` when
    #: bounded (O(1) rotation).
    events: "list[UpdateEvent] | deque[UpdateEvent]" = field(
        default_factory=list)
    #: Retain at most this many events (``None`` = unbounded).
    max_events: int | None = None
    #: Events rotated out of a bounded log since its creation.
    dropped: int = 0
    #: Called (if set) before a rotation evicts an event — the durable
    #: journal's ``sync``.  A raised exception aborts the record, so a
    #: failed fsync never silently discards history.
    ensure_durable: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 1:
            raise MaintenanceError(
                f"EventLog max_events must be >= 1 or None, "
                f"got {self.max_events}")
        if self.max_events is not None:
            # Bounded logs rotate on every record once full, so the
            # storage must evict in O(1), not O(max_events).  A longer
            # pre-seeded list rotates here too — count what fell out.
            overflow = max(0, len(self.events) - self.max_events)
            if overflow:
                if self.ensure_durable is not None:
                    self.ensure_durable()
                self._count_drops(overflow)
            self.events = deque(self.events, maxlen=self.max_events)

    def record(self, event: UpdateEvent) -> None:
        if self.max_events is not None and len(self.events) == self.max_events:
            # Rotation eviction: with a journal attached, block on its
            # fsync first — nothing leaves memory before it is on disk.
            if self.ensure_durable is not None:
                self.ensure_durable()
            self._count_drops(1)  # the deque evicts the oldest on append
        self.events.append(event)

    def _count_drops(self, count: int) -> None:
        if self.dropped == 0:
            warnings.warn(
                f"EventLog rotating: max_events={self.max_events} "
                f"reached, oldest events are being dropped — replay / "
                f"provenance history is now windowed (this warns once; "
                f"the 'dropped' counter keeps the tally)",
                RuntimeWarning, stacklevel=3)
        self.dropped += count

    @property
    def complete(self) -> bool:
        """False once a bounded log has rotated events out."""
        return self.dropped == 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

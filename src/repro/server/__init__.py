"""The serving tier: a stdlib asyncio HTTP front-end for the service.

``repro.server`` packages four concerns the library layers deliberately
do not have: a multi-tenant HTTP surface (:mod:`repro.server.http`),
admission control with backpressure (:mod:`repro.server.admission`),
serving configuration (:mod:`repro.server.config`) and process-local
metrics (:mod:`repro.server.metrics`).  The app layer never imports
this package at runtime; the dependency points strictly downward.
"""

from repro.server.admission import AdmissionController, AdmissionDecision
from repro.server.config import ServerConfig
from repro.server.http import CorrelationServer, HttpError, Request
from repro.server.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceInstrumentation,
)
from repro.server.tenants import TenantRegistry, TenantState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CorrelationServer",
    "Counter",
    "Gauge",
    "Histogram",
    "HttpError",
    "MetricsRegistry",
    "Request",
    "ServerConfig",
    "ServiceInstrumentation",
    "TenantRegistry",
    "TenantState",
]

"""Multi-tenant registry and the JSON wire codecs.

One *tenant* is one named :class:`~repro.app.service.CorrelationService`
session — its own relation, engine config, update queue and rule
catalog — created, listed and dropped over HTTP.  The registry adds
what the service facade deliberately does not have:

* a **cached read snapshot** per tenant, refreshed after every
  server-driven mutation.  Read endpoints serve rules from this frozen
  :class:`~repro.app.service.RuleSnapshot` without touching the
  session's read-write lock at all, so a flush holding the write side
  can never stall the event loop or a read request — readers observe
  the last published revision until the flush lands (and the snapshot
  is revision-memoized upstream, so refreshing it copies zero rules);
* the engine-config template merge for ``POST /v1/tenants`` bodies;
* the event / rule JSON codecs shared by the endpoints, the CLI and
  the benchmark load generator.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.app.estimate import EstimatedRule
from repro.app.service import CorrelationService, RuleSnapshot
from repro.core.catalog import ALL_METRICS, RuleCatalog
from repro.core.config import EngineConfig
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
    UpdateEvent,
)
from repro.core.rules import AssociationRule, RuleKind
from repro.errors import (
    ItemKindError,
    MaintenanceError,
    ServerError,
    VocabularyError,
)
from repro.mining.itemsets import Item, ItemKind, ItemVocabulary
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema

#: Tenant names are one URL path segment, metrics-label safe, and must
#: not collide with the ``/v1/tenants`` collection route.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
RESERVED_TENANT_NAMES = frozenset({"tenants"})

#: ``EngineConfig`` fields a tenant-create body may set.
ENGINE_CONFIG_FIELDS = frozenset({
    "min_support", "min_confidence", "margin", "backend", "counter",
    "max_length", "max_log_events", "shards", "shard_workers",
    "shard_executor", "sketch_k", "track_candidates", "validate",
})


# -- engine config -------------------------------------------------------------

def engine_config_from_json(overrides: dict[str, Any] | None,
                            template: EngineConfig | None) -> EngineConfig:
    """Merge a JSON override dict onto the server's engine template.

    Without a template, ``min_support`` and ``min_confidence`` become
    required body fields.  Unknown keys are rejected by name — a typoed
    threshold must not silently fall back to the template.
    """
    overrides = dict(overrides or {})
    unknown = sorted(set(overrides) - ENGINE_CONFIG_FIELDS)
    if unknown:
        raise ServerError(
            f"unknown engine config field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(ENGINE_CONFIG_FIELDS))}")
    try:
        if template is not None:
            return template.replace(**overrides)
        return EngineConfig(**overrides)
    except TypeError as error:
        raise ServerError(
            f"incomplete engine config: {error}") from None
    # Threshold/backend validation errors (ReproError subclasses)
    # propagate — the endpoint layer maps them to 400.


def engine_config_to_json(config: EngineConfig) -> dict[str, Any]:
    return {
        "min_support": config.min_support,
        "min_confidence": config.min_confidence,
        "margin": config.margin,
        "backend": config.backend,
        "counter": config.counter,
        "max_length": config.max_length,
        "max_log_events": config.max_log_events,
        "shards": config.shards,
        "shard_workers": config.shard_workers,
        "shard_executor": config.shard_executor,
        "sketch_k": config.sketch_k,
    }


# -- event codec ---------------------------------------------------------------

def _pairs(raw: Any, noun: str) -> list[tuple[int, str]]:
    if not isinstance(raw, list):
        raise ServerError(f"{noun} must be a list of [tid, annotation] "
                          f"pairs, got {type(raw).__name__}")
    pairs = []
    for entry in raw:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)):
            raise ServerError(
                f"each {noun} entry must be [tid:int, annotation:str], "
                f"got {entry!r}")
        pairs.append((entry[0], entry[1]))
    return pairs


def _annotated_rows(raw: Any) -> list[tuple[list[str], list[str]]]:
    if not isinstance(raw, list):
        raise ServerError(f"rows must be a list, got {type(raw).__name__}")
    rows = []
    for entry in raw:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not isinstance(entry[0], (list, tuple))
                or not isinstance(entry[1], (list, tuple))):
            raise ServerError(
                f"each row must be [[value, ...], [annotation, ...]], "
                f"got {entry!r}")
        values, annotations = entry
        rows.append(([str(value) for value in values],
                     [str(annotation) for annotation in annotations]))
    return rows


def event_from_json(obj: Any) -> UpdateEvent:
    """Decode one update event from its wire form.

    The envelope is ``{"type": <kind>, ...payload}``; payload shapes
    mirror the event constructors.  Malformed envelopes raise
    :class:`~repro.errors.ServerError` (mapped to 400), including
    events the constructors themselves reject (e.g. empty batches).
    """
    if not isinstance(obj, dict):
        raise ServerError(f"event must be a JSON object, "
                          f"got {type(obj).__name__}")
    kind = obj.get("type")
    payload = {key: value for key, value in obj.items() if key != "type"}

    def _only(*fields: str) -> None:
        extra = sorted(set(payload) - set(fields))
        if extra:
            raise ServerError(
                f"unexpected field(s) {', '.join(extra)} for event "
                f"type {kind!r}")

    try:
        if kind == "add_annotations":
            _only("additions")
            return AddAnnotations.build(
                _pairs(payload.get("additions"), "additions"))
        if kind == "remove_annotations":
            _only("removals")
            return RemoveAnnotations.build(
                _pairs(payload.get("removals"), "removals"))
        if kind == "add_annotated_tuples":
            _only("rows")
            return AddAnnotatedTuples.build(
                _annotated_rows(payload.get("rows")))
        if kind == "add_unannotated_tuples":
            _only("rows")
            raw = payload.get("rows")
            if not isinstance(raw, list) or not all(
                    isinstance(row, (list, tuple)) for row in raw):
                raise ServerError(
                    "rows must be a list of [value, ...] lists")
            return AddUnannotatedTuples.build(
                [[str(value) for value in row] for row in raw])
        if kind == "remove_tuples":
            _only("tids")
            raw = payload.get("tids")
            if not isinstance(raw, list) or not all(
                    isinstance(tid, int) for tid in raw):
                raise ServerError("tids must be a list of integers")
            return RemoveTuples.build(raw)
    except MaintenanceError as error:
        raise ServerError(f"invalid {kind} event: {error}") from None
    raise ServerError(
        f"unknown event type {kind!r}; expected one of add_annotations, "
        f"remove_annotations, add_annotated_tuples, "
        f"add_unannotated_tuples, remove_tuples")


# -- rule codec ----------------------------------------------------------------

def rule_to_json(rule: AssociationRule,
                 vocabulary: ItemVocabulary,
                 catalog: RuleCatalog | None = None) -> dict[str, Any]:
    """One exact rule on the wire.  With ``catalog`` the significance
    tier (chi-square / p-value from the enriched contingency table) is
    included too — passed by endpoints whose query touched it."""
    payload = {
        "kind": rule.kind.value,
        "lhs": [vocabulary.item(item_id).token for item_id in rule.lhs],
        "rhs": vocabulary.item(rule.rhs).token,
        "support": rule.support,
        "confidence": rule.confidence,
        "lift": rule.lift,
        "union_count": rule.union_count,
        "lhs_count": rule.lhs_count,
        "rendered": rule.render(vocabulary),
    }
    if catalog is not None:
        chi_square, p_value = catalog.significance(rule)
        payload["chi_square"] = chi_square
        payload["p_value"] = p_value
    return payload


def estimated_rule_to_json(estimated: EstimatedRule,
                           vocabulary: ItemVocabulary) -> dict[str, Any]:
    """One approximate rule on the wire: every metric paired with its
    error bound, plus the ``estimated`` discriminator."""
    rule = estimated.rule
    est = estimated.estimate
    return {
        "kind": rule.kind.value,
        "lhs": [vocabulary.item(item_id).token for item_id in rule.lhs],
        "rhs": vocabulary.item(rule.rhs).token,
        "support": est.support,
        "support_bound": est.support_bound,
        "confidence": est.confidence,
        "confidence_bound": est.confidence_bound,
        "lift": est.lift,
        "lift_bound": est.lift_bound,
        "count": est.count,
        "exact": est.exact,
        "estimated": True,
        "rendered": estimated.render(vocabulary),
    }


def parse_rule_kind(raw: str) -> RuleKind:
    for kind in RuleKind:
        if raw == kind.value:
            return kind
    raise ServerError(
        f"unknown rule kind {raw!r}; expected "
        f"{' or '.join(kind.value for kind in RuleKind)}")


def parse_metric(raw: str) -> str:
    if raw not in ALL_METRICS:
        raise ServerError(f"unknown metric {raw!r}; expected one of "
                          f"{', '.join(ALL_METRICS)}")
    return raw


# -- the registry --------------------------------------------------------------

@dataclass
class TenantState:
    """Loop-visible state of one tenant."""

    name: str
    config: EngineConfig
    #: The frozen snapshot read endpoints serve from — replaced (never
    #: mutated) after each server-driven flush/mine.
    snapshot: RuleSnapshot
    #: The engine's vocabulary — append-only for the engine's lifetime,
    #: so rendering an *older* snapshot's item ids through it is safe.
    vocabulary: ItemVocabulary
    #: True while a watermark-triggered background flush is scheduled
    #: or running for this tenant (loop-thread only — coalesces
    #: triggers, the admission semaphore bounds actual concurrency).
    flush_scheduled: bool = field(default=False)


class TenantRegistry:
    """Tenant lifecycle over one :class:`CorrelationService`.

    Blocking methods (:meth:`create`, :meth:`refresh`, :meth:`drop`)
    are called by the server inside its thread-pool executor; lookups
    (:meth:`get`, :meth:`names`) are lock-cheap and loop-safe.
    """

    def __init__(self, service: CorrelationService, *,
                 default_engine: EngineConfig | None = None) -> None:
        self._service = service
        self._default_engine = default_engine
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantState] = {}

    @property
    def service(self) -> CorrelationService:
        return self._service

    # -- lifecycle -------------------------------------------------------------

    def create(self, name: str, *,
               columns: list[str] | None = None,
               rows: Any = None,
               config: dict[str, Any] | None = None,
               mine: bool = True) -> TenantState:
        """Create a tenant (blocking: runs the initial mine)."""
        if not isinstance(name, str) or not _TENANT_NAME.match(name):
            raise ServerError(
                f"tenant name must match [A-Za-z0-9._-]{{1,64}}, "
                f"got {name!r}")
        if name in RESERVED_TENANT_NAMES:
            raise ServerError(f"tenant name {name!r} is reserved")
        engine_config = engine_config_from_json(config, self._default_engine)
        relation = AnnotatedRelation(
            Schema([str(column) for column in columns]) if columns else None)
        if rows:
            for values, annotations in _annotated_rows(rows):
                relation.insert(values, annotations)
        snapshot = self._service.create(name, relation, engine_config,
                                        mine=mine)
        state = TenantState(
            name=name, config=engine_config, snapshot=snapshot,
            vocabulary=self._service.vocabulary(name))
        with self._lock:
            self._tenants[name] = state
        return state

    def adopt(self, name: str) -> TenantState:
        """Register an already-created service session (CLI preload)."""
        state = TenantState(
            name=name,
            config=self._service.config_of(name),
            snapshot=self._service.snapshot(name),
            vocabulary=self._service.vocabulary(name))
        with self._lock:
            self._tenants[name] = state
        return state

    def drop(self, name: str, *, force: bool = False) -> None:
        self.get(name)  # unknown tenants 404 before touching the service
        self._service.drop(name, force=force)
        with self._lock:
            self._tenants.pop(name, None)

    def get(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
        if state is None:
            raise ServerError(f"unknown tenant {name!r}")
        return state

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    # -- read path maintenance -------------------------------------------------

    def refresh(self, name: str) -> RuleSnapshot:
        """Re-take and publish the tenant's read snapshot (blocking:
        briefly holds the session's read lock).

        Publication is monotone by revision: two racing refreshes (say
        the tails of two back-to-back flushes) can call ``snapshot()``
        either side of another flush, so the later-arriving but
        older-revision result must not clobber the newer one.
        """
        snapshot = self._service.snapshot(name)
        with self._lock:
            state = self._tenants.get(name)
            if state is not None and (
                    snapshot.revision >= state.snapshot.revision):
                state.snapshot = snapshot
        return snapshot

    def resync(self, name: str) -> TenantState:
        """Re-capture snapshot, config *and* vocabulary together.

        :meth:`refresh` assumes the engine object survived the
        mutation, which makes its cached vocabulary still valid (it is
        append-only for the engine's lifetime).  A rebalance replaces
        the engine — new vocabulary, new item-id assignment — so the
        snapshot and the vocabulary it renders through must be swapped
        atomically, or a racing read would map the new snapshot's item
        ids through the old vocabulary and render the wrong tokens.
        """
        snapshot = self._service.snapshot(name)
        config = self._service.config_of(name)
        vocabulary = self._service.vocabulary(name)
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                raise ServerError(f"unknown tenant {name!r}")
            if snapshot.revision >= state.snapshot.revision:
                state.snapshot = snapshot
                state.config = config
                state.vocabulary = vocabulary
        return state

    # -- tenant status ---------------------------------------------------------

    def status(self, name: str) -> dict[str, Any]:
        """One tenant's status row (loop-safe: the only lock taken is
        the session queue mutex, for the live pending depth)."""
        state = self.get(name)
        snapshot = state.snapshot
        status = {
            "tenant": name,
            "backend": snapshot.backend,
            "revision": snapshot.revision,
            "rules": len(snapshot),
            "db_size": snapshot.db_size,
            "pending_events": self._service.pending(name),
            "config": engine_config_to_json(state.config),
        }
        status.update(self._service.log_status(name))
        journal = self._service.journal_status(name)
        if journal is not None:
            status["journal"] = journal
        return status

    def resolve_item(self, name: str, token: str) -> int | None:
        """Item id for ``token`` in the tenant's mined vocabulary, or
        ``None`` when no kind of item with that token was ever interned
        (such a token can appear in no rule)."""
        vocabulary = self.get(name).vocabulary
        for kind in (ItemKind.ANNOTATION, ItemKind.LABEL, ItemKind.DATA):
            try:
                return vocabulary.id_of(Item(kind, token))
            except (VocabularyError, ItemKindError):
                continue
        return None


__all__ = [
    "ENGINE_CONFIG_FIELDS",
    "TenantRegistry",
    "TenantState",
    "engine_config_from_json",
    "engine_config_to_json",
    "estimated_rule_to_json",
    "event_from_json",
    "parse_metric",
    "parse_rule_kind",
    "rule_to_json",
]

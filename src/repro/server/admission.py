"""Admission control for the write path: bounded queues, honest 429s.

The serving contract for writes is *bounded memory, explicit
backpressure*: a tenant's submit queue may hold at most
``max_pending_events`` events, and at most ``max_inflight_flushes``
flush/mine jobs run at once across all tenants.  Past either bound the
server does not buffer harder — it rejects with ``429 Too Many
Requests`` and a ``Retry-After`` hint derived from the tenant's recent
flush latency, so well-behaved clients converge on the rate the engine
can actually absorb.

This module is pure bookkeeping (no asyncio, no HTTP): the endpoint
layer asks :meth:`AdmissionController.admit_events` /
:meth:`admit_flush` and translates the returned decision.  Keeping it
synchronous makes the policy unit-testable without a running server.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.errors import ServerError
from repro.server.config import ServerConfig
from repro.server.metrics import MetricsRegistry

#: Weight of the newest observation in the per-tenant flush-latency
#: EWMA used to size Retry-After hints.
EWMA_ALPHA = 0.3


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: Queue depth the check saw (before the incoming events).
    queue_depth: int
    limit: int
    reason: str = ""
    #: Suggested client back-off (seconds); 0.0 when admitted.
    retry_after: float = 0.0

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Stateful admission policy shared by every write endpoint.

    Tracks, per tenant, an EWMA of flush wall-clock latency (fed by the
    server after each completed flush) and, globally, the number of
    in-flight blocking jobs.  Thread-safe: the flush latency feed
    arrives from executor threads while checks run on the event loop.
    """

    def __init__(self, config: ServerConfig,
                 registry: MetricsRegistry | None = None) -> None:
        self._config = config
        self._registry = registry if registry is not None \
            else MetricsRegistry()
        self._lock = threading.Lock()
        self._flush_ewma: dict[str, float] = {}
        self._inflight = 0

    # -- latency feedback ------------------------------------------------------

    def record_flush_seconds(self, tenant: str, seconds: float) -> None:
        """Fold one completed flush's wall-clock into the tenant EWMA."""
        with self._lock:
            previous = self._flush_ewma.get(tenant)
            self._flush_ewma[tenant] = (
                seconds if previous is None
                else EWMA_ALPHA * seconds + (1 - EWMA_ALPHA) * previous)

    def forget(self, tenant: str) -> None:
        """Drop per-tenant state (the tenant was deleted)."""
        with self._lock:
            self._flush_ewma.pop(tenant, None)

    def flush_estimate(self, tenant: str) -> float:
        """Current flush-latency estimate (0.0 with no history)."""
        with self._lock:
            return self._flush_ewma.get(tenant, 0.0)

    def retry_after(self, tenant: str, *, queue_depth: int) -> float:
        """Back-off hint: roughly how long until the queue has room.

        With latency history, one flush drains the whole queue, so the
        estimate is the EWMA scaled by how saturated the queue is (a
        queue two times over the trigger suggests two flush cycles).
        Clamped to the configured floor/cap so a cold tenant still
        backs off and a pathological one never sleeps forever.
        """
        estimate = self.flush_estimate(tenant)
        trigger = self._config.flush_trigger_depth
        cycles = 1.0
        if trigger:
            cycles = max(1.0, queue_depth / trigger)
        hint = estimate * cycles if estimate > 0 else 0.0
        return min(self._config.retry_after_cap,
                   max(self._config.retry_after_floor, hint))

    # -- admission checks ------------------------------------------------------

    def admit_events(self, tenant: str, *, pending: int,
                     incoming: int) -> AdmissionDecision:
        """May ``incoming`` events join a queue currently ``pending``
        deep?  Rejections are counted per tenant under
        ``admission_rejected`` with ``reason=queue_full``."""
        if incoming < 1:
            raise ServerError(
                f"admission check needs >= 1 incoming event, "
                f"got {incoming}")
        limit = self._config.max_pending_events
        if pending + incoming <= limit:
            return AdmissionDecision(admitted=True, queue_depth=pending,
                                     limit=limit)
        self._registry.counter("admission_rejected", tenant=tenant,
                               reason="queue_full").inc()
        return AdmissionDecision(
            admitted=False, queue_depth=pending, limit=limit,
            reason=(f"queue full: {pending} pending + {incoming} "
                    f"incoming > limit {limit}"),
            retry_after=self.retry_after(tenant, queue_depth=pending))

    def admit_flush(self, tenant: str) -> AdmissionDecision:
        """May another blocking flush/mine job start right now?

        On success the in-flight slot is *held* — the caller must pair
        it with :meth:`release_flush` (the server does so in a
        ``finally``).  Rejections count under ``admission_rejected``
        with ``reason=flushes_saturated``.
        """
        limit = self._config.max_inflight_flushes
        with self._lock:
            if self._inflight < limit:
                self._inflight += 1
                return AdmissionDecision(admitted=True,
                                         queue_depth=self._inflight - 1,
                                         limit=limit)
            inflight = self._inflight
        self._registry.counter("admission_rejected", tenant=tenant,
                               reason="flushes_saturated").inc()
        return AdmissionDecision(
            admitted=False, queue_depth=inflight, limit=limit,
            reason=f"{inflight} flushes already in flight (limit {limit})",
            retry_after=max(self._config.retry_after_floor,
                            self.flush_estimate(tenant)))

    def release_flush(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise ServerError(
                    "release_flush() without a matching admit_flush()")
            self._inflight -= 1

    @property
    def inflight_flushes(self) -> int:
        with self._lock:
            return self._inflight


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` is integer delta-seconds on the wire; round up
    so clients never retry early."""
    return str(max(1, math.ceil(seconds)))

"""Lightweight operational metrics: counters, gauges, histograms.

The serving tier needs live numbers — flush latency, queue depths,
admission rejections, per-endpoint request latency, snapshot hit
rates — without dragging in a metrics client.  This module is the
whole dependency: three thread-safe primitive types and a registry
that renders them as one JSON-friendly dict for ``GET /metrics``.

Design points:

* every metric is identified by a name plus an optional frozen label
  set (``registry.counter("admission_rejected", tenant="a")``), so the
  same logical series fans out per tenant / endpoint / status without
  string mangling at call sites;
* :class:`Histogram` keeps fixed cumulative buckets (count + sum +
  min/max), sized for request/flush latencies in seconds; quantile
  estimates interpolate inside the winning bucket, which is accurate
  enough for an operational read-out (benchmarks measure client-side);
* :class:`ServiceInstrumentation` is the bundle the serving tier
  threads into :class:`~repro.app.service.CorrelationService` — the
  service stays import-clean (it only ever calls ``observe``/``inc``
  on whatever it was handed).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Iterable, Mapping

from repro.errors import ServerError

#: Default latency buckets (seconds): sub-millisecond reads through
#: multi-second mines.  The terminal +inf bucket is implicit.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: Mapping[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone counter (``inc`` only)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServerError(f"counter increments must be >= 0, "
                              f"got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def render(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, tenant count)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Buckets are cumulative-style upper bounds; an observation lands in
    the first bucket whose bound is >= the value (or the implicit +inf
    tail).  :meth:`quantile` walks the non-cumulative counts and
    linearly interpolates inside the winning bucket — the tail bucket
    interpolates toward the observed maximum so a handful of slow
    outliers still produce a finite p99.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ServerError("histogram buckets must be positive")
        if len(set(bounds)) != len(bounds):
            raise ServerError("histogram buckets must be distinct")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf tail
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ServerError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            if self._count == 1 or self._min == self._max:
                # Interpolating inside a bucket would smear a single
                # (or constant) observation across the bucket's span,
                # making p50 and p99 disagree about a distribution with
                # exactly one point in it.  Report that point.
                return self._max
            rank = q * self._count
            seen = 0.0
            for index, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                if seen + bucket_count >= rank:
                    lower = self._bounds[index - 1] if index else 0.0
                    upper = (self._bounds[index]
                             if index < len(self._bounds)
                             else (self._max or lower))
                    upper = max(upper, lower)
                    fraction = (rank - seen) / bucket_count
                    return lower + (upper - lower) * min(1.0, fraction)
                seen += bucket_count
            return self._max or 0.0  # pragma: no cover — defensive

    def render(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            counts = list(self._counts)
            observed_min, observed_max = self._min, self._max
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": observed_min,
            "max": observed_max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {
                **{str(bound): bucket_count
                   for bound, bucket_count
                   in zip(self._bounds, counts)},
                "+inf": counts[-1],
            },
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named (and optionally labelled) metrics.

    ``registry.counter("x", tenant="a")`` and a later identical call
    return the *same* counter; asking for an existing name with a
    different metric type raises.  :meth:`render` groups label fan-outs
    under their base name, which is the ``GET /metrics`` payload.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelSet], Metric] = {}

    def _get_or_create(self, name: str, labels: Mapping[str, object],
                       factory, kind: type) -> Metric:
        if not name:
            raise ServerError("metric name must be non-empty")
        key = (name, _labelset(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            elif not isinstance(metric, kind):
                raise ServerError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(name, labels, Gauge, Gauge)

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        return self._get_or_create(
            name, labels, lambda: Histogram(buckets), Histogram)

    def render(self) -> dict:
        """One JSON-friendly dict: ``{name: rendered | {labels: rendered}}``.

        Unlabelled metrics render flat; labelled ones nest under a
        ``"k=v,k=v"`` key per series.
        """
        with self._lock:
            items = list(self._metrics.items())
        out: dict[str, dict] = {}
        for (name, labels), metric in items:
            rendered = metric.render()
            if not labels:
                out[name] = rendered
            else:
                series = out.setdefault(name, {"type": rendered["type"],
                                               "series": {}})
                key = ",".join(f"{k}={v}" for k, v in labels)
                series["series"][key] = rendered
        return out


class ServiceInstrumentation:
    """The metric bundle :class:`~repro.app.service.CorrelationService`
    reports into when the serving tier (or a test) hands it one.

    The service treats this as an opaque sink — it only calls the
    attributes below — so the app layer carries no import of the
    server package at runtime.
    """

    __slots__ = ("registry", "flush_seconds", "flush_batches",
                 "flushed_events", "flush_failures", "submitted_events",
                 "snapshot_hits", "snapshot_misses", "estimate_reads",
                 "estimate_seconds", "journal_appends",
                 "journal_append_seconds", "_prefix")

    def __init__(self, registry: MetricsRegistry | None = None,
                 *, prefix: str = "service") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._prefix = prefix
        reg = self.registry
        #: Wall-clock seconds per coalesced flush (write-lock hold).
        self.flush_seconds = reg.histogram(f"{prefix}_flush_seconds")
        self.flush_batches = reg.counter(f"{prefix}_flush_batches")
        self.flushed_events = reg.counter(f"{prefix}_flushed_events")
        self.flush_failures = reg.counter(f"{prefix}_flush_failures")
        self.submitted_events = reg.counter(f"{prefix}_submitted_events")
        #: Unchanged-revision snapshot reads served from the memo
        #: (zero rules copied) vs. rebuilds.
        self.snapshot_hits = reg.counter(f"{prefix}_snapshot_hits")
        self.snapshot_misses = reg.counter(f"{prefix}_snapshot_misses")
        #: Approximate-tier reads (mode=estimate) and their latency —
        #: the number the exact/estimate trade is judged by.
        self.estimate_reads = reg.counter(f"{prefix}_estimate_reads")
        self.estimate_seconds = reg.histogram(
            f"{prefix}_estimate_seconds")
        #: Write-ahead journal appends and their fsync-inclusive
        #: latency — the durability tax every flush pays up front.
        self.journal_appends = reg.counter(f"{prefix}_journal_appends")
        self.journal_append_seconds = reg.histogram(
            f"{prefix}_journal_append_seconds")

    def observe_phases(self, phases) -> None:
        """Record a report's phase-level wall timings as one labelled
        histogram series per phase (``<prefix>_phase_seconds``).

        ``phases`` is duck-typed (anything with a ``wall`` mapping of
        phase name -> seconds) so the app layer can hand over a
        :class:`~repro.core.maintenance.PhaseTimings` without this
        module importing it.
        """
        for phase, seconds in phases.wall.items():
            self.registry.histogram(
                f"{self._prefix}_phase_seconds",
                phase=phase).observe(seconds)

    def snapshot_hit_rate(self) -> float:
        hits = self.snapshot_hits.value
        total = hits + self.snapshot_misses.value
        return hits / total if total else 0.0

"""The asyncio HTTP/1.1 JSON serving tier in front of the service facade.

Stdlib only: :func:`asyncio.start_server` plus a small hand-rolled
HTTP/1.1 request reader (request line, headers, ``Content-Length``
bodies, keep-alive).  The interesting part is the concurrency contract,
not the protocol plumbing:

* **reads never block on writes.**  Every read endpoint serves from
  the tenant's cached, frozen :class:`~repro.app.service.RuleSnapshot`
  (refreshed after each server-driven flush), so it touches no session
  lock — a flush holding the writer-preferring lock stalls other
  flushes, never the event loop or a read;
* **writes are admitted, not buffered.**  ``POST .../events`` checks
  the per-tenant queue bound first and answers ``429`` with a
  ``Retry-After`` hint (sized from the tenant's recent flush latency)
  when the queue is full; queue memory is bounded by config, not by
  client enthusiasm;
* **blocking engine work never runs on the loop.**  Flush, mine,
  create and verify run in a thread-pool executor, gated by a global
  in-flight bound — saturating that bound is also a ``429``;
* **shutdown drains.**  ``shutdown()`` stops accepting, lets in-flight
  requests finish, completes scheduled background flushes, then
  flushes every tenant's remaining queue before the executor goes
  away — queued-but-unflushed writes survive a graceful stop.

Every endpoint is observable: per-endpoint request counters and
latency histograms, admission rejection counters, flush latency, queue
depths and snapshot hit rates all land in one
:class:`~repro.server.metrics.MetricsRegistry` served by
``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.app.estimate import ESTIMATE_METRICS
from repro.app.service import CorrelationService
from repro.core.catalog import SIGNIFICANCE_METRICS
from repro.core.rules import RuleKind
from repro.errors import ReproError, ServerError, SessionError
from repro.server.admission import AdmissionController, retry_after_header
from repro.server.config import ServerConfig
from repro.server.metrics import MetricsRegistry, ServiceInstrumentation
from repro.server.tenants import (
    TenantRegistry,
    TenantState,
    estimated_rule_to_json,
    event_from_json,
    parse_metric,
    parse_rule_kind,
    rule_to_json,
)

_REQUEST_LINE = re.compile(rb"^([A-Z]+) (\S+) HTTP/1\.[01]$")

#: Default page size for rule listings; ``limit`` caps at MAX_PAGE.
DEFAULT_PAGE = 50
MAX_PAGE = 1000


class HttpError(Exception):
    """An error with a definite HTTP mapping, raised by handlers."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None,
                 extra: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.extra = extra or {}


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str,
                 headers: dict[str, str], body: bytes) -> None:
        self.method = method
        split = urlsplit(target)
        self.path = split.path
        self.query = parse_qs(split.query, keep_blank_values=True)
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as error:
            raise HttpError(400, f"request body is not valid JSON: "
                                 f"{error}") from None

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[-1] if values else default

    def int_param(self, name: str, default: int, *,
                  minimum: int = 0, maximum: int | None = None) -> int:
        raw = self.param(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be an "
                                 f"integer, got {raw!r}") from None
        if value < minimum or (maximum is not None and value > maximum):
            bound = f">= {minimum}" if maximum is None \
                else f"in [{minimum}, {maximum}]"
            raise HttpError(400, f"query parameter {name!r} must be "
                                 f"{bound}, got {value}")
        return value

    def float_param(self, name: str) -> float | None:
        raw = self.param(name)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be a "
                                 f"number, got {raw!r}") from None

    def flag_param(self, name: str) -> bool:
        raw = self.param(name)
        return raw is not None and raw.lower() in ("", "1", "true", "yes")


#: (method, compiled path pattern, route id, handler attribute).
_ROUTES: list[tuple[str, re.Pattern, str, str]] = []


def _route(method: str, pattern: str, route_id: str):
    def decorate(handler):
        _ROUTES.append((method, re.compile(pattern), route_id,
                        handler.__name__))
        return handler
    return decorate


class CorrelationServer:
    """One serving process: tenants, endpoints, admission, metrics."""

    def __init__(self, config: ServerConfig | None = None, *,
                 service: CorrelationService | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = MetricsRegistry()
        self.instrumentation = ServiceInstrumentation(self.metrics)
        if service is None:
            service = CorrelationService(
                config=self.config.default_engine,
                instrumentation=self.instrumentation,
                journal_dir=self.config.journal_dir,
                journal_fsync=self.config.journal_fsync,
                journal_snapshot_every=self.config.journal_snapshot_every)
        self.service = service
        self.tenants = TenantRegistry(
            service, default_engine=self.config.default_engine)
        self.admission = AdmissionController(self.config, self.metrics)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve")
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._stopped = False
        self._inflight_requests = 0
        self._connections: set[asyncio.StreamWriter] = set()
        self._background_flushes: set[asyncio.Task] = set()
        self._started_at = time.monotonic()

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            raise ServerError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        if self._server is not None:
            raise ServerError("server already started")
        self._loop = asyncio.get_running_loop()
        # Recover journaled tenants before the socket opens: a client
        # that can connect must see the recovered catalogs, never a
        # window where a durable tenant 404s.
        await self._recover_journaled_tenants()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._started_at = time.monotonic()

    async def _recover_journaled_tenants(self) -> None:
        if self.config.journal_dir is None:
            return
        results = await self._run_blocking(self.service.restore_sessions)
        for name, result in results.items():
            self.tenants.adopt(name)
            self.metrics.counter("journal_recovered_tenants").inc()
            self.metrics.gauge("journal_replayed_records",
                               tenant=name).set(result.replay.records)
            self.metrics.gauge("journal_truncated_bytes",
                               tenant=name).set(result.truncated_bytes)
            self._publish_journal_gauges(name)

    def _publish_journal_gauges(self, name: str) -> None:
        """Mirror the tenant's durability position into gauges (any
        thread; the status read takes only the session registry lock)."""
        try:
            status = self.service.journal_status(name)
        except SessionError:
            return  # dropped mid-flight
        if status is None:
            return
        self.metrics.gauge("journal_last_seq", tenant=name).set(
            status["last_seq"])
        self.metrics.gauge("journal_lag", tenant=name).set(
            status["lag"])

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServerError("start() the server before serving")
        await self._server.serve_forever()

    async def run(self) -> None:
        """``start()`` + serve until cancelled, then drain gracefully."""
        await self.start()
        try:
            await self.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        and scheduled flushes, flush every remaining queue, stop."""
        if self._stopped:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout

        # 1. let in-flight requests finish (new writes already get 503).
        while self._inflight_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.005)

        # 2. let scheduled background flushes run to completion.
        pending_flushes = [task for task in self._background_flushes
                           if not task.done()]
        if pending_flushes:
            await asyncio.wait(
                pending_flushes,
                timeout=max(0.0, deadline - time.monotonic()))

        # 3. flush whatever is still queued, tenant by tenant — a
        # graceful stop must not discard acknowledged (202) writes.
        # Admission is bypassed: drain always proceeds.
        for name in self.tenants.names():
            try:
                if self.service.pending(name):
                    await self._run_blocking(self._flush_blocking, name)
            except Exception:
                self.metrics.counter("drain_flush_errors",
                                     tenant=name).inc()

        # 4. release engine-owned resources: shard pools hold live
        # worker processes and shared-memory leases that must not
        # outlive the server.  After the final flushes, so the pools
        # are idle when they are reaped.
        await self._run_blocking(self.service.close)

        # 5. tear down transport and executor.
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=True)
        self._stopped = True

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while not self._stopped:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.keep_alive_timeout)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ConnectionResetError):
                    break
                except HttpError as error:
                    # Protocol-level parse failure (bad request line,
                    # oversize body, chunked encoding): answer, then
                    # close — the stream position is unrecoverable.
                    self._write_response(
                        writer, error.status,
                        {"error": error.message, **error.extra},
                        dict(error.headers), keep_alive=False)
                    self.metrics.counter(
                        "http_requests", route="unparsed",
                        status=str(error.status)).inc()
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    break
                if request is None:
                    break
                self._inflight_requests += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self._inflight_requests -= 1
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive or self._draining:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self,
                            reader: asyncio.StreamReader) -> Request | None:
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        match = _REQUEST_LINE.match(line.rstrip(b"\r\n"))
        if not match:
            raise HttpError(400, f"malformed request line: "
                                 f"{line[:80]!r}")
        method = match.group(1).decode("ascii")
        target = match.group(2).decode("ascii", "replace")
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise HttpError(501, "chunked request bodies are not "
                                 "supported; send Content-Length")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                raise HttpError(400, f"bad Content-Length "
                                     f"{length!r}") from None
            if size > self.config.max_request_bytes:
                raise HttpError(
                    413, f"request body of {size} bytes exceeds the "
                         f"{self.config.max_request_bytes} byte limit")
            if size:
                body = await reader.readexactly(size)
        return Request(method, target, headers, body)

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route, run, respond.  Returns whether to keep the
        connection alive."""
        keep_alive = request.headers.get("connection", "").lower() != "close"
        route_id = "unmatched"
        status = 500
        payload: dict[str, Any]
        headers: dict[str, str] = {}
        started = time.perf_counter()
        try:
            route_id, handler, path_args = self._match(request)
            status, payload = await handler(request, **path_args)
        except HttpError as error:
            status = error.status
            payload = {"error": error.message, **error.extra}
            headers.update(error.headers)
        except ServerError as error:
            # Protocol-level faults from the codecs / registry that
            # reached dispatch unmapped: the client sent them.
            status, payload = 400, {"error": str(error)}
        except SessionError as error:
            status, payload = _session_error_response(error)
        except ReproError as error:
            status, payload = 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 — the server must answer
            status = 500
            payload = {"error": f"internal error: "
                                f"{type(error).__name__}: {error}"}
        self.metrics.counter("http_requests", route=route_id,
                             status=str(status)).inc()
        self.metrics.histogram("http_request_seconds",
                               route=route_id).observe(
            time.perf_counter() - started)
        self._write_response(writer, status, payload, headers,
                             keep_alive=keep_alive)
        return keep_alive

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        payload: dict[str, Any],
                        headers: dict[str, str], *,
                        keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers.setdefault("Content-Type", "application/json")
        headers["Content-Length"] = str(len(body))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
                     + body)

    def _match(self, request: Request
               ) -> tuple[str, Callable, dict[str, str]]:
        path_matched = False
        for method, pattern, route_id, handler_name in _ROUTES:
            match = pattern.match(request.path)
            if match is None:
                continue
            path_matched = True
            if method == request.method:
                return (route_id, getattr(self, handler_name),
                        match.groupdict())
        if path_matched:
            raise HttpError(405, f"method {request.method} not allowed "
                                 f"for {request.path}")
        raise HttpError(404, f"no route for {request.path}")

    # -- blocking-work plumbing ------------------------------------------------

    async def _run_blocking(self, fn: Callable, *args: Any) -> Any:
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, fn, *args)

    def _flush_blocking(self, name: str) -> Any:
        """Executor-side flush: apply the queue, feed the admission
        EWMA, republish the read snapshot."""
        started = time.perf_counter()
        report = self.service.flush(name)
        self.admission.record_flush_seconds(
            name, time.perf_counter() - started)
        self.tenants.refresh(name)
        self.metrics.gauge("queue_depth", tenant=name).set(
            self.service.pending(name))
        self._publish_journal_gauges(name)
        return report

    def _mine_blocking(self, name: str) -> Any:
        report = self.service.mine(name)
        self.tenants.refresh(name)
        return report

    def _maybe_schedule_flush(self, state: TenantState, *,
                              force: bool = False) -> bool:
        """Schedule one coalescing background flush once the tenant's
        queue crosses the watermark.  Loop-thread only; the
        ``flush_scheduled`` flag coalesces triggers and the admission
        bound caps global concurrency.  ``force=True`` (the estimate
        read path's exact-behind refresh) skips the watermark — any
        non-empty queue schedules — but still respects draining,
        coalescing and admission."""
        trigger = self.config.flush_trigger_depth
        if self._draining or (trigger is None and not force):
            return False
        if state.flush_scheduled:
            return True
        pending = self.service.pending(state.name)
        if pending == 0 or (not force and pending < trigger):
            return False
        if not self.admission.admit_flush(state.name):
            # The flush lanes are saturated; the queue keeps filling
            # until either a lane frees (a later submit reschedules) or
            # admission starts bouncing writes — which is the contract.
            return False
        state.flush_scheduled = True
        assert self._loop is not None
        task = self._loop.create_task(self._background_flush(state))
        self._background_flushes.add(task)
        task.add_done_callback(self._background_flushes.discard)
        return True

    async def _background_flush(self, state: TenantState) -> None:
        try:
            await self._run_blocking(self._flush_blocking, state.name)
        except Exception:
            self.metrics.counter("background_flush_errors",
                                 tenant=state.name).inc()
        finally:
            state.flush_scheduled = False
            self.admission.release_flush()
        # Writes kept landing while we flushed; re-check the watermark.
        try:
            self._maybe_schedule_flush(state)
        except ServerError:
            pass  # tenant dropped mid-flight

    # -- shared handler helpers ------------------------------------------------

    def _tenant(self, name: str) -> TenantState:
        try:
            return self.tenants.get(name)
        except ServerError as error:
            raise HttpError(404, str(error)) from None

    def _snapshot_view(self, name: str) -> tuple[TenantState, Any]:
        state = self._tenant(name)
        snapshot = state.snapshot
        if snapshot.catalog is None:
            raise HttpError(409, f"tenant {name!r} has no mined rules "
                                 f"yet — POST /v1/{name}/mine first")
        return state, snapshot

    def _reject_writes_while_draining(self) -> None:
        if self._draining:
            raise HttpError(503, "server is draining; no new writes")

    def _admit_flush_slot(self, tenant: str) -> None:
        decision = self.admission.admit_flush(tenant)
        if not decision:
            raise HttpError(
                429, decision.reason,
                headers={"Retry-After":
                         retry_after_header(decision.retry_after)},
                extra={"retry_after": decision.retry_after})

    @staticmethod
    def _page_params(request: Request) -> tuple[int, int]:
        offset = request.int_param("offset", 0, minimum=0)
        limit = request.int_param("limit", DEFAULT_PAGE, minimum=1,
                                  maximum=MAX_PAGE)
        return offset, limit

    @staticmethod
    def _kind_param(request: Request) -> RuleKind | None:
        raw = request.param("kind")
        if raw is None:
            return None
        try:
            return parse_rule_kind(raw)
        except ServerError as error:
            raise HttpError(400, str(error)) from None

    @staticmethod
    def _metric_param(request: Request, name: str = "by",
                      default: str = "confidence") -> str:
        raw = request.param(name, default)
        try:
            return parse_metric(raw)
        except ServerError as error:
            raise HttpError(400, str(error)) from None

    @staticmethod
    def _estimate_metric_param(request: Request,
                               name: str = "by") -> str:
        metric = request.param(name, "confidence")
        if metric not in ESTIMATE_METRICS:
            raise HttpError(
                400, f"estimate mode ranks by one of "
                     f"{', '.join(ESTIMATE_METRICS)}, got {metric!r}; "
                     f"significance metrics need exact mode")
        return metric

    @staticmethod
    def _confidence_level_param(request: Request) -> float | None:
        level = request.float_param("confidence_level")
        if level is not None and not 0.0 < level < 1.0:
            raise HttpError(400, f"confidence_level must be strictly "
                                 f"between 0 and 1, got {level}")
        return level

    async def _take_estimate(self, request: Request, tenant: str, *,
                             n: int | None, metric: str,
                             kind: RuleKind | None):
        """Run the approximate read on the executor (the first call per
        engine builds the sketches) and kick the exact-behind refresh
        when anything is pending.  Returns ``(estimate, scheduled)``."""
        state, _snapshot = self._snapshot_view(tenant)
        level = self._confidence_level_param(request)
        estimate = await self._run_blocking(
            lambda: self.service.estimate(
                tenant, n=n, by=metric, kind=kind,
                confidence_level=level))
        scheduled = False
        if estimate.pending_events and not self._draining:
            try:
                scheduled = self._maybe_schedule_flush(state, force=True)
            except ServerError:
                pass  # tenant dropped mid-flight
        return estimate, scheduled

    @staticmethod
    def _estimate_payload(tenant: str, estimate,
                          vocabulary) -> dict[str, Any]:
        return {
            "tenant": tenant,
            "revision": estimate.revision,
            "estimated": True,
            "db_size": estimate.db_size,
            "pending_events": estimate.pending_events,
            "overlay_rows": estimate.overlay_rows,
            "deferred_events": estimate.deferred_events,
            "z": estimate.z,
            "confidence_level": estimate.confidence_level,
            "count": len(estimate.rules),
            "rules": [estimated_rule_to_json(estimated, vocabulary)
                      for estimated in estimate.rules],
        }

    # -- operational endpoints -------------------------------------------------

    @_route("GET", r"^/healthz$", "healthz")
    async def _handle_healthz(self, request: Request) -> tuple[int, dict]:
        return 200, {
            "status": "draining" if self._draining else "ok",
            "tenants": len(self.tenants),
            "inflight_flushes": self.admission.inflight_flushes,
            "uptime_seconds": time.monotonic() - self._started_at,
        }

    @_route("GET", r"^/metrics$", "metrics")
    async def _handle_metrics(self, request: Request) -> tuple[int, dict]:
        # Queue depths are sampled at scrape time so the gauge is live
        # even for tenants that have never crossed a flush trigger.
        for name in self.tenants.names():
            try:
                self.metrics.gauge("queue_depth", tenant=name).set(
                    self.service.pending(name))
            except SessionError:
                continue  # dropped between names() and pending()
            self._publish_journal_gauges(name)
        self.metrics.gauge("tenants").set(len(self.tenants))
        return 200, {
            "metrics": self.metrics.render(),
            "derived": {
                "snapshot_hit_rate":
                    self.instrumentation.snapshot_hit_rate(),
            },
        }

    # -- tenant lifecycle endpoints --------------------------------------------

    @_route("POST", r"^/v1/tenants$", "tenant_create")
    async def _handle_tenant_create(self,
                                    request: Request) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "tenant create body must be a JSON "
                                 "object")
        name = body.get("name")
        if not isinstance(name, str):
            raise HttpError(400, "tenant create body needs a string "
                                 "'name'")
        unknown = sorted(set(body) - {"name", "columns", "rows",
                                      "config", "mine"})
        if unknown:
            raise HttpError(400, f"unknown tenant create field(s): "
                                 f"{', '.join(unknown)}")
        columns = body.get("columns")
        if columns is not None and (
                not isinstance(columns, list)
                or not all(isinstance(c, str) for c in columns)):
            raise HttpError(400, "'columns' must be a list of strings")
        mine = body.get("mine", True)
        if not isinstance(mine, bool):
            raise HttpError(400, "'mine' must be a boolean")
        # Tenant creation mines, which is blocking engine work: it
        # takes a flush lane and runs on the executor.
        self._admit_flush_slot(name)
        try:
            await self._run_blocking(
                lambda: self.tenants.create(
                    name, columns=columns, rows=body.get("rows"),
                    config=body.get("config"), mine=mine))
        finally:
            self.admission.release_flush()
        return 201, {"tenant": self.tenants.status(name)}

    @_route("GET", r"^/v1/tenants$", "tenant_list")
    async def _handle_tenant_list(self,
                                  request: Request) -> tuple[int, dict]:
        return 200, {"tenants": [self.tenants.status(name)
                                 for name in self.tenants.names()]}

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)$", "tenant_status")
    async def _handle_tenant_status(self, request: Request, *,
                                    tenant: str) -> tuple[int, dict]:
        self._tenant(tenant)
        return 200, self.tenants.status(tenant)

    @_route("DELETE", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)$", "tenant_drop")
    async def _handle_tenant_drop(self, request: Request, *,
                                  tenant: str) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        self._tenant(tenant)
        force = request.flag_param("force")
        try:
            self.tenants.drop(tenant, force=force)
        except SessionError as error:
            if "queued event" in str(error):
                # Pending writes refuse a silent drop; the caller must
                # either flush first or opt into discarding them.
                raise HttpError(409, str(error),
                                extra={"hint": "retry with ?force=true "
                                               "to discard queued "
                                               "events"}) from None
            raise
        self.admission.forget(tenant)
        return 200, {"dropped": tenant, "forced": force}

    # -- read endpoints (lock-free: served from the cached snapshot) -----------

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/rules$", "rules")
    async def _handle_rules(self, request: Request, *,
                            tenant: str) -> tuple[int, dict]:
        state, snapshot = self._snapshot_view(tenant)
        kind = self._kind_param(request)
        metric = self._metric_param(request)
        offset, limit = self._page_params(request)
        query = snapshot.catalog.query()
        if kind is not None:
            query = query.of_kind(kind)
        total = query.count()
        rules = query.order_by(metric).page(offset, limit).all()
        return 200, {
            "tenant": tenant,
            "revision": snapshot.revision,
            "db_size": snapshot.db_size,
            "order_by": metric,
            "total": total,
            "offset": offset,
            "count": len(rules),
            "rules": [rule_to_json(rule, state.vocabulary)
                      for rule in rules],
        }

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/rules/top$",
            "rules_top")
    async def _handle_rules_top(self, request: Request, *,
                                tenant: str) -> tuple[int, dict]:
        state, snapshot = self._snapshot_view(tenant)
        n = request.int_param("n", 10, minimum=1, maximum=MAX_PAGE)
        kind = self._kind_param(request)
        if request.flag_param("estimate"):
            metric = self._estimate_metric_param(request)
            estimate, scheduled = await self._take_estimate(
                request, tenant, n=n, metric=metric, kind=kind)
            payload = self._estimate_payload(tenant, estimate,
                                             state.vocabulary)
            payload["metric"] = metric
            payload["flush_scheduled"] = scheduled
            return 200, payload
        metric = self._metric_param(request)
        query = snapshot.catalog.query()
        if kind is not None:
            query = query.of_kind(kind)
        rules = query.top(n, by=metric)
        # A significance-ordered listing shows the numbers it sorted
        # by; base-metric listings stay byte-identical to before.
        significance = (snapshot.catalog
                        if metric in SIGNIFICANCE_METRICS else None)
        return 200, {
            "tenant": tenant,
            "revision": snapshot.revision,
            "db_size": snapshot.db_size,
            "metric": metric,
            "count": len(rules),
            "rules": [rule_to_json(rule, state.vocabulary, significance)
                      for rule in rules],
        }

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/rules/for-item$",
            "rules_for_item")
    async def _handle_rules_for_item(self, request: Request, *,
                                     tenant: str) -> tuple[int, dict]:
        state, snapshot = self._snapshot_view(tenant)
        token = request.param("token")
        if token is None:
            raise HttpError(400, "query parameter 'token' is required")
        role = request.param("role", "any")
        if role not in ("any", "rhs"):
            raise HttpError(400, f"role must be 'any' or 'rhs', "
                                 f"got {role!r}")
        offset, limit = self._page_params(request)
        item = self.tenants.resolve_item(tenant, token)
        rules: tuple = ()
        total = 0
        if item is not None:
            query = snapshot.catalog.query()
            query = (query.with_rhs(item) if role == "rhs"
                     else query.mentioning(item))
            total = query.count()
            rules = (query.order_by("confidence")
                     .page(offset, limit).all())
        return 200, {
            "tenant": tenant,
            "revision": snapshot.revision,
            "db_size": snapshot.db_size,
            "token": token,
            "role": role,
            "total": total,
            "offset": offset,
            "count": len(rules),
            "rules": [rule_to_json(rule, state.vocabulary)
                      for rule in rules],
        }

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/query$", "query")
    async def _handle_query(self, request: Request, *,
                            tenant: str) -> tuple[int, dict]:
        state, snapshot = self._snapshot_view(tenant)
        kind = self._kind_param(request)
        if request.flag_param("estimate"):
            return await self._handle_query_estimate(request, tenant,
                                                     kind=kind)
        query = snapshot.catalog.query()
        if kind is not None:
            query = query.of_kind(kind)
        for floor_name, setter in (("min_support", query.min_support),
                                   ("min_confidence",
                                    query.min_confidence),
                                   ("min_lift", query.min_lift)):
            value = request.float_param(floor_name)
            if value is not None:
                query = setter(value)
        significance_touched = False
        chi_floor = request.float_param("min_chi_square")
        if chi_floor is not None:
            query = query.min_chi_square(chi_floor)
            significance_touched = True
        p_ceiling = request.float_param("max_p_value")
        if p_ceiling is not None:
            query = query.max_p_value(p_ceiling)
            significance_touched = True
        for token_param, role in (("mentioning", "any"), ("rhs", "rhs")):
            token = request.param(token_param)
            if token is None:
                continue
            item = self.tenants.resolve_item(tenant, token)
            if item is None:
                # A token the vocabulary never interned matches nothing.
                query = query.where(lambda rule: False,
                                    label=f"unknown token {token!r}")
            elif role == "rhs":
                query = query.with_rhs(item)
            else:
                query = query.mentioning(item)
        metric = self._metric_param(request, "order_by")
        offset, limit = self._page_params(request)
        query = query.order_by(metric)
        total = query.count()
        paged = query.page(offset, limit)
        rules = paged.all()
        significance = (snapshot.catalog
                        if significance_touched
                        or metric in SIGNIFICANCE_METRICS else None)
        payload = {
            "tenant": tenant,
            "revision": snapshot.revision,
            "db_size": snapshot.db_size,
            "order_by": metric,
            "total": total,
            "offset": offset,
            "count": len(rules),
            "rules": [rule_to_json(rule, state.vocabulary, significance)
                      for rule in rules],
        }
        if request.flag_param("explain"):
            payload["explain"] = paged.explain().describe()
        return 200, payload

    async def _handle_query_estimate(self, request: Request, tenant: str,
                                     *, kind: RuleKind | None
                                     ) -> tuple[int, dict]:
        """The ``estimate=true`` leg of ``/query``: floors filter the
        *estimated* metrics, ordering is an estimate metric, and every
        returned value carries its bound.  Significance floors are an
        exact-tier feature — combining them with estimate mode is a
        client error, not a silent downgrade."""
        if (request.float_param("min_chi_square") is not None
                or request.float_param("max_p_value") is not None):
            raise HttpError(
                400, "min_chi_square / max_p_value need exact mode — "
                     "significance is computed from exact contingency "
                     "tables, not sketch estimates")
        for unsupported in ("mentioning", "rhs"):
            if request.param(unsupported) is not None:
                raise HttpError(
                    400, f"query parameter {unsupported!r} is not "
                         f"supported with estimate=true")
        metric = self._estimate_metric_param(request, "order_by")
        offset, limit = self._page_params(request)
        floors = [(name, request.float_param(name))
                  for name in ("min_support", "min_confidence",
                               "min_lift")]
        estimate, scheduled = await self._take_estimate(
            request, tenant, n=None, metric=metric, kind=kind)
        matched = [
            estimated for estimated in estimate.rules
            if all(value is None
                   or estimated.metric(name.removeprefix("min_")) >= value
                   for name, value in floors)
        ]
        state = self._tenant(tenant)
        payload = self._estimate_payload(
            tenant, estimate, state.vocabulary)
        payload["rules"] = [
            estimated_rule_to_json(estimated, state.vocabulary)
            for estimated in matched[offset:offset + limit]]
        payload.update({
            "order_by": metric,
            "total": len(matched),
            "offset": offset,
            "count": len(payload["rules"]),
            "flush_scheduled": scheduled,
        })
        return 200, payload

    @_route("GET", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/verify$", "verify")
    async def _handle_verify(self, request: Request, *,
                             tenant: str) -> tuple[int, dict]:
        self._tenant(tenant)
        # A verify is a full re-mine — blocking engine work on a flush
        # lane, same as mine, even though it mutates nothing.
        self._admit_flush_slot(tenant)
        try:
            result = await self._run_blocking(self.service.verify, tenant)
        finally:
            self.admission.release_flush()
        return 200, {
            "tenant": tenant,
            "equivalent": result.equivalent,
            "detail": result.explain(),
        }

    # -- write endpoints -------------------------------------------------------

    def _submit_events(self, tenant: str, events: list) -> tuple[int, dict]:
        state = self._tenant(tenant)
        decision = self.admission.admit_events(
            tenant, pending=self.service.pending(tenant),
            incoming=len(events))
        if not decision:
            raise HttpError(
                429, decision.reason,
                headers={"Retry-After":
                         retry_after_header(decision.retry_after)},
                extra={"retry_after": decision.retry_after,
                       "queue_depth": decision.queue_depth,
                       "limit": decision.limit})
        depth = 0
        for event in events:
            depth = self.service.submit(tenant, event)
        self.metrics.gauge("queue_depth", tenant=tenant).set(depth)
        scheduled = self._maybe_schedule_flush(state)
        return 202, {
            "tenant": tenant,
            "queued": len(events),
            "queue_depth": depth,
            "flush_scheduled": scheduled,
        }

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/events$", "events")
    async def _handle_events(self, request: Request, *,
                             tenant: str) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        try:
            event = event_from_json(request.json())
        except ServerError as error:
            raise HttpError(400, str(error)) from None
        return self._submit_events(tenant, [event])

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/events:batch$",
            "events_batch")
    async def _handle_events_batch(self, request: Request, *,
                                   tenant: str) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
                body.get("events"), list):
            raise HttpError(400, "batch body must be "
                                 "{\"events\": [event, ...]}")
        raw_events = body["events"]
        if not raw_events:
            raise HttpError(400, "batch body must contain at least one "
                                 "event")
        try:
            events = [event_from_json(raw) for raw in raw_events]
        except ServerError as error:
            raise HttpError(400, str(error)) from None
        return self._submit_events(tenant, events)

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/flush$", "flush")
    async def _handle_flush(self, request: Request, *,
                            tenant: str) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        self._tenant(tenant)
        self._admit_flush_slot(tenant)
        try:
            report = await self._run_blocking(self._flush_blocking, tenant)
        finally:
            self.admission.release_flush()
        snapshot = self._tenant(tenant).snapshot
        return 200, {
            "tenant": tenant,
            "events_applied": report.events,
            "duration_seconds": report.duration_seconds,
            "db_size": report.db_size,
            "rules_added": len(report.rules_added),
            "rules_dropped": len(report.rules_dropped),
            "revision": snapshot.revision,
            "rules": len(snapshot),
        }

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/mine$", "mine")
    async def _handle_mine(self, request: Request, *,
                           tenant: str) -> tuple[int, dict]:
        self._reject_writes_while_draining()
        self._tenant(tenant)
        self._admit_flush_slot(tenant)
        try:
            report = await self._run_blocking(self._mine_blocking, tenant)
        finally:
            self.admission.release_flush()
        snapshot = self._tenant(tenant).snapshot
        return 200, {
            "tenant": tenant,
            "duration_seconds": report.duration_seconds,
            "db_size": snapshot.db_size,
            "revision": snapshot.revision,
            "rules": len(snapshot),
        }

    # -- durability / layout endpoints -----------------------------------------

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/rebalance$",
            "rebalance")
    async def _handle_rebalance(self, request: Request, *,
                                tenant: str) -> tuple[int, dict]:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "rebalance body must be a JSON object")
        unknown = sorted(set(body) - {"shards", "dry_run"})
        if unknown:
            raise HttpError(400, f"unknown rebalance field(s): "
                                 f"{', '.join(unknown)}")
        shards = body.get("shards")
        if shards is not None and (not isinstance(shards, int)
                                   or isinstance(shards, bool)
                                   or shards < 1):
            raise HttpError(400, "'shards' must be an integer >= 1")
        dry_run = body.get("dry_run", False)
        if not isinstance(dry_run, bool):
            raise HttpError(400, "'dry_run' must be a boolean")
        self._tenant(tenant)
        if dry_run:
            report = await self._run_blocking(
                lambda: self.service.rebalance(tenant, shards=shards,
                                               dry_run=True))
            return 200, report.as_dict()
        # Applying rebuilds the engine — blocking work on a flush lane,
        # and a write as far as draining is concerned.
        self._reject_writes_while_draining()
        self._admit_flush_slot(tenant)
        try:
            report = await self._run_blocking(
                lambda: self.service.rebalance(tenant, shards=shards))
        finally:
            self.admission.release_flush()
        # resync, not refresh: the engine (and its vocabulary) was
        # replaced — snapshot and vocabulary must swap together.
        self.tenants.resync(tenant)
        self._publish_journal_gauges(tenant)
        return 200, report.as_dict()

    @_route("POST", r"^/v1/(?P<tenant>[A-Za-z0-9._-]+)/checkpoint$",
            "checkpoint")
    async def _handle_checkpoint(self, request: Request, *,
                                 tenant: str) -> tuple[int, dict]:
        self._tenant(tenant)
        status = self.service.journal_status(tenant)
        if status is None:
            raise HttpError(409, f"tenant {tenant!r} has no journal — "
                                 f"the server was started without "
                                 f"--journal-dir")
        result = await self._run_blocking(self.service.checkpoint, tenant)
        self._publish_journal_gauges(tenant)
        return 200, {"tenant": tenant, "journal": result}


def _session_error_response(error: SessionError) -> tuple[int, dict]:
    message = str(error)
    if "unknown session" in message:
        return 404, {"error": message}
    if "already exists" in message:
        return 409, {"error": message}
    return 409, {"error": message}


_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}

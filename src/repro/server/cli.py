"""``repro serve`` — run the correlation serving tier from the shell.

::

    python -m repro serve --port 8765 --min-support 0.4 \\
        --min-confidence 0.6 --preload demo=data.txt

Tenants are usually created over HTTP (``POST /v1/tenants``);
``--preload`` registers dataset files as tenants before the socket
opens, so a scripted deployment can serve a known corpus immediately.
The process drains on SIGINT/SIGTERM: in-flight requests finish and
every tenant's queued events are flushed before exit.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.core.config import EngineConfig
from repro.errors import ReproError
from repro.io.dataset_format import read_dataset
from repro.server.config import ServerConfig
from repro.server.http import CorrelationServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve annotated-correlation rule mining over HTTP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (0 picks an ephemeral port and "
                             "prints it)")
    engine = parser.add_argument_group(
        "default engine (tenants created without an explicit config)")
    engine.add_argument("--min-support", type=float, default=0.4)
    engine.add_argument("--min-confidence", type=float, default=0.6)
    engine.add_argument("--backend", default=None,
                        help="mining backend name (default: engine "
                             "default)")
    engine.add_argument("--shards", type=int, default=1)
    engine.add_argument("--max-log-events", type=int, default=100_000,
                        help="rotate each tenant's provenance log past "
                             "this many events (0 = unbounded)")
    admission = parser.add_argument_group("admission / backpressure")
    admission.add_argument("--max-pending-events", type=int,
                           default=10_000)
    admission.add_argument("--flush-watermark", type=float, default=0.5,
                           help="background-flush trigger as a fraction "
                                "of --max-pending-events (0 disables "
                                "background flushing)")
    admission.add_argument("--max-inflight-flushes", type=int, default=2)
    admission.add_argument("--executor-workers", type=int, default=4)
    admission.add_argument("--drain-timeout", type=float, default=30.0)
    durability = parser.add_argument_group("durability")
    durability.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="write-ahead journal root: every flush is journaled "
             "before it mutates the engine, and journaled tenants "
             "found under DIR are recovered before the socket opens")
    durability.add_argument(
        "--journal-no-fsync", action="store_true",
        help="skip the per-append fsync (faster; survives process "
             "crashes but not machine crashes)")
    durability.add_argument(
        "--journal-snapshot-every", type=int, default=64,
        metavar="N",
        help="write a compacted snapshot every N journaled records "
             "(0 disables periodic snapshots; default 64)")
    parser.add_argument("--preload", action="append", default=[],
                        metavar="NAME=DATASET",
                        help="create tenant NAME from a Figure 4 dataset "
                             "file before serving (repeatable)")
    return parser


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    extra = {}
    if args.backend is not None:
        extra["backend"] = args.backend
    return EngineConfig(
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        shards=args.shards,
        max_log_events=args.max_log_events or None,
        **extra)


def build_server(args: argparse.Namespace) -> CorrelationServer:
    config = ServerConfig(
        host=args.host,
        port=args.port,
        default_engine=_engine_config(args),
        max_pending_events=args.max_pending_events,
        flush_watermark=args.flush_watermark or None,
        max_inflight_flushes=args.max_inflight_flushes,
        executor_workers=args.executor_workers,
        drain_timeout=args.drain_timeout,
        journal_dir=args.journal_dir,
        journal_fsync=not args.journal_no_fsync,
        journal_snapshot_every=args.journal_snapshot_every or None)
    server = CorrelationServer(config)
    for spec in args.preload:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"--preload wants NAME=DATASET, got {spec!r}")
        relation = read_dataset(path)
        server.service.create(name, relation,
                              config=config.default_engine)
        server.tenants.adopt(name)
        print(f"preloaded tenant {name!r}: {len(relation)} tuples, "
              f"{len(server.tenants.get(name).snapshot)} rules",
              file=sys.stderr)
    return server


async def _serve(server: CorrelationServer) -> None:
    await server.start()
    if server.config.journal_dir is not None and len(server.tenants):
        print(f"journal recovery: serving {len(server.tenants)} "
              f"tenant(s): {', '.join(server.tenants.names())}",
              file=sys.stderr)
    print(f"repro serve listening on "
          f"http://{server.config.host}:{server.port}", file=sys.stderr)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-Unix loop
            pass
    serving = asyncio.ensure_future(server.serve_forever())
    waiting = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait({serving, waiting},
                           return_when=asyncio.FIRST_COMPLETED)
    finally:
        serving.cancel()
        waiting.cancel()
        print("draining...", file=sys.stderr)
        await server.shutdown()
        print("drained; bye", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        server = build_server(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro.server`` — same as ``python -m repro serve``."""

from repro.server.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

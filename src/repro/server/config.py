"""Serving-tier configuration: one frozen object, validated eagerly.

Mirrors :class:`~repro.core.config.EngineConfig`'s philosophy — every
operational knob of :class:`~repro.server.http.CorrelationServer` lives
here, validation happens where the config is written, and a config can
be shared or templated with :meth:`ServerConfig.replace` without
aliasing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dataclass_replace
from typing import Any

from repro.core.config import EngineConfig
from repro.errors import ServerError


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Complete configuration of one serving process."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (tests, smoke jobs) which
    #: ``CorrelationServer.port`` reports after ``start()``.
    port: int = 8765
    #: Default engine template for tenants created without an explicit
    #: config; ``POST /v1/tenants`` overrides individual fields.
    default_engine: EngineConfig | None = None
    #: Admission limit: events queued (pending + incoming batch) per
    #: tenant before writes are rejected with 429 + Retry-After.
    max_pending_events: int = 10_000
    #: Background flush trigger, as a fraction of
    #: :attr:`max_pending_events`; once a tenant's queue crosses it the
    #: server schedules one coalescing flush.  ``None`` disables
    #: server-initiated flushes (tests drive them explicitly).
    flush_watermark: float | None = 0.5
    #: Global bound on concurrently running flush/mine jobs; writes
    #: beyond it are not queued but rejected with 429, keeping both
    #: memory and executor backlog bounded.
    max_inflight_flushes: int = 2
    #: Thread-pool width for blocking engine work (flush, mine, create,
    #: verify).  Must accommodate :attr:`max_inflight_flushes` plus at
    #: least one slot for non-flush jobs.
    executor_workers: int = 4
    #: Floor (seconds) for computed Retry-After hints; the estimate
    #: scales with the tenant's recent flush latency.
    retry_after_floor: float = 0.25
    #: Ceiling (seconds) for Retry-After hints.
    retry_after_cap: float = 30.0
    #: Graceful-shutdown budget (seconds) for in-flight requests and
    #: the final drain flushes.
    drain_timeout: float = 30.0
    #: Largest accepted request body (bytes) — oversized writes get 413.
    max_request_bytes: int = 8 * 1024 * 1024
    #: Idle keep-alive connections are closed after this many seconds.
    keep_alive_timeout: float = 60.0
    #: Root directory for per-tenant write-ahead journals.  ``None``
    #: (the default) serves purely in memory; set, every flush is
    #: journaled before it mutates the engine and ``start()`` recovers
    #: any journaled tenants found on disk before the socket opens.
    journal_dir: str | None = None
    #: fsync each journal append (durable through power loss).  Off,
    #: appends only reach the OS page cache — faster, and still safe
    #: across process crashes, but not across machine crashes.
    journal_fsync: bool = True
    #: Write a compacted snapshot every N journaled records (bounds
    #: recovery replay time); ``None`` disables periodic snapshots.
    journal_snapshot_every: int | None = 64

    def __post_init__(self) -> None:
        if not self.host:
            raise ServerError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ServerError(f"port must be in [0, 65535], got {self.port}")
        if self.max_pending_events < 1:
            raise ServerError(
                f"max_pending_events must be >= 1, "
                f"got {self.max_pending_events}")
        if (self.flush_watermark is not None
                and not 0.0 < self.flush_watermark <= 1.0):
            raise ServerError(
                f"flush_watermark must be in (0, 1] or None, "
                f"got {self.flush_watermark}")
        if self.max_inflight_flushes < 1:
            raise ServerError(
                f"max_inflight_flushes must be >= 1, "
                f"got {self.max_inflight_flushes}")
        if self.executor_workers <= self.max_inflight_flushes:
            raise ServerError(
                f"executor_workers ({self.executor_workers}) must exceed "
                f"max_inflight_flushes ({self.max_inflight_flushes}) so "
                f"non-flush jobs (create, drain, verify) cannot starve")
        if self.retry_after_floor <= 0:
            raise ServerError(
                f"retry_after_floor must be > 0, "
                f"got {self.retry_after_floor}")
        if self.retry_after_cap < self.retry_after_floor:
            raise ServerError(
                f"retry_after_cap ({self.retry_after_cap}) must be >= "
                f"retry_after_floor ({self.retry_after_floor})")
        if self.drain_timeout <= 0:
            raise ServerError(
                f"drain_timeout must be > 0, got {self.drain_timeout}")
        if self.max_request_bytes < 1024:
            raise ServerError(
                f"max_request_bytes must be >= 1024, "
                f"got {self.max_request_bytes}")
        if self.keep_alive_timeout <= 0:
            raise ServerError(
                f"keep_alive_timeout must be > 0, "
                f"got {self.keep_alive_timeout}")
        if self.journal_dir is not None and not self.journal_dir:
            raise ServerError("journal_dir must be a non-empty path "
                              "or None")
        if (self.journal_snapshot_every is not None
                and self.journal_snapshot_every < 1):
            raise ServerError(
                f"journal_snapshot_every must be >= 1 or None, "
                f"got {self.journal_snapshot_every}")

    @property
    def flush_trigger_depth(self) -> int | None:
        """Queue depth at which a background flush is scheduled."""
        if self.flush_watermark is None:
            return None
        return max(1, int(self.max_pending_events * self.flush_watermark))

    def replace(self, **changes: Any) -> "ServerConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return _dataclass_replace(self, **changes)

"""Full re-mining baseline used by every equivalence check."""

"""Full re-mining baseline.

The paper verifies every incremental case by "manually adding in [the
update] and running the original apriori algorithm over the newly
updated dataset", then checking the rule sets are identical; and its
Figure 16 compares the incremental path's run time against exactly this
baseline.  :func:`remine` builds a *fresh* manager over a deep copy of
the relation and mines from scratch — no shared state with the
incremental manager beyond the relation's logical content.
"""

from __future__ import annotations

from repro.core.manager import AnnotationRuleManager
from repro.core.stats import DEFAULT_MARGIN
from repro.relation.relation import AnnotatedRelation


def remine(relation: AnnotatedRelation,
           *,
           min_support: float,
           min_confidence: float,
           margin: float = DEFAULT_MARGIN,
           generalizer=None,
           max_length: int | None = None,
           counter: str = "auto") -> AnnotationRuleManager:
    """Mine ``relation`` from scratch; returns the fresh manager.

    The relation is copied first, so re-mining never interferes with an
    incremental manager tracking the original (label application during
    mining mutates tuples).
    """
    manager = AnnotationRuleManager(
        relation.copy(),
        min_support=min_support,
        min_confidence=min_confidence,
        margin=margin,
        generalizer=generalizer,
        max_length=max_length,
        counter=counter,
    )
    manager.mine()
    return manager


def signatures_match(incremental: AnnotationRuleManager,
                     baseline: AnnotationRuleManager) -> bool:
    """Structural rule-set equality across independently built managers."""
    return incremental.signature() == baseline.signature()

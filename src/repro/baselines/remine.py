"""Full re-mining baseline.

The paper verifies every incremental case by "manually adding in [the
update] and running the original apriori algorithm over the newly
updated dataset", then checking the rule sets are identical; and its
Figure 16 compares the incremental path's run time against exactly this
baseline.  :func:`remine` builds a *fresh* engine over a deep copy of
the relation and mines from scratch — no shared state with the
incremental engine beyond the relation's logical content.  The baseline
honours the caller's mining backend so each backend is verified against
its own from-scratch run.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.engine import CorrelationEngine
from repro.core.stats import DEFAULT_MARGIN
from repro.mining.backend import DEFAULT_BACKEND
from repro.relation.relation import AnnotatedRelation


def remine(relation: AnnotatedRelation,
           *,
           min_support: float,
           min_confidence: float,
           margin: float = DEFAULT_MARGIN,
           generalizer=None,
           max_length: int | None = None,
           counter: str = "auto",
           backend: str = DEFAULT_BACKEND) -> CorrelationEngine:
    """Mine ``relation`` from scratch; returns the fresh engine.

    The relation is copied first, so re-mining never interferes with an
    incremental engine tracking the original (label application during
    mining mutates tuples).
    """
    fresh = CorrelationEngine(relation.copy(), EngineConfig(
        min_support=min_support,
        min_confidence=min_confidence,
        margin=margin,
        backend=backend,
        generalizer=generalizer,
        max_length=max_length,
        counter=counter,
    ))
    fresh.mine()
    return fresh


def signatures_match(incremental: CorrelationEngine,
                     baseline: CorrelationEngine) -> bool:
    """Structural rule-set equality across independently built engines."""
    return incremental.signature() == baseline.signature()

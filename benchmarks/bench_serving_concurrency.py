"""E12 — the serving tier under concurrency: reads racing writes.

The serving claim of the stack is that the read path never queues
behind the write path: read endpoints answer from the tenant's cached
frozen snapshot, while flushes run in the executor behind an admission
bound.  This experiment measures that claim from the *client side* of
a real socket:

1. **read-only baseline** — concurrent reader threads replay a mixed
   endpoint log (rules, top-k, for-item, query) and we take client
   p50/p99;
2. **mixed load** — the same readers race writer threads that stream
   annotation events through the watermark-triggered background
   flushes.  Acceptance: mixed-load read p99 stays under 10x the
   read-only p99 (reads degrade, but never collapse behind flushes);
3. **saturation** — a tenant with a tiny queue bound is hammered past
   it.  Acceptance: the overflow answers are 429s (bounded memory,
   honest backpressure), not buffering or failure;
4. **drain** — the server shuts down with queued events everywhere and
   every tenant must pass incremental-vs-remine ``verify()`` after the
   drain flush.

Every scenario appends a machine-readable row to
``benchmarks/out/BENCH_serving.json`` (p50/p99 in milliseconds) next
to the human-readable record.

CI smoke shrinks the scale: ``REPRO_SERVE_TUPLES``,
``REPRO_SERVE_READERS``, ``REPRO_SERVE_REQUESTS``.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.server import CorrelationServer, ServerConfig
from repro.synth import workloads
from benchmarks._harness import OUT_DIR, fmt_ms, record

N_TUPLES = int(os.environ.get("REPRO_SERVE_TUPLES", "800"))
N_READERS = int(os.environ.get("REPRO_SERVE_READERS", "4"))
N_WRITERS = int(os.environ.get("REPRO_SERVE_WRITERS", "2"))
#: Read requests per reader thread, per scenario.
N_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "150"))
FULL_SCALE = N_TUPLES >= 800 and N_REQUESTS >= 150
#: Acceptance: mixed-load read p99 < this multiple of read-only p99.
DEGRADATION_CEILING = 10.0

JSON_PATH = os.path.join(OUT_DIR, "BENCH_serving.json")

READ_PATHS = (
    "/v1/{t}/rules?limit=10",
    "/v1/{t}/rules/top?n=5&by=lift",
    "/v1/{t}/query?min_confidence=0.5&order_by=support&limit=10",
)


class _Client:
    """One keep-alive connection with per-request latency capture."""

    def __init__(self, port: int) -> None:
        self._conn = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=60)
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}

    def request(self, method: str, path: str, body=None):
        payload = None if body is None else json.dumps(body)
        started = time.perf_counter()
        self._conn.request(method, path, body=payload,
                           headers={"Content-Type": "application/json"})
        response = self._conn.getresponse()
        data = response.read()
        self.latencies.append(time.perf_counter() - started)
        self.statuses[response.status] = \
            self.statuses.get(response.status, 0) + 1
        return response.status, (json.loads(data) if data else None)

    def close(self) -> None:
        self._conn.close()


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _append_json_row(row: dict) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    rows = []
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH, encoding="utf-8") as handle:
            rows = json.load(handle)
    rows.append(row)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module", autouse=True)
def fresh_json_output():
    if os.path.exists(JSON_PATH):
        os.remove(JSON_PATH)


@pytest.fixture(scope="module")
def serving_workload():
    return workloads.dense_correlations(n_tuples=N_TUPLES, seed=47)


class ServerHarness:
    """The benchmark's threaded server + preloaded tenants."""

    TENANTS = ("alpha", "beta")

    def __init__(self, workload, **overrides) -> None:
        import asyncio

        engine_config = EngineConfig(
            min_support=workload.min_support,
            min_confidence=workload.min_confidence,
            max_log_events=50_000)
        settings = dict(host="127.0.0.1", port=0,
                        default_engine=engine_config,
                        flush_watermark=0.5,
                        max_pending_events=2_000,
                        drain_timeout=120.0)
        settings.update(overrides)
        self.server = CorrelationServer(ServerConfig(**settings))
        for name in self.TENANTS:
            self.server.service.create(name, workload.relation.copy(),
                                       engine_config)
            self.server.tenants.adopt(name)
        self._ready = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("benchmark server failed to start")

    def _run(self) -> None:
        import asyncio

        async def main():
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        asyncio.run(main())

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=180)

    @property
    def port(self) -> int:
        return self.server.port

    def client(self) -> _Client:
        return _Client(self.port)


def _read_loop(harness, tenant: str, requests: int,
               rng: random.Random) -> _Client:
    client = harness.client()
    for _ in range(requests):
        path = rng.choice(READ_PATHS).format(t=tenant)
        status, body = client.request("GET", path)
        assert status == 200, body
    return client


def _write_loop(harness, tenant: str, stop: threading.Event,
                rng: random.Random, tid_range: int) -> _Client:
    client = harness.client()
    while not stop.is_set():
        additions = [[rng.randrange(tid_range),
                      f"Bench{rng.randrange(50)}"]
                     for _ in range(20)]
        status, body = client.request(
            "POST", f"/v1/{tenant}/events:batch",
            {"events": [{"type": "add_annotations",
                         "additions": additions}]})
        if status == 429:
            time.sleep(min(body["retry_after"], 0.5))
        else:
            assert status == 202, body
    return client


def _run_readers(harness) -> list[float]:
    """N_READERS threads × N_REQUESTS reads; pooled latencies."""
    clients: list[_Client] = []
    errors: list[Exception] = []

    def work(index: int) -> None:
        try:
            clients.append(_read_loop(
                harness, ServerHarness.TENANTS[index % 2],
                N_REQUESTS, random.Random(1000 + index)))
        except Exception as error:  # surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(N_READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    samples = [sample for client in clients
               for sample in client.latencies]
    for client in clients:
        client.close()
    return samples


def test_read_latency_under_mixed_load(serving_workload):
    harness = ServerHarness(serving_workload)
    try:
        # Scenario 1: read-only baseline.
        baseline = _run_readers(harness)
        base_p50, base_p99 = (_quantile(baseline, 0.50),
                              _quantile(baseline, 0.99))

        # Scenario 2: identical read workload racing writer threads
        # (whose flushes ride the background watermark path).
        stop = threading.Event()
        writer_clients: list[_Client] = []
        writer_errors: list[Exception] = []

        def write(index: int) -> None:
            try:
                writer_clients.append(_write_loop(
                    harness, ServerHarness.TENANTS[index % 2], stop,
                    random.Random(2000 + index),
                    tid_range=N_TUPLES))
            except Exception as error:
                writer_errors.append(error)

        writers = [threading.Thread(target=write, args=(i,))
                   for i in range(N_WRITERS)]
        for thread in writers:
            thread.start()
        try:
            mixed = _run_readers(harness)
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=120)
        assert not writer_errors, writer_errors[0]
        accepted = sum(client.statuses.get(202, 0)
                       for client in writer_clients)
        rejected = sum(client.statuses.get(429, 0)
                       for client in writer_clients)
        for client in writer_clients:
            client.close()
        mixed_p50, mixed_p99 = (_quantile(mixed, 0.50),
                                _quantile(mixed, 0.99))

        degradation = mixed_p99 / base_p99 if base_p99 else 0.0
        record("E12_serving_concurrency", [
            f"tenants=2 tuples/tenant={N_TUPLES} readers={N_READERS} "
            f"writers={N_WRITERS} reads/reader={N_REQUESTS}",
            f"read-only  p50={fmt_ms(base_p50)}  p99={fmt_ms(base_p99)} "
            f"({len(baseline)} requests)",
            f"mixed-load p50={fmt_ms(mixed_p50)}  p99={fmt_ms(mixed_p99)} "
            f"({len(mixed)} requests, writes: {accepted} accepted / "
            f"{rejected} backpressured)",
            f"p99 degradation under writes: {degradation:.2f}x "
            f"(ceiling {DEGRADATION_CEILING:.0f}x)",
        ])
        _append_json_row({
            "scenario": "read_only", "p50_ms": base_p50 * 1000,
            "p99_ms": base_p99 * 1000, "requests": len(baseline)})
        _append_json_row({
            "scenario": "mixed_load", "p50_ms": mixed_p50 * 1000,
            "p99_ms": mixed_p99 * 1000, "requests": len(mixed),
            "writes_accepted": accepted,
            "writes_backpressured": rejected,
            "p99_degradation_x": degradation})
        if FULL_SCALE:
            assert degradation < DEGRADATION_CEILING, (
                f"read p99 degraded {degradation:.1f}x under mixed "
                f"load (ceiling {DEGRADATION_CEILING}x) — reads are "
                f"queueing behind flushes")
    finally:
        harness.stop()


def test_saturation_yields_429s_not_unbounded_queues(serving_workload):
    # Background flushing off: this scenario pins the *bound* — offered
    # load beyond max_pending_events must bounce with 429, never
    # accumulate.  (The mixed-load scenario covers the drain race.)
    harness = ServerHarness(serving_workload, max_pending_events=100,
                            flush_watermark=None)
    try:
        client = harness.client()
        rng = random.Random(7)
        rejected = 0
        deepest = 0
        for _ in range(200):  # 200 batches × 10 events = 2000 >> 100
            additions = [[rng.randrange(N_TUPLES),
                          f"Sat{rng.randrange(20)}"]
                         for _ in range(10)]
            status, body = client.request(
                "POST", "/v1/alpha/events:batch",
                {"events": [{"type": "add_annotations",
                             "additions": additions}]})
            if status == 429:
                rejected += 1
                assert body["queue_depth"] <= body["limit"] == 100
                deepest = max(deepest, body["queue_depth"])
            else:
                assert status == 202
                deepest = max(deepest, body["queue_depth"])
        client.close()
        assert rejected > 0, "queue never saturated — bound not enforced"
        assert deepest <= 100, f"queue overshot its bound: {deepest}"
        record("E12_serving_saturation", [
            f"bound=100 events offered=2000 "
            f"rejected_batches={rejected} max_observed_depth={deepest}",
        ])
        _append_json_row({
            "scenario": "saturation", "queue_bound": 100,
            "events_offered": 2000, "batches_rejected": rejected,
            "max_observed_depth": deepest})
    finally:
        harness.stop()


def test_graceful_drain_leaves_every_tenant_verified(serving_workload):
    harness = ServerHarness(serving_workload, flush_watermark=None)
    service = harness.server.service  # stays usable past shutdown
    try:
        client = harness.client()
        rng = random.Random(13)
        for tenant in ServerHarness.TENANTS:
            additions = [[rng.randrange(N_TUPLES),
                          f"Drain{rng.randrange(10)}"]
                         for _ in range(25)]
            status, _ = client.request(
                "POST", f"/v1/{tenant}/events:batch",
                {"events": [{"type": "add_annotations",
                             "additions": additions}]})
            assert status == 202
        client.close()
        assert all(service.pending(t) for t in ServerHarness.TENANTS)
    finally:
        harness.stop()  # graceful drain
    lines = []
    for tenant in ServerHarness.TENANTS:
        assert service.pending(tenant) == 0, \
            f"drain left {tenant} with queued events"
        result = service.verify(tenant)
        assert result.equivalent, \
            f"post-drain verify failed for {tenant}: {result.explain()}"
        lines.append(f"{tenant}: pending=0 verify={result.explain()}")
    record("E12_serving_drain", lines)
    _append_json_row({"scenario": "drain",
                      "tenants_verified": len(ServerHarness.TENANTS)})

"""E10 — the counting substrate: scan vs hashtree vs vertical (bitmap).

Two experiments around :mod:`repro.mining.bitmap`:

* **counter axis** — the same fig7-style discovery pass and an
  incremental insert batch, run on every registered backend under every
  counter strategy it supports, asserting identical rule signatures and
  reporting per-configuration wall clock;
* **set vs bitmap micro-comparison** — the same candidate patterns
  counted through the classic ``dict[int, set[int]]`` tidsets and
  through :class:`~repro.mining.bitmap.BitmapIndex`, which is the
  headline number the substrate has to win.

Select one configuration for CI smoke via ``REPRO_BACKEND`` and
``REPRO_COUNTER``.
"""

from __future__ import annotations

import pytest

from repro.core.engine import engine
from repro.mining.backend import available_backends
from repro.mining.bitmap import BitmapIndex
from repro.mining.eclat import build_vertical_index, count_itemset
from repro.synth import workloads
from benchmarks._harness import fmt_ms, record, time_once

#: Counter strategies each backend supports (the horizontal structures
#: are apriori-fup-only; the bitmap substrate is universal).
SUPPORTED_COUNTERS = {
    "apriori-fup": ("auto", "scan", "hashtree", "vertical"),
    "eclat": ("auto", "vertical"),
    "fpgrowth": ("auto", "vertical"),
}


@pytest.fixture(scope="module")
def fig7_workload():
    return workloads.dense_correlations()


def _lifecycle(workload, backend_name, counter):
    """Fig7-style discovery plus one insert batch; returns the engine."""
    manager = engine(workload.relation.copy(),
                     min_support=0.2, min_confidence=0.6,
                     backend=backend_name, counter=counter)
    manager.mine()
    manager.insert_annotated([(("77", "88"), ("Annot_1",))] * 25)
    return manager


def test_counter_axis_identical_rules(benchmark, fig7_workload,
                                      backend_name, counter_name):
    """Every (backend, counter) combination produces the same rules;
    the benchmarked configuration comes from REPRO_BACKEND/REPRO_COUNTER."""
    if counter_name not in SUPPORTED_COUNTERS[backend_name]:
        pytest.skip(f"{backend_name} does not support counter="
                    f"{counter_name}")
    manager = benchmark.pedantic(
        lambda: _lifecycle(fig7_workload, backend_name, counter_name),
        rounds=2, iterations=1)
    reference = manager.signature()

    rows = [f"benchmarked configuration: backend={backend_name} "
            f"counter={counter_name}",
            "backend        counter    mine+insert      rules  agrees"]
    for name in available_backends():
        for counter in SUPPORTED_COUNTERS[name]:
            elapsed, other = time_once(
                lambda: _lifecycle(fig7_workload, name, counter))
            agrees = other.signature() == reference
            rows.append(f"{name:12s} {counter:10s} {fmt_ms(elapsed)} "
                        f"{len(other.rules):8d}  {agrees}")
            assert agrees, (f"backend {name} with counter={counter} "
                            f"disagrees with the benchmarked configuration")
    record("E10_counting_substrate_axis", rows)


def test_bitmap_beats_set_counting(benchmark, fig7_workload):
    """The headline: counting the mined pattern table through bitmap
    tidsets must beat the classic set-based tidsets on the same work."""
    manager = engine(fig7_workload.relation.copy(),
                     min_support=0.2, min_confidence=0.6)
    manager.mine()
    patterns = sorted(manager.table)
    transactions = list(manager.database.transactions)

    set_index = build_vertical_index(transactions)
    bitmap_index = BitmapIndex.from_transactions(transactions)

    def count_all_sets():
        return [count_itemset(set_index, pattern) for pattern in patterns]

    def count_all_bitmaps():
        return [bitmap_index.count(pattern) for pattern in patterns]

    assert count_all_sets() == count_all_bitmaps()

    # Repeat the whole table count to push both paths well past noise.
    rounds = 20
    set_seconds, _ = time_once(
        lambda: [count_all_sets() for _ in range(rounds)])
    bitmap_seconds = benchmark.pedantic(
        lambda: time_once(
            lambda: [count_all_bitmaps() for _ in range(rounds)])[0],
        rounds=1, iterations=1)

    speedup = set_seconds / bitmap_seconds if bitmap_seconds else float("inf")
    record("E10_bitmap_vs_set_counting", [
        f"workload: dense_correlations ({len(transactions)} transactions), "
        f"{len(patterns)} patterns x {rounds} rounds",
        f"set-based tidsets : {fmt_ms(set_seconds)}",
        f"bitmap tidsets    : {fmt_ms(bitmap_seconds)}",
        f"speedup           : {speedup:8.2f}x",
    ])
    assert bitmap_seconds < set_seconds, (
        f"bitmap counting ({bitmap_seconds:.4f}s) did not beat set-based "
        f"counting ({set_seconds:.4f}s)")


def test_from_tids_bulk_build_beats_per_tid(benchmark):
    """Micro-row: the bytearray bulk build of ``BitTidset.from_tids``
    against the per-tid ``bits |= 1 << tid`` reference it replaced.

    On a sparse tidset over a large tid range the reference rebuilds
    the whole big int per insertion — quadratic — while the bulk build
    touches one byte per tid and converts once.
    """
    import random

    from repro.mining.bitmap import BitTidset

    rng = random.Random(19)
    tid_range, n_tids = 400_000, 25_000
    tids = rng.sample(range(tid_range), n_tids)

    def per_tid_reference():
        bits = 0
        for tid in tids:
            bits |= 1 << tid
        return bits

    reference_seconds, reference_bits = time_once(per_tid_reference)
    bulk_seconds = benchmark.pedantic(
        lambda: time_once(lambda: BitTidset.from_tids(tids))[0],
        rounds=1, iterations=1)

    assert BitTidset.from_tids(tids).bits == reference_bits
    speedup = (reference_seconds / bulk_seconds if bulk_seconds
               else float("inf"))
    record("E10_from_tids_bulk_build", [
        f"{n_tids} tids drawn from a {tid_range}-tid range",
        f"per-tid |= 1 << tid : {fmt_ms(reference_seconds)}",
        f"bytearray bulk build: {fmt_ms(bulk_seconds)}",
        f"speedup             : {speedup:8.2f}x",
    ])
    assert bulk_seconds < reference_seconds, (
        f"bulk from_tids ({bulk_seconds:.4f}s) did not beat the per-tid "
        f"rebuild ({reference_seconds:.4f}s)")

"""E10 — durability economics: journal overhead and recovery time.

Two costs decide whether a served deployment can afford the journal:

* the *write tax* — how much a flush slows down when every batch is
  fsync'd to the WAL first (measured with fsync on and off against the
  journal-free baseline);
* the *restart bill* — how long recovery takes as the journal deepens,
  and how far a compacted snapshot cuts it.  Snapshot + suffix replay
  should beat a full-history replay by roughly the depth ratio, which
  is the whole argument for ``maybe_snapshot``'s cadence.

Both sides assert exactness (recovered signature == live signature),
so the speed table can never come from a wrong answer.

CI smoke shrinks the scale via ``REPRO_JOURNAL_TUPLES`` /
``REPRO_JOURNAL_FLUSHES``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import engine
from repro.core.journal import JournalStore
from repro.synth import workloads
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from benchmarks._harness import fmt_ms, record, time_once

N_TUPLES = int(os.environ.get("REPRO_JOURNAL_TUPLES", "2000"))
N_FLUSHES = int(os.environ.get("REPRO_JOURNAL_FLUSHES", "40"))
BATCH = 4

STREAM = StreamConfig(
    seed=83,
    batch_size=BATCH,
    weight_add_annotations=6.0,
    weight_insert_annotated=1.5,
    weight_insert_unannotated=0.5,
    weight_remove_annotations=2.0,
    weight_remove_tuples=0.25,
    hot_tuple_count=32,
    hot_tuple_bias=0.7,
)


@pytest.fixture(scope="module")
def journal_workload():
    return workloads.paper_scale(n_tuples=N_TUPLES, seed=41)


@pytest.fixture(scope="module")
def journal_batches(journal_workload):
    """``N_FLUSHES`` fixed batches drawn against a shadow relation."""
    shadow = journal_workload.relation.copy()
    stream = EventStream(shadow, STREAM)
    batches = []
    for _ in range(N_FLUSHES):
        batch = list(stream.take(
            BATCH,
            apply=lambda event: apply_to_relation(shadow, event)))
        batches.append(batch)
    return batches


def mined_engine(workload, backend):
    manager = engine(workload.relation.copy(),
                     min_support=workload.min_support,
                     min_confidence=workload.min_confidence,
                     backend=backend)
    manager.mine()
    return manager


def drive(store, manager, batches):
    for batch in batches:
        store.append_batch(batch)
        manager.apply_batch(list(batch))


def test_journal_write_tax(tmp_path, journal_workload, journal_batches,
                           backend_name):
    """Flush throughput: bare engine vs WAL (fsync off) vs WAL (on)."""
    bare = mined_engine(journal_workload, backend_name)
    bare_seconds, _ = time_once(
        lambda: [bare.apply_batch(list(batch))
                 for batch in journal_batches])

    timings = {}
    for fsync in (False, True):
        manager = mined_engine(journal_workload, backend_name)
        store = JournalStore(tmp_path / f"fsync-{fsync}", fsync=fsync)
        store.ensure_base_snapshot(manager)
        timings[fsync], _ = time_once(
            lambda: drive(store, manager, journal_batches))
        assert manager.signature() == bare.signature(), (
            "journaled flushes diverged from the bare engine")
        store.close()

    events = N_FLUSHES * BATCH
    record("E10_journal_write_tax", [
        f"tuples={N_TUPLES} flushes={N_FLUSHES} batch={BATCH} "
        f"backend={backend_name}",
        f"bare flushes       : {fmt_ms(bare_seconds)}",
        f"journal, no fsync  : {fmt_ms(timings[False])}",
        f"journal, fsync     : {fmt_ms(timings[True])}",
        f"fsync tax per flush: "
        f"{(timings[True] - bare_seconds) / N_FLUSHES * 1000:9.3f} ms",
        f"events journaled   : {events}",
        "signature: bare == no-fsync == fsync",
    ])


def test_recovery_time_vs_journal_depth(benchmark, tmp_path,
                                        journal_workload,
                                        journal_batches, backend_name):
    """Restart bill: full-history replay vs snapshot + short suffix."""
    manager = mined_engine(journal_workload, backend_name)
    store = JournalStore(tmp_path / "deep", fsync=False)
    store.ensure_base_snapshot(manager)
    drive(store, manager, journal_batches)

    full_seconds, full = time_once(store.recover)
    assert full.engine.signature() == manager.signature()
    assert full.replay.records == N_FLUSHES
    full.engine.close()

    # Checkpoint near the tail, leaving a short suffix to replay.
    suffix = max(1, N_FLUSHES // 10)
    store.write_snapshot(manager, store.last_seq)
    for batch in journal_batches[:suffix]:
        store.append_batch(batch)
        manager.apply_batch(list(batch))
    snap_seconds, snapped = time_once(store.recover)
    assert snapped.engine.signature() == manager.signature()
    assert snapped.replay.records == suffix
    snapped.engine.close()

    # Headline: the realistic restart (checkpoint + suffix).
    result = benchmark.pedantic(store.recover, rounds=1, iterations=1)
    result.engine.close()
    store.close()

    speedup = full_seconds / snap_seconds if snap_seconds else float("inf")
    record("E10_recovery_depth", [
        f"tuples={N_TUPLES} flushes={N_FLUSHES} backend={backend_name}",
        f"full replay ({N_FLUSHES} records)   : {fmt_ms(full_seconds)}",
        f"snapshot + {suffix} record suffix : {fmt_ms(snap_seconds)}",
        f"checkpoint speedup: {speedup:6.1f}x",
        "signature: full == suffix == live",
    ])

"""E1 — the paper's Figure 16: run-time comparison.

The paper reports that re-running full Apriori over its ~8000-entry
dataset takes ~12 seconds per pass (α = 0.4, β = 0.8, their Java
implementation), growing "magnitudes longer" as support decreases,
whereas the incremental update-and-discover path is "significantly
faster".  Absolute numbers differ on our substrate; the *shape* under
test is:

* incremental δ-batch maintenance is at least an order of magnitude
  faster than a full re-mine at the paper's thresholds, and
* the full re-mine cost grows as the minimum support falls while the
  incremental cost stays roughly flat.
"""

from __future__ import annotations

import pytest

from repro.baselines.remine import remine
from repro.core.engine import engine
from repro.synth.generator import generate_annotation_batch
from benchmarks._harness import fmt_ms, record, time_once

BATCH_SIZE = 80
SUPPORT_SWEEP = (0.5, 0.4, 0.3, 0.2)


def _mined_copy(workload, min_support=None):
    manager = engine(
        workload.relation.copy(),
        min_support=min_support or workload.min_support,
        min_confidence=workload.min_confidence)
    manager.mine()
    return manager


def test_fig16_full_apriori_remine(benchmark, paper_workload):
    """Headline baseline: full re-mine at the paper's (0.4, 0.8)."""
    result = benchmark.pedantic(
        lambda: remine(paper_workload.relation,
                       min_support=paper_workload.min_support,
                       min_confidence=paper_workload.min_confidence),
        rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["rules"] = len(result.rules)
    assert len(result.rules) > 0


def test_fig16_incremental_update(benchmark, paper_workload):
    """Headline incremental: one δ batch through Figures 12 + 13."""
    manager = _mined_copy(paper_workload)
    batches = [generate_annotation_batch(manager.relation,
                                         size=BATCH_SIZE, seed=seed)
               for seed in range(40)]
    state = {"next": 0}

    def setup():
        batch = batches[state["next"] % len(batches)]
        state["next"] += 1
        return (batch,), {}

    def apply_batch(batch):
        return manager.add_annotations(batch)

    benchmark.pedantic(apply_batch, setup=setup, rounds=10, iterations=1,
                       warmup_rounds=0)
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    # Equivalence spot-check after all the timed batches.
    assert manager.verify_against_remine().equivalent


def test_fig16_comparison_table(benchmark, paper_workload):
    """Regenerates the Figure 16 rows: incremental vs full re-mine."""
    manager = _mined_copy(paper_workload)
    batch = generate_annotation_batch(manager.relation, size=BATCH_SIZE,
                                      seed=99)
    incremental_seconds, _ = time_once(
        lambda: manager.add_annotations(batch))
    remine_seconds, baseline = time_once(
        lambda: remine(paper_workload.relation,
                       min_support=paper_workload.min_support,
                       min_confidence=paper_workload.min_confidence))
    speedup = remine_seconds / max(incremental_seconds, 1e-9)

    rows = [
        f"workload: {len(paper_workload.relation)} tuples, "
        f"alpha={paper_workload.min_support}, "
        f"beta={paper_workload.min_confidence} "
        f"(paper: ~8000 entries, 0.4 / 0.8)",
        f"full apriori re-mine : {fmt_ms(remine_seconds)} "
        f"({len(baseline.rules)} rules)",
        f"incremental ({BATCH_SIZE}-pair delta batch): "
        f"{fmt_ms(incremental_seconds)}",
        f"speedup              : {speedup:8.1f}x "
        f"(paper: re-mine ~12 s vs near-instant updates)",
    ]
    record("E1_fig16_runtime", rows)
    benchmark(lambda: None)  # register as a benchmark test
    benchmark.extra_info["speedup"] = round(speedup, 1)
    # Shape assertion: an order of magnitude, conservatively.
    assert speedup > 5.0


@pytest.mark.parametrize("n_tuples", [2000, 4000, 8000])
def test_fig16_dbsize_scaling(benchmark, n_tuples):
    """Re-mine cost grows with |DB|; incremental cost tracks only |δ|.

    This is the structural reason the paper's Figure 16 gap widens
    "with a large dataset": the full Apriori pass reads every tuple on
    every update, the incremental path reads the δ tuples plus index
    tidsets.
    """
    from repro.synth.workloads import paper_scale

    workload = paper_scale(n_tuples=n_tuples, seed=47)
    remine_seconds, _ = time_once(
        lambda: remine(workload.relation,
                       min_support=workload.min_support,
                       min_confidence=workload.min_confidence))
    manager = _mined_copy(workload)
    batch = generate_annotation_batch(manager.relation, size=BATCH_SIZE,
                                      seed=3)
    incremental_seconds, _ = benchmark.pedantic(
        lambda: time_once(lambda: manager.add_annotations(batch)),
        rounds=1, iterations=1)
    record(f"E1_fig16_dbsize_{n_tuples}", [
        f"|DB|={n_tuples}: remine {fmt_ms(remine_seconds)} | "
        f"incremental ({BATCH_SIZE}-pair delta) "
        f"{fmt_ms(incremental_seconds)} | "
        f"gap {remine_seconds / max(incremental_seconds, 1e-9):6.1f}x",
    ])
    benchmark.extra_info["remine_ms"] = round(remine_seconds * 1000, 1)
    assert incremental_seconds < remine_seconds


@pytest.mark.parametrize("min_support", SUPPORT_SWEEP)
def test_fig16_support_sweep(benchmark, paper_workload, min_support):
    """The 'magnitudes longer as support decreases' series."""
    remine_seconds, baseline = time_once(
        lambda: remine(paper_workload.relation,
                       min_support=min_support,
                       min_confidence=paper_workload.min_confidence))
    manager = _mined_copy(paper_workload, min_support=min_support)
    batch = generate_annotation_batch(manager.relation, size=BATCH_SIZE,
                                      seed=7)
    incremental_seconds, _ = benchmark.pedantic(
        lambda: time_once(lambda: manager.add_annotations(batch)),
        rounds=1, iterations=1)
    record(
        f"E1_fig16_sweep_alpha_{min_support}",
        [f"alpha={min_support}: remine {fmt_ms(remine_seconds)} "
         f"({len(baseline.rules)} rules, {len(baseline.table)} patterns) "
         f"| incremental {fmt_ms(incremental_seconds)}"],
    )
    benchmark.extra_info["remine_ms"] = round(remine_seconds * 1000, 1)
    benchmark.extra_info["rules"] = len(baseline.rules)
    assert incremental_seconds < remine_seconds

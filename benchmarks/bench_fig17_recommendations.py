"""E7 — Figure 17 / section 5: exploiting correlations.

Ground-truth protocol: hide a fraction of the planted (tuple,
annotation) attachments, mine the damaged database, run the
missing-annotation recommender, and score recovered attachments.  The
paper presents this qualitatively (recommendations with their
supporting rules); the measurable shape is that high-confidence rules
recover a substantial share of hidden annotations with high precision
against the planted structure.
"""

from __future__ import annotations

import pytest

from repro.core.engine import engine
from repro.exploitation.curation import CurationSession
from repro.exploitation.ranking import rank
from repro.exploitation.recommender import MissingAnnotationRecommender
from repro.synth import workloads
from repro.synth.generator import hide_annotations
from benchmarks._harness import record

HIDE_FRACTION = 0.2


@pytest.fixture(scope="module")
def damaged():
    workload = workloads.paper_scale(n_tuples=2000, seed=29)
    relation = workload.relation
    hidden = set(hide_annotations(relation, fraction=HIDE_FRACTION,
                                  seed=4))
    manager = engine(relation, min_support=0.3,
                                    min_confidence=0.7)
    manager.mine()
    return manager, hidden


def test_fig17_recommendation_scan(benchmark, damaged):
    manager, hidden = damaged
    recommender = MissingAnnotationRecommender(manager)
    recommendations = benchmark(recommender.scan)
    predicted = {(recommendation.tid, recommendation.annotation_id)
                 for recommendation in recommendations}
    recovered = predicted & hidden
    recall = len(recovered) / len(hidden)
    precision = len(recovered) / max(1, len(predicted))

    rows = [
        f"hidden attachments: {len(hidden)} ({HIDE_FRACTION:.0%} of all)",
        f"recommendations    : {len(predicted)}",
        f"recovered (hits)   : {len(recovered)}",
        f"recall             : {recall:5.1%}",
        f"precision          : {precision:5.1%}",
        "(each recommendation carries its supporting rule + support/"
        "confidence, as in the paper's Figure 17)",
    ]
    record("E7_fig17_recommendations", rows)
    benchmark.extra_info["recall"] = round(recall, 3)
    benchmark.extra_info["precision"] = round(precision, 3)
    # Shape: the planted structure must be substantially recoverable.
    assert recall >= 0.3
    assert precision >= 0.5


def test_fig17_confidence_orders_quality(benchmark, damaged):
    """Higher-confidence recommendations hit more often — the reason the
    paper attaches rule statistics for the curator."""
    manager, hidden = damaged
    recommendations = rank(MissingAnnotationRecommender(manager).scan())
    half = max(1, len(recommendations) // 2)

    def hit_rate(batch):
        if not batch:
            return 0.0
        hits = sum(1 for recommendation in batch
                   if (recommendation.tid,
                       recommendation.annotation_id) in hidden)
        return hits / len(batch)

    top_rate = benchmark.pedantic(
        lambda: hit_rate(recommendations[:half]), rounds=1, iterations=1)
    bottom_rate = hit_rate(recommendations[half:])
    record("E7_fig17_ranking", [
        f"top-half hit rate    : {top_rate:5.1%}",
        f"bottom-half hit rate : {bottom_rate:5.1%}",
    ])
    assert top_rate >= bottom_rate - 0.05


def test_fig17_curation_loop_closes(benchmark, damaged):
    """Accepting recommendations flows back through Case 3 maintenance."""
    manager, _ = damaged
    recommendations = rank(MissingAnnotationRecommender(manager).scan())
    session = CurationSession(manager)
    session.accept_all(recommendations[:100], min_confidence=0.9)

    report = benchmark.pedantic(session.commit, rounds=1, iterations=1)
    if report is not None:
        assert report.event == "add-annotations"
    assert manager.verify_against_remine().equivalent

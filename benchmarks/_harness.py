"""Shared helpers for the benchmark harness.

Every experiment records the rows it regenerates (the paper's tables /
figure series) through :func:`record`, which both prints them (visible
with ``pytest -s``) and appends them to ``benchmarks/out/<exp>.txt`` so
EXPERIMENTS.md can quote exact measured output.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def record(experiment_id: str, lines: Iterable[str]) -> None:
    """Print and persist one experiment's output rows."""
    os.makedirs(OUT_DIR, exist_ok=True)
    rendered = list(lines)
    banner = f"=== {experiment_id} ==="
    print()
    print(banner)
    for line in rendered:
        print(line)
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join([banner, *rendered]) + "\n")


def time_once(fn: Callable[[], object]) -> tuple[float, object]:
    """One wall-clock measurement (for comparison tables; the headline
    measurement of each experiment goes through pytest-benchmark)."""
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:9.2f} ms"

"""E2 — Case 1 results: adding annotated tuples.

The paper's verification: incremental maintenance after adding
annotated tuples produces a rule set *identical* to running the
original Apriori over the updated dataset.  The benchmark times the
incremental path and asserts the identity, for two batch sizes.
"""

from __future__ import annotations

import pytest

from repro.synth.generator import PlantedD2A, SyntheticConfig, generate
from benchmarks._harness import fmt_ms, record, time_once
from benchmarks.conftest import fresh_case_manager


def _increment_rows(count, seed):
    """Annotated rows drawn from the same distribution as the base."""
    config = SyntheticConfig(
        n_tuples=count, n_columns=6, values_per_column=40, skew=1.2,
        planted_d2a=(
            PlantedD2A(pattern=((0, 1), (1, 1)), annotation="Annot_1",
                       pattern_rate=0.44, confidence=0.97),
        ),
        noise_annotations=3, noise_rate=0.2, seed=seed)
    relation, _ = generate(config)
    return [(row.values, sorted(row.annotation_ids)) for row in relation]


@pytest.mark.parametrize("batch_size", [100, 500])
def test_case1_incremental_insert(benchmark, case_workload, batch_size):
    manager = fresh_case_manager(case_workload)
    rows = _increment_rows(batch_size, seed=batch_size)

    seconds, report = time_once(lambda: manager.insert_annotated(rows))
    benchmark(lambda: None)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["ms"] = round(seconds * 1000, 2)

    verification = manager.verify_against_remine()
    record(f"E2_case1_batch_{batch_size}", [
        f"base {len(case_workload.relation)} tuples + {batch_size} "
        f"annotated tuples",
        f"incremental maintenance : {fmt_ms(seconds)} "
        f"(+{len(report.rules_added)}/-{len(report.rules_dropped)} rules)",
        f"rule sets identical to re-mine: {verification.equivalent} "
        f"(paper: 'the association rules resulting from both processes "
        f"were identical')",
    ])
    assert verification.equivalent


def test_case1_repeated_batches_stay_exact(benchmark, case_workload):
    """Ten successive insert batches; equivalence must hold throughout."""
    manager = fresh_case_manager(case_workload)

    def run():
        for seed in range(10):
            manager.insert_annotated(_increment_rows(20, seed=seed))
        return manager

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert manager.verify_against_remine().equivalent

"""E8 — ablations of the design choices DESIGN.md calls out.

Three components get switched off or stressed:

* **annotation index**: Figure 13's discovery counts by intersecting
  tidsets; the ablation compares a seeded index search against the full
  re-mine it replaces (the paper's stated reason for the index).
* **candidate store / margin**: margin=1.0 disables the near-miss band
  ("candidate rules slightly below the minimum"), forcing promotions to
  be rediscovered from scratch by the seeded search.
* **δ-batch size sensitivity**: incremental cost should scale with the
  batch, not with the database.
"""

from __future__ import annotations

import pytest

from repro.baselines.remine import remine
from repro.core.engine import engine
from repro.synth.generator import generate_annotation_batch
from benchmarks._harness import fmt_ms, record, time_once


def _mined(workload, margin=0.75):
    manager = engine(
        workload.relation.copy(),
        min_support=workload.min_support,
        min_confidence=workload.min_confidence,
        margin=margin)
    manager.mine()
    return manager


def test_ablation_annotation_index(benchmark, case_workload):
    """Seeded index discovery vs the full scan it avoids."""
    manager = _mined(case_workload)
    batch = generate_annotation_batch(manager.relation, size=50, seed=21)
    indexed_seconds, _ = time_once(lambda: manager.add_annotations(batch))
    full_seconds, _ = time_once(
        lambda: remine(manager.relation,
                       min_support=case_workload.min_support,
                       min_confidence=case_workload.min_confidence))
    benchmark(lambda: None)
    record("E8_ablation_annotation_index", [
        f"delta via annotation index : {fmt_ms(indexed_seconds)}",
        f"delta via full re-mine     : {fmt_ms(full_seconds)}",
        f"index advantage            : "
        f"{full_seconds / max(indexed_seconds, 1e-9):6.1f}x",
    ])
    assert indexed_seconds < full_seconds


@pytest.mark.parametrize("margin", [1.0, 0.75, 0.5])
def test_ablation_margin(benchmark, case_workload, margin):
    """Smaller margins keep more near-misses; correctness must hold at
    every setting (margin=1.0 disables the candidate band entirely)."""
    manager = _mined(case_workload, margin=margin)
    batch = generate_annotation_batch(manager.relation, size=80, seed=31)

    seconds, report = time_once(lambda: manager.add_annotations(batch))
    benchmark(lambda: None)
    benchmark.extra_info["margin"] = margin
    benchmark.extra_info["table"] = len(manager.table)
    record(f"E8_ablation_margin_{margin}", [
        f"margin={margin}: table {len(manager.table)} patterns, "
        f"candidates {len(manager.candidates)}, "
        f"delta batch {fmt_ms(seconds)}",
    ])
    assert manager.verify_against_remine().equivalent


@pytest.mark.parametrize("batch_size", [10, 40, 160])
def test_ablation_batch_size_scaling(benchmark, case_workload, batch_size):
    """Incremental cost tracks |δ|, not |DB| (paper's efficiency claim)."""
    manager = _mined(case_workload)
    batch = generate_annotation_batch(manager.relation, size=batch_size,
                                      seed=batch_size)
    seconds, report = time_once(lambda: manager.add_annotations(batch))
    benchmark(lambda: None)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["ms"] = round(seconds * 1000, 2)
    record(f"E8_ablation_batch_{batch_size}", [
        f"|delta|={batch_size:4d}: {fmt_ms(seconds)} "
        f"({report.tuples_scanned} tuples scanned)",
    ])
    assert report.tuples_scanned <= batch_size


def test_ablation_rule_compression(benchmark, case_workload):
    """Closed-itemset rule compression at low support — the standard
    answer to the blow-up behind the paper's 'magnitudes longer'
    observation; reported as rules shown to the curator before/after."""
    from repro.mining.closed import compress_rules, compression_ratio

    manager = engine(
        case_workload.relation.copy(),
        min_support=0.1,  # deliberately low: many redundant rules
        min_confidence=case_workload.min_confidence)
    manager.mine()
    compressed = benchmark(lambda: compress_rules(manager.rules))
    ratio = compression_ratio(manager.table.counts)
    record("E8_ablation_compression", [
        f"alpha=0.1: {len(manager.rules)} rules -> "
        f"{len(compressed)} after minimal-generator compression "
        f"({1 - len(compressed) / max(1, len(manager.rules)):.0%} fewer)",
        f"pattern table closure ratio: {ratio:.2f} "
        f"(closed / all frequent patterns)",
    ])
    assert len(compressed) <= len(manager.rules)


def test_ablation_candidate_store_disabled(benchmark, case_workload):
    """track_candidates=False must not affect correctness, only the
    observability of near-misses."""
    manager = engine(
        case_workload.relation.copy(),
        min_support=case_workload.min_support,
        min_confidence=case_workload.min_confidence,
        track_candidates=False)
    manager.mine()
    batch = generate_annotation_batch(manager.relation, size=60, seed=41)
    benchmark.pedantic(lambda: manager.add_annotations(batch),
                       rounds=1, iterations=1)
    assert len(manager.candidates) == 0
    assert manager.verify_against_remine().equivalent

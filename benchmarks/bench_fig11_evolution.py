"""E9 — Figure 11: effect of evolving data on support and confidence.

The paper's Figure 11 is a table of which direction each statistic can
move under each update case, per rule family.  This benchmark drives
every case over the 2000-tuple workload while a timeline recorder
observes every surviving rule, then checks the *empirically observed*
direction sets against the paper's table:

| case | D2A S | D2A C | A2A S | A2A C |
|---|---|---|---|---|
| add annotations (3)    | never ↓ | never ↓ | never ↓ | may ↓ (LHS) |
| add annotated tuples (1) | any | any | any | any |
| add un-annotated tuples (2) | never ↑ | never ↑ | never ↑ | flat |
"""

from __future__ import annotations

import random

from repro.core.rules import RuleKind
from repro.core.timeline import Direction, TimelineRecorder
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
)
from repro.synth.generator import generate_annotation_batch, value_token
from benchmarks._harness import record
from benchmarks.conftest import fresh_case_manager


def _annotated_rows(count, seed):
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        values = tuple(value_token(column, rng.randrange(40))
                       for column in range(6))
        rows.append((values, [f"Annot_{rng.randint(1, 4)}"]))
    return rows


def _unannotated_rows(count, seed):
    rng = random.Random(seed)
    return [tuple(value_token(column, rng.randrange(40))
                  for column in range(6))
            for _ in range(count)]


def test_fig11_direction_matrix(benchmark, case_workload):
    manager = fresh_case_manager(case_workload)
    recorder = TimelineRecorder(manager)

    def run():
        recorder.apply(AddAnnotations.build(
            generate_annotation_batch(manager.relation, size=120,
                                      seed=61)))
        recorder.apply(AddAnnotatedTuples.build(_annotated_rows(80,
                                                                seed=62)))
        recorder.apply(AddUnannotatedTuples.build(_unannotated_rows(
            80, seed=63)))
        return recorder.direction_matrix()

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    record("E9_fig11_evolution", [
        "empirical direction matrix (paper Figure 11; + up, - down, "
        "= unchanged):",
        *recorder.render_matrix().splitlines(),
    ])

    def directions(event, kind, statistic):
        return matrix.get((event, kind, statistic), set())

    # Case 3: D2A statistics never decrease (paper: "guaranteed to
    # remain valid because the support and confidence cannot decrease").
    for statistic in ("support", "confidence"):
        assert Direction.DOWN not in directions(
            "add-annotations", RuleKind.DATA_TO_ANNOTATION, statistic)
    # Case 3: A2A support never decreases; confidence may (LHS case).
    assert Direction.DOWN not in directions(
        "add-annotations", RuleKind.ANNOTATION_TO_ANNOTATION, "support")

    # Case 2: no statistic of any rule increases; A2A confidence flat.
    for kind in RuleKind:
        assert Direction.UP not in directions(
            "add-unannotated-tuples", kind, "support")
    assert directions("add-unannotated-tuples",
                      RuleKind.ANNOTATION_TO_ANNOTATION,
                      "confidence") <= {Direction.FLAT}

    # Throughout, the maintained state stayed exact.
    assert manager.verify_against_remine().equivalent


def test_fig11_case3_lhs_confidence_can_drop(benchmark, case_workload):
    """The one decrease the paper calls out: a new annotation landing in
    an A2A rule's LHS can push its confidence below β."""
    manager = fresh_case_manager(case_workload)
    recorder = TimelineRecorder(manager)
    a2a_rules = manager.rules_of_kind(RuleKind.ANNOTATION_TO_ANNOTATION)
    assert a2a_rules, "workload must produce A2A rules"
    target = max(a2a_rules, key=lambda rule: rule.lhs_count)
    lhs_annotation = manager.vocabulary.item(target.lhs[0]).token
    rhs_annotation = manager.vocabulary.item(target.rhs).token
    # Attach the LHS annotation to tuples lacking the RHS annotation.
    rhs_tids = manager.index.tids(target.rhs)
    lhs_tids = manager.index.tids(target.lhs[0])
    victims = [tid for tid in manager.relation.tids()
               if tid not in rhs_tids and tid not in lhs_tids][:120]

    def run():
        return recorder.apply(AddAnnotations.build(
            [(tid, lhs_annotation) for tid in victims]))

    benchmark.pedantic(run, rounds=1, iterations=1)
    trajectory = recorder.trajectory(target.key)
    before, after = trajectory.points[0], trajectory.points[-1]
    dropped_below_beta = not trajectory.alive
    record("E9_fig11_lhs_drop", [
        f"rule {lhs_annotation} ==> {rhs_annotation}: confidence "
        f"{before.confidence:.4f} -> "
        f"{after.confidence:.4f}"
        + (" (dropped below beta)" if dropped_below_beta else ""),
        "(paper: 'the confidence needs to be recalculated because it is "
        "possible it will decrease')",
    ])
    assert after.confidence < before.confidence
    assert manager.verify_against_remine().equivalent

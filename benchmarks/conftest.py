"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.synth import workloads


@pytest.fixture(scope="session")
def paper_workload():
    """The Figure 16 setting: ~8000 tuples at α=0.4, β=0.8."""
    return workloads.paper_scale()


@pytest.fixture(scope="session")
def paper_manager(paper_workload):
    """A mined manager over a private copy of the paper workload."""
    manager = AnnotationRuleManager(
        paper_workload.relation.copy(),
        min_support=paper_workload.min_support,
        min_confidence=paper_workload.min_confidence)
    manager.mine()
    return manager


@pytest.fixture(scope="session")
def case_workload():
    """2000-tuple workload for the three per-case benchmarks (E2-E4)."""
    return workloads.paper_scale(n_tuples=2000, seed=17)


def fresh_case_manager(case_workload) -> AnnotationRuleManager:
    manager = AnnotationRuleManager(
        case_workload.relation.copy(),
        min_support=case_workload.min_support,
        min_confidence=case_workload.min_confidence)
    manager.mine()
    return manager

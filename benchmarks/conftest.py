"""Shared fixtures for the benchmark harness.

Backend selection is a harness-wide axis: set ``REPRO_BACKEND`` to any
registered mining backend (``apriori-fup``, ``eclat``, ``fpgrowth``)
to re-run every experiment on that backend, e.g.::

    REPRO_BACKEND=eclat pytest benchmarks/bench_fig7_rule_discovery.py

``REPRO_COUNTER`` likewise selects the candidate counting strategy
(``auto``, ``scan``, ``hashtree``, ``vertical``) for the experiments
that take the counter axis (``bench_counting_substrate.py``).

The per-experiment output files record which backend produced them.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import CorrelationEngine, engine
from repro.mining.backend import DEFAULT_BACKEND, available_backends
from repro.synth import workloads


@pytest.fixture(scope="session")
def backend_name() -> str:
    """The mining backend under benchmark (``REPRO_BACKEND`` env var)."""
    name = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)
    if name not in available_backends():
        raise pytest.UsageError(
            f"REPRO_BACKEND={name!r} is not a registered backend; "
            f"choose from {', '.join(available_backends())}")
    return name


@pytest.fixture(scope="session")
def counter_name() -> str:
    """Candidate counting strategy (``REPRO_COUNTER`` env var)."""
    from repro.mining.apriori import COUNTER_STRATEGIES

    name = os.environ.get("REPRO_COUNTER", "auto")
    if name not in COUNTER_STRATEGIES:
        raise pytest.UsageError(
            f"REPRO_COUNTER={name!r} is not a counter strategy; "
            f"choose from {', '.join(COUNTER_STRATEGIES)}")
    return name


@pytest.fixture(scope="session")
def paper_workload():
    """The Figure 16 setting: ~8000 tuples at α=0.4, β=0.8."""
    return workloads.paper_scale()


@pytest.fixture(scope="session")
def paper_manager(paper_workload, backend_name):
    """A mined engine over a private copy of the paper workload."""
    manager = engine(
        paper_workload.relation.copy(),
        min_support=paper_workload.min_support,
        min_confidence=paper_workload.min_confidence,
        backend=backend_name)
    manager.mine()
    return manager


@pytest.fixture(scope="session")
def case_workload():
    """2000-tuple workload for the three per-case benchmarks (E2-E4)."""
    return workloads.paper_scale(n_tuples=2000, seed=17)


def fresh_case_manager(case_workload,
                       backend: str = DEFAULT_BACKEND) -> CorrelationEngine:
    manager = engine(
        case_workload.relation.copy(),
        min_support=case_workload.min_support,
        min_confidence=case_workload.min_confidence,
        backend=backend)
    manager.mine()
    return manager

"""E12 — approximate-first serving: estimate reads vs exact refresh.

The approximate tier's claim is *latency*, bought with *bounded*
error: immediately after a write burst is queued (and its exact SON
re-merge kicked off in the background), ``mode=estimate`` must answer
a top-k read from the bottom-k sketches plus the pending overlay in
less than 1/20 of the exact leg's wall time (queue -> flush -> read)
at fig7 scale — and every estimated figure must sit inside its error
bound once the exact refresh lands.

Two scenarios: the monolithic fig7 workload and a 4-shard engine fed
an insert-heavy (hot-shard) stream — the layout where exact re-merges
hurt most.  Both record estimate/exact wall times, the achieved
speedup, and the empirical error/bound-coverage of the estimates in
``benchmarks/out/BENCH_sketch.json``.  The 20x target binds at full
scale only; the CI smoke lane shrinks via ``REPRO_SKETCH_TUPLES`` and
still records its row (tiny engines flush in microseconds, so a ratio
there measures scheduler noise, not the tier).
"""

from __future__ import annotations

import json
import os

from repro.app.service import CorrelationService
from repro.core.config import EngineConfig
from repro.shard.pool import available_cpus
from repro.synth import workloads
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from benchmarks._harness import OUT_DIR, fmt_ms, record, time_once

N_TUPLES = int(os.environ.get("REPRO_SKETCH_TUPLES", "8000"))
FULL_SCALE = N_TUPLES >= 4000
#: The acceptance ratio: estimate < exact / 20 at full scale.  It
#: binds on the headline (monolithic fig7) scenario; the sharded
#: scenario records its ratio but does not gate — on a 1-cpu runner
#: the shard pool's flush workers starve a concurrent reader of the
#: GIL, which measures the box, not the tier (the JSON row carries
#: ``cpus`` so those readings are identifiable).
TARGET_RATIO = 20.0
TOP_K = 10
EVENTS = 256 if FULL_SCALE else 8

JSON_PATH = os.path.join(OUT_DIR, "BENCH_sketch.json")


def _record_json(scenario: str, rows: list[dict]) -> None:
    """Read-merge-write, one entry set per scenario (the same idiom as
    ``BENCH_shard_scaling.json``); every row is stamped with the box's
    available cpus so cross-machine rows stay comparable."""
    os.makedirs(OUT_DIR, exist_ok=True)
    existing = []
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing = [row for row in existing if row.get("scenario") != scenario]
    existing.extend({"scenario": scenario, "cpus": available_cpus(), **row}
                    for row in rows)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")


def _event_source(relation, *, seed, insert_heavy):
    """One evolving shadow per scenario: both bursts are drawn from
    the same stream so the second never references tuples the first
    already deleted from the served session."""
    shadow = relation.copy()
    config = StreamConfig(seed=seed, batch_size=4,
                          weight_insert_annotated=6.0,
                          weight_insert_unannotated=2.0,
                          weight_add_annotations=1.0,
                          weight_remove_annotations=0.5,
                          weight_remove_tuples=0.25) if insert_heavy \
        else StreamConfig(seed=seed, batch_size=4)
    stream = EventStream(shadow, config)

    def burst(count):
        return list(stream.take(
            count, apply=lambda event: apply_to_relation(shadow, event)))
    return burst


def _estimate_accuracy(service, name):
    """Compare the (post-flush) estimate against the exact catalog:
    per-metric absolute errors and the fraction inside the bound."""
    catalog = service.catalog(name)
    estimated = service.estimate(name)
    by_key = {er.rule.key: er for er in estimated}
    errors = {"support": [], "confidence": []}
    covered = checked = 0
    for rule in catalog.rules:
        er = by_key[rule.key]
        for metric, exact in (("support", rule.support),
                              ("confidence", rule.confidence)):
            error = abs(er.metric(metric) - exact)
            errors[metric].append(error)
            checked += 1
            if error <= er.bound(metric):
                covered += 1
    return {
        "rules": len(catalog.rules),
        "bound_coverage": covered / checked if checked else 1.0,
        "mean_abs_err_support": (sum(errors["support"])
                                 / len(errors["support"])
                                 if errors["support"] else 0.0),
        "max_abs_err_confidence": max(errors["confidence"], default=0.0),
    }


def _scenario(benchmark, backend_name, *, scenario, shards,
              insert_heavy, headline):
    workload = workloads.paper_scale(n_tuples=N_TUPLES, seed=13)
    config = EngineConfig(min_support=workload.min_support,
                          min_confidence=workload.min_confidence,
                          backend=backend_name, shards=shards)
    service = CorrelationService(config=config)
    try:
        service.create("bench", workload.relation.copy())
        service.estimate("bench")   # warm the sketch registries
        burst = _event_source(workload.relation, seed=29,
                              insert_heavy=insert_heavy)

        # Exact leg: queue a burst, then pay for the flush before the
        # first fresh answer is readable.
        for event in burst(EVENTS):
            service.submit("bench", event)
        exact_seconds, _ = time_once(lambda: (
            service.flush("bench"),
            service.top_rules("bench", TOP_K, by="confidence")))

        # Estimate leg: queue an equal burst, kick the exact refresh
        # into the background, answer immediately.
        for event in burst(EVENTS):
            service.submit("bench", event)
        future = service.flush_async("bench")
        estimate_seconds, snap = time_once(
            lambda: service.estimate("bench", n=TOP_K))
        assert len(snap) <= TOP_K and snap.estimated
        future.result(timeout=600)

        accuracy = _estimate_accuracy(service, "bench")
        if headline:
            benchmark.pedantic(
                lambda: service.estimate("bench", n=TOP_K),
                rounds=5, iterations=1)

        ratio = (exact_seconds / estimate_seconds
                 if estimate_seconds else float("inf"))
        binding = FULL_SCALE and headline
        record(f"E12_sketch_estimate:{scenario}", [
            f"tuples={N_TUPLES} backend={backend_name} shards={shards} "
            f"events={EVENTS} top_k={TOP_K}",
            f"exact (flush+read) : {fmt_ms(exact_seconds)}",
            f"estimate (no wait) : {fmt_ms(estimate_seconds)}",
            f"speedup            : {ratio:9.2f}x  "
            f"(target >= {TARGET_RATIO}x, binding: {binding})",
            f"bound coverage     : {accuracy['bound_coverage']:.3f} "
            f"over {accuracy['rules']} rules",
            f"mean |err| support : {accuracy['mean_abs_err_support']:.5f}",
        ])
        _record_json(f"{scenario}:{backend_name}", [{
            "backend": backend_name, "tuples": N_TUPLES,
            "shards": shards, "events": EVENTS, "top_k": TOP_K,
            "exact_seconds": exact_seconds,
            "estimate_seconds": estimate_seconds,
            "speedup": ratio, "binding": binding, **accuracy,
        }])
        # Post-flush, the estimates must sit inside their bounds — the
        # correctness half of the trade, asserted at every scale.
        assert accuracy["bound_coverage"] == 1.0, (
            f"estimates escaped their bounds after the exact refresh "
            f"landed: coverage {accuracy['bound_coverage']:.3f}")
        if binding:
            assert ratio >= TARGET_RATIO, (
                f"estimate read only {ratio:.2f}x faster than the exact "
                f"flush+read leg (target {TARGET_RATIO}x at "
                f"{N_TUPLES} tuples)")
    finally:
        service.close()


def test_sketch_estimate_vs_exact(benchmark, backend_name):
    """Monolithic fig7 workload: the headline estimate-read latency."""
    _scenario(benchmark, backend_name, scenario="fig7_monolithic",
              shards=1, insert_heavy=False, headline=True)


def test_sketch_estimate_sharded_skewed_stream(backend_name):
    """4-shard engine under an insert-heavy stream — the exact leg pays
    a routed flush plus the global SON re-merge per batch."""
    _scenario(None, backend_name, scenario="sharded_skewed",
              shards=4, insert_heavy=True, headline=False)

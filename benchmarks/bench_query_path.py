"""E10 — the serving read path: catalog queries vs. linear rule scans.

The exploitation story of the paper ("compare each tuple with the
valid association rules") and every serving surface built on it ask
the same few questions of the rule set over and over: which rules
mention this item, which rules predict this annotation, which rules
are the strongest.  Before the catalog, each such read was a linear
scan (plus a per-call sort for top-k); the catalog answers all of
them from secondary indexes and presorted metric orderings built
*once per engine revision*.

This experiment mines a rule-dense workload (fig7-scale tuple count,
thresholds low enough for a few thousand rules), then replays a mixed
query log — top-k by metric, by-item, by-RHS — twice: brute-force
linear scans over ``engine.rules`` versus the warm catalog.  Answers
are asserted identical, and the acceptance target is a >= 10x indexed
speedup for the top-k and by-item classes at full scale.  A final
section measures hot-revision reuse: repeated unchanged-revision
``service.snapshot()`` calls must return the same object (no per-call
rule copying) in ~O(1).

CI smoke shrinks the scale via ``REPRO_QUERY_TUPLES``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.app.service import CorrelationService
from repro.core.catalog import METRICS, RuleCatalog, metric_key
from repro.core.config import EngineConfig
from repro.core.engine import engine
from repro.synth import workloads
from benchmarks._harness import fmt_ms, record, time_once

#: Full-scale defaults; CI smoke shrinks the tuple count.
N_TUPLES = int(os.environ.get("REPRO_QUERY_TUPLES", "2000"))
#: Queries per class in the replayed log.
N_QUERIES = int(os.environ.get("REPRO_QUERY_QUERIES", "300"))
#: Thresholds low enough that the rule set is fig7-dense (thousands of
#: rules at full scale) — the regime where the read path matters.
MIN_SUPPORT = 0.02
MIN_CONFIDENCE = 0.2
TOP_K = 10
FULL_SCALE = N_TUPLES >= 2000 and N_QUERIES >= 100
TARGET_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def query_workload():
    return workloads.dense_correlations(n_tuples=N_TUPLES, seed=41)


@pytest.fixture(scope="module")
def query_manager(query_workload, backend_name):
    manager = engine(
        query_workload.relation.copy(),
        min_support=MIN_SUPPORT,
        min_confidence=MIN_CONFIDENCE,
        backend=backend_name)
    manager.mine()
    return manager


def _query_log(catalog, queries):
    """A deterministic mixed query log over the catalog's vocabulary."""
    rng = random.Random(59)
    items = list(catalog.items())
    rhs_items = list(catalog.rhs_items())
    return {
        "topk": [rng.choice(METRICS) for _ in range(queries)],
        "item": [rng.choice(items) for _ in range(queries)],
        "rhs": [rng.choice(rhs_items) for _ in range(queries)],
    }


def test_query_path_catalog_vs_linear_scan(benchmark, query_manager,
                                           backend_name):
    build_seconds, catalog = time_once(query_manager.catalog)
    # The baseline scans the same canonical listing the catalog serves,
    # so result *order* is identical and only the lookup cost differs.
    rules_list = list(catalog.rules)
    log = _query_log(catalog, N_QUERIES)

    # -- linear-scan baseline: what every caller did before ---------------
    def linear_topk(metric):
        return sorted(rules_list, key=metric_key(metric))[:TOP_K]

    def linear_item(item):
        return [rule for rule in rules_list if item in rule.union_itemset]

    def linear_rhs(rhs):
        return [rule for rule in rules_list if rule.rhs == rhs]

    linear_seconds = {}
    linear_answers = {}
    for name, run, queries in [
        ("topk", linear_topk, log["topk"]),
        ("item", linear_item, log["item"]),
        ("rhs", linear_rhs, log["rhs"]),
    ]:
        started = time.perf_counter()
        linear_answers[name] = [run(argument) for argument in queries]
        linear_seconds[name] = time.perf_counter() - started

    # -- indexed path: the same log against the warm catalog --------------
    def catalog_topk(metric):
        return catalog.top(TOP_K, by=metric)

    def catalog_item(item):
        return catalog.mentioning(item)

    def catalog_rhs(rhs):
        return catalog.with_rhs(rhs)

    catalog_seconds = {}
    catalog_answers = {}
    for name, run, queries in [
        ("topk", catalog_topk, log["topk"]),
        ("item", catalog_item, log["item"]),
        ("rhs", catalog_rhs, log["rhs"]),
    ]:
        started = time.perf_counter()
        catalog_answers[name] = [run(argument) for argument in queries]
        catalog_seconds[name] = time.perf_counter() - started

    # Headline measurement: the indexed replay of the whole mixed log.
    benchmark.pedantic(
        lambda: ([catalog_topk(m) for m in log["topk"]],
                 [catalog_item(i) for i in log["item"]],
                 [catalog_rhs(r) for r in log["rhs"]]),
        rounds=1, iterations=1)

    # Indexed answers must equal the brute-force answers, exactly.
    for name in ("topk", "item", "rhs"):
        for linear, indexed in zip(linear_answers[name],
                                   catalog_answers[name]):
            assert list(indexed) == list(linear), (
                f"catalog {name} query diverged from linear scan")

    speedups = {
        name: (linear_seconds[name] / catalog_seconds[name]
               if catalog_seconds[name] else float("inf"))
        for name in linear_seconds}
    per_query = {name: catalog_seconds[name] / N_QUERIES
                 for name in catalog_seconds}
    record("E10_query_path", [
        f"tuples={N_TUPLES} rules={len(catalog)} queries={N_QUERIES}/class "
        f"backend={backend_name}",
        f"catalog build (once per revision): {fmt_ms(build_seconds)}",
        f"top-{TOP_K} by metric : linear {fmt_ms(linear_seconds['topk'])}"
        f"  catalog {fmt_ms(catalog_seconds['topk'])}"
        f"  speedup {speedups['topk']:8.1f}x",
        f"by-item         : linear {fmt_ms(linear_seconds['item'])}"
        f"  catalog {fmt_ms(catalog_seconds['item'])}"
        f"  speedup {speedups['item']:8.1f}x",
        f"by-RHS          : linear {fmt_ms(linear_seconds['rhs'])}"
        f"  catalog {fmt_ms(catalog_seconds['rhs'])}"
        f"  speedup {speedups['rhs']:8.1f}x",
        f"per-query latency (catalog): "
        f"topk {per_query['topk'] * 1e6:7.1f} us  "
        f"item {per_query['item'] * 1e6:7.1f} us  "
        f"rhs {per_query['rhs'] * 1e6:7.1f} us",
        f"answers: catalog == linear for all {3 * N_QUERIES} queries "
        f"(target >= {TARGET_SPEEDUP}x at full scale: {FULL_SCALE})",
    ])
    if FULL_SCALE:
        assert speedups["topk"] >= TARGET_SPEEDUP, (
            f"indexed top-k only {speedups['topk']:.1f}x faster than "
            f"linear scan (target {TARGET_SPEEDUP}x)")
        assert speedups["item"] >= TARGET_SPEEDUP, (
            f"indexed by-item only {speedups['item']:.1f}x faster than "
            f"linear scan (target {TARGET_SPEEDUP}x)")


def test_query_path_hot_revision_reuse(query_workload, backend_name):
    """Unchanged-revision reads: snapshot() returns the same object,
    catalog() the same indexes — no per-call rule copying."""
    config = EngineConfig(min_support=MIN_SUPPORT,
                          min_confidence=MIN_CONFIDENCE,
                          backend=backend_name)
    service = CorrelationService(config=config)
    service.create("bench", query_workload.relation.copy())

    reads = max(100, N_QUERIES)
    first = service.snapshot("bench")
    started = time.perf_counter()
    for _ in range(reads):
        snap = service.snapshot("bench")
        assert snap is first  # identity: zero rules copied per call
    hot_seconds = time.perf_counter() - started

    # What every read used to pay: a fresh sorted copy of the rules
    # (the old ``_snapshot_locked`` body, re-run per call).
    rules = service.catalog("bench").rules
    started = time.perf_counter()
    for _ in range(reads):
        tuple(sorted(rules, key=metric_key("confidence")))
    rebuild_seconds = time.perf_counter() - started

    # A full catalog rebuild per read, for scale (nobody should).
    started = time.perf_counter()
    for _ in range(max(1, reads // 100)):
        RuleCatalog(rules)
    cold_build = (time.perf_counter() - started) / max(1, reads // 100)

    speedup = (rebuild_seconds / hot_seconds if hot_seconds
               else float("inf"))
    record("E10_query_path_hot_reads", [
        f"tuples={N_TUPLES} rules={len(rules)} reads={reads} "
        f"backend={backend_name}",
        f"hot snapshot() x{reads}   : {fmt_ms(hot_seconds)} "
        f"({hot_seconds / reads * 1e6:7.1f} us/read, same object)",
        f"per-read copy (old path) : {fmt_ms(rebuild_seconds)} "
        f"-> {speedup:.1f}x",
        f"full catalog rebuild     : {fmt_ms(cold_build)} each "
        f"(paid once per revision)",
    ])
    if FULL_SCALE:
        assert speedup >= TARGET_SPEEDUP, (
            f"hot snapshot reads only {speedup:.1f}x faster than "
            f"per-call copying (target {TARGET_SPEEDUP}x)")

"""E5 — the Figure 7 artifact: discovered-rules output on the reference
dataset, swept over a (support, confidence) grid.

The paper's sample output line is ``28 85 ==> Annot_1, 0.9659, 0.4194``
— a two-value LHS, annotation RHS, confidence then support.  This
benchmark regenerates the rule file at the paper's entry thresholds and
reports the rule counts across the grid (the knob the app's Figure 6
prompts expose).
"""

from __future__ import annotations

import io

import pytest

from repro.core.engine import engine
from repro.core.rules import RuleKind
from repro.mining.backend import available_backends
from repro.io.rules_format import parse_rules, write_rules
from repro.synth import workloads
from benchmarks._harness import record

GRID_SUPPORTS = (0.4, 0.3, 0.2)
GRID_CONFIDENCES = (0.9, 0.8, 0.6)


@pytest.fixture(scope="module")
def dense_workload():
    return workloads.dense_correlations()


def _mine(relation, min_support, min_confidence, backend="apriori-fup"):
    manager = engine(relation.copy(),
                     min_support=min_support,
                     min_confidence=min_confidence,
                     backend=backend)
    manager.mine()
    return manager


def test_fig7_rule_file_at_paper_thresholds(benchmark, paper_workload,
                                            backend_name):
    manager = benchmark.pedantic(
        lambda: _mine(paper_workload.relation,
                      paper_workload.min_support,
                      paper_workload.min_confidence,
                      backend_name),
        rounds=2, iterations=1)
    buffer = io.StringIO()
    write_rules(manager.rules, manager.vocabulary, buffer)
    lines = buffer.getvalue().splitlines()
    parsed = list(parse_rules(iter(lines)))
    assert len(parsed) == len(manager.rules)
    # The Figure 7 shape: a 2-value LHS rule with conf > 0.9, sup ~ 0.42.
    flagship = [entry for entry in parsed
                if len(entry.lhs_tokens) == 2 and entry.confidence > 0.9
                and entry.rhs_token == "Annot_1"]
    assert flagship, "paper's flagship rule shape missing"
    record("E5_fig7_rule_file", [
        f"rules discovered at (alpha=0.4, beta=0.8): {len(parsed)}",
        "first rows of the regenerated Figure 7 file:",
        *[f"  {line}" for line in lines[:6]],
        f"flagship rule (paper: '28 85 ==> Annot_1, 0.9659, 0.4194'): "
        f"{flagship[0].lhs_tokens} ==> {flagship[0].rhs_token}, "
        f"{flagship[0].confidence}, {flagship[0].support}",
        f"backend: {manager.backend_name}",
    ])


def test_fig7_backend_axis(benchmark, dense_workload, backend_name):
    """The same discovery pass on every registered backend: identical
    rule sets, per-backend wall clock as a comparison table."""
    from benchmarks._harness import fmt_ms, time_once

    manager = benchmark.pedantic(
        lambda: _mine(dense_workload.relation, 0.2, 0.6, backend_name),
        rounds=2, iterations=1)
    reference = manager.signature()

    rows = [f"benchmarked backend: {backend_name}",
            "backend        initial-mine      rules  agrees"]
    for name in available_backends():
        elapsed, other = time_once(
            lambda: _mine(dense_workload.relation, 0.2, 0.6, name))
        agrees = other.signature() == reference
        rows.append(f"{name:12s} {fmt_ms(elapsed)} {len(other.rules):8d}"
                    f"  {agrees}")
        assert agrees, f"backend {name} disagrees with {backend_name}"
    record("E5_fig7_backend_axis", rows)


def test_fig7_threshold_grid(benchmark, dense_workload):
    """Rule counts across the (α, β) grid; monotone in both axes."""
    def sweep():
        grid = {}
        for min_support in GRID_SUPPORTS:
            for min_confidence in GRID_CONFIDENCES:
                manager = _mine(dense_workload.relation, min_support,
                                min_confidence)
                grid[(min_support, min_confidence)] = (
                    len(manager.rules_of_kind(RuleKind.DATA_TO_ANNOTATION)),
                    len(manager.rules_of_kind(
                        RuleKind.ANNOTATION_TO_ANNOTATION)),
                )
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["alpha  beta   #D2A  #A2A"]
    for (min_support, min_confidence), (d2a, a2a) in sorted(grid.items(),
                                                            reverse=True):
        rows.append(f"{min_support:5.2f} {min_confidence:5.2f} "
                    f"{d2a:6d} {a2a:5d}")
    record("E5_fig7_threshold_grid", rows)

    # Shape: rule count is monotone non-increasing in each threshold.
    for min_confidence in GRID_CONFIDENCES:
        counts = [sum(grid[(s, min_confidence)]) for s in GRID_SUPPORTS]
        assert counts == sorted(counts), "support axis must be monotone"
    for min_support in GRID_SUPPORTS:
        counts = [sum(grid[(min_support, c)]) for c in GRID_CONFIDENCES]
        assert counts == sorted(counts), "confidence axis must be monotone"

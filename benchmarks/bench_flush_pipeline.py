"""E9 — the delta-plan flush pipeline: per-event vs. coalesced batches.

The serving path's cost model: a flush of N queued events used to pay
N maintenance walks, N full rule derivations and N invariant passes.
``apply_batch`` compiles the queue into one delta plan — one walk per
case, one dirty-scoped rule refresh, one validation — so a deep flush
should cost a small multiple of a *single* event, not N of them.

This experiment replays the same annotation-heavy update stream (the
paper's Case 3 mix) over a fig7-scale synthetic table three ways:
per-event ``apply``, one coalesced ``apply_batch``, and a service-level
``flush`` — checking ``signature()`` equality among all of them and
against a from-scratch re-mine, and reporting the speedup.  The
acceptance target is a >= 5x coalesced-over-per-event speedup for a
100-event flush at full scale (the assertion relaxes at the tiny sizes
CI smoke uses, set via ``REPRO_FLUSH_TUPLES`` / ``REPRO_FLUSH_EVENTS``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.app.service import CorrelationService
from repro.core.config import EngineConfig
from repro.core.engine import engine
from repro.core.events import AddAnnotations, RemoveAnnotations
from repro.synth import workloads
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from benchmarks._harness import fmt_ms, record, time_once

#: Full-scale defaults (the fig7 / Figure 16 setting); CI smoke shrinks
#: them via the environment.
N_TUPLES = int(os.environ.get("REPRO_FLUSH_TUPLES", "8000"))
N_EVENTS = int(os.environ.get("REPRO_FLUSH_EVENTS", "100"))
#: The acceptance target only binds at meaningful scale.
FULL_SCALE = N_TUPLES >= 4000 and N_EVENTS >= 100
TARGET_SPEEDUP = 5.0

#: A served annotation stream: each event is one curator action (a
#: couple of (tuple, annotation) pairs at most), Case 3 dominated, with
#: occasional inserts and deletions, and traffic concentrated on a hot
#: set of trending tuples — many events touch the same δ tuples, which
#: the plan compiler merges into one maintenance walk each.
STREAM = StreamConfig(
    seed=71,
    batch_size=2,
    weight_add_annotations=8.0,
    weight_insert_annotated=1.0,
    weight_insert_unannotated=0.5,
    weight_remove_annotations=2.0,
    weight_remove_tuples=0.25,
    hot_tuple_count=32,
    hot_tuple_bias=0.8,
)
#: Fraction of annotation events followed by a correction undoing one
#: of their pairs — curation churn, which coalescing cancels outright.
CHURN_RATE = 0.35


@pytest.fixture(scope="module")
def flush_workload():
    return workloads.paper_scale(n_tuples=N_TUPLES, seed=29)


@pytest.fixture(scope="module")
def flush_events(flush_workload):
    """One fixed event sequence, drawn against a shadow relation.

    Base events come from the seeded stream; with probability
    ``CHURN_RATE`` an annotation event is immediately followed by a
    correction removing one of its pairs (the submit-then-fix pattern
    of live curation).  Per-event application pays the full walk +
    discovery + refresh for both halves of every correction; the plan
    compiler cancels them before the engine ever sees them.
    """
    shadow = flush_workload.relation.copy()
    stream = EventStream(shadow, STREAM)
    rng = random.Random(97)
    events = []
    while len(events) < N_EVENTS:
        event = stream.draw()
        apply_to_relation(shadow, event)
        events.append(event)
        if (isinstance(event, AddAnnotations)
                and len(events) < N_EVENTS
                and rng.random() < CHURN_RATE):
            tid, annotation_id = rng.choice(event.additions)
            undo = RemoveAnnotations.build([(tid, annotation_id)])
            apply_to_relation(shadow, undo)
            events.append(undo)
    return events


def mined_engine(workload, backend, counter="auto"):
    manager = engine(
        workload.relation.copy(),
        min_support=workload.min_support,
        min_confidence=workload.min_confidence,
        backend=backend,
        counter=counter)
    manager.mine()
    return manager


def test_flush_pipeline_coalesced_vs_per_event(benchmark, flush_workload,
                                               flush_events, backend_name,
                                               counter_name):
    # Best-of-3 on each side (fresh engine per round: events mutate
    # state) so a scheduler hiccup cannot fake or mask the speedup.
    rounds = 3
    per_event_rounds = []
    for _ in range(rounds):
        per_event = mined_engine(flush_workload, backend_name,
                                 counter_name)

        def apply_per_event():
            for event in flush_events:
                per_event.apply(event)

        elapsed, _ = time_once(apply_per_event)
        per_event_rounds.append(elapsed)
    coalesced_rounds = []
    report = None
    for _ in range(rounds):
        batched = mined_engine(flush_workload, backend_name,
                               counter_name)
        elapsed, report = time_once(
            lambda: batched.apply_batch(flush_events))
        coalesced_rounds.append(elapsed)
    per_event_seconds = min(per_event_rounds)
    coalesced_seconds = min(coalesced_rounds)
    # Headline measurement: the coalesced flush, re-run via pedantic on
    # a fresh engine so pytest-benchmark owns its own timing.
    benchmark.pedantic(
        lambda: mined_engine(flush_workload, backend_name,
                             counter_name).apply_batch(flush_events),
        rounds=1, iterations=1)

    assert batched.signature() == per_event.signature(), (
        "coalesced flush diverged from per-event application")
    verification = batched.verify_against_remine()
    assert verification.equivalent, verification.explain()

    speedup = (per_event_seconds / coalesced_seconds
               if coalesced_seconds else float("inf"))
    stats = report.plan_stats
    record("E9_flush_pipeline", [
        f"tuples={N_TUPLES} events={N_EVENTS} "
        f"backend={backend_name} counter={counter_name}",
        f"per-event flush : {fmt_ms(per_event_seconds)}",
        f"coalesced flush : {fmt_ms(coalesced_seconds)}",
        f"speedup         : {speedup:8.1f}x  (target >= {TARGET_SPEEDUP}x "
        f"at full scale: {FULL_SCALE})",
        f"dirty patterns  : {report.patterns_dirty} of "
        f"{report.table_size} stored",
        f"coalesced away  : {stats.pairs_collapsed} dup pairs, "
        f"{stats.pairs_cancelled} cancelled, "
        f"{stats.inserts_elided} elided inserts",
        "signature: batched == per-event == remine",
    ])
    if FULL_SCALE:
        assert speedup >= TARGET_SPEEDUP, (
            f"coalesced flush only {speedup:.1f}x faster than per-event "
            f"application (target {TARGET_SPEEDUP}x)")


def test_flush_pipeline_through_the_service(flush_workload, flush_events,
                                            backend_name):
    """The serving facade path: queue everything, flush once, one
    revision bump, per-event audit rows intact."""
    config = EngineConfig(
        min_support=flush_workload.min_support,
        min_confidence=flush_workload.min_confidence,
        backend=backend_name)
    service = CorrelationService(config=config)
    service.create("bench", flush_workload.relation.copy())
    for event in flush_events:
        service.submit("bench", event)
    elapsed, report = time_once(lambda: service.flush("bench"))

    assert report.events == len(flush_events)
    snap = service.snapshot("bench")
    assert snap.revision == 2 and snap.pending_events == 0

    reference = mined_engine(flush_workload, backend_name)
    reference.apply_batch(flush_events)
    assert snap.signature == reference.signature()
    record("E9_flush_pipeline_service", [
        f"service flush of {len(flush_events)} events: {fmt_ms(elapsed)}",
        f"revision bumps: 1, audit rows: {report.events}",
    ])

"""E3 — Case 2 results: adding un-annotated tuples.

Paper semantics checked alongside the timing: supports may only fall,
annotation-to-annotation confidences are unchanged, no new rules can
appear, and the maintained rule set equals a full re-mine.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rules import RuleKind
from repro.synth.generator import value_token
from benchmarks._harness import fmt_ms, record, time_once
from benchmarks.conftest import fresh_case_manager


def _unannotated_rows(count, seed):
    rng = random.Random(seed)
    return [tuple(value_token(column, rng.randrange(40))
                  for column in range(6))
            for _ in range(count)]


@pytest.mark.parametrize("batch_size", [100, 500])
def test_case2_incremental_insert(benchmark, case_workload, batch_size):
    manager = fresh_case_manager(case_workload)
    a2a_before = {
        rule.key: rule.confidence
        for rule in manager.rules_of_kind(RuleKind.ANNOTATION_TO_ANNOTATION)
    }
    rows = _unannotated_rows(batch_size, seed=batch_size)

    seconds, report = time_once(lambda: manager.insert_unannotated(rows))
    benchmark(lambda: None)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["ms"] = round(seconds * 1000, 2)

    # Paper: "there are never going to be new rules to discover".
    assert report.rules_added == []
    # Paper: A2A confidence unchanged for surviving rules.
    for rule in manager.rules_of_kind(RuleKind.ANNOTATION_TO_ANNOTATION):
        if rule.key in a2a_before:
            assert rule.confidence == pytest.approx(a2a_before[rule.key])

    verification = manager.verify_against_remine()
    record(f"E3_case2_batch_{batch_size}", [
        f"base {len(case_workload.relation)} tuples + {batch_size} "
        f"un-annotated tuples",
        f"incremental maintenance : {fmt_ms(seconds)} "
        f"(0 new rules, {len(report.rules_dropped)} diluted away)",
        f"rule sets identical to re-mine: {verification.equivalent}",
    ])
    assert verification.equivalent


def test_case2_dilution_shape(benchmark, case_workload):
    """Supports must be monotonically non-increasing under Case 2."""
    manager = fresh_case_manager(case_workload)
    supports_before = {rule.key: rule.support for rule in manager.rules}

    benchmark.pedantic(
        lambda: manager.insert_unannotated(_unannotated_rows(200, seed=3)),
        rounds=1, iterations=1)

    for rule in manager.rules:
        if rule.key in supports_before:
            assert rule.support <= supports_before[rule.key] + 1e-12
    assert manager.verify_against_remine().equivalent

"""E6 — Figures 8-10: generalization-based correlations.

The paper's motivating claim for section 4.1: mapping raw annotations
to generalized labels "mak[es] it possible to detect correlations that
might otherwise go unnoticed".  The sparse-annotations workload splits
one concept across six raw annotation ids, each individually below the
support threshold; the benchmark shows zero raw rules for the concept
versus a confident label-level rule in the extended database, and times
the extended-database mining pass.
"""

from __future__ import annotations

import pytest

from repro.core.engine import engine
from repro.generalization.engine import Generalizer
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
)
from repro.mining.itemsets import ItemKind
from repro.synth import workloads
from benchmarks._harness import record


@pytest.fixture(scope="module")
def sparse_workload():
    return workloads.sparse_annotations()


def _variant_ids(relation):
    return frozenset(
        annotation.annotation_id for annotation in relation.registry
        if annotation.annotation_id.startswith("Annot_inv"))


def _mine(relation, workload, generalizer=None):
    manager = engine(
        relation, min_support=workload.min_support,
        min_confidence=workload.min_confidence, generalizer=generalizer)
    manager.mine()
    return manager


def test_fig8_generalization_surfaces_rules(benchmark, sparse_workload):
    raw_manager = _mine(sparse_workload.relation.copy(), sparse_workload)
    raw_concept_rules = [
        rule for rule in raw_manager.rules
        if raw_manager.vocabulary.item(rule.rhs).token.startswith(
            "Annot_inv")
    ]

    relation = sparse_workload.relation.copy()
    generalizer = Generalizer(
        relation.registry,
        GeneralizationRuleSet([GeneralizationRule(
            "Invalidation", IdMatcher(_variant_ids(relation)))]),
        ConceptHierarchy.from_edges([("Invalidation", "QualityIssue")]))

    generalized_manager = benchmark.pedantic(
        lambda: _mine(relation, sparse_workload, generalizer),
        rounds=1, iterations=1)
    label_rules = [
        rule for rule in generalized_manager.rules
        if generalized_manager.vocabulary.item(rule.rhs).kind
        is ItemKind.LABEL
    ]

    record("E6_fig8_generalization", [
        f"workload: {len(sparse_workload.relation)} tuples, one concept "
        f"split over {len(_variant_ids(sparse_workload.relation))} raw ids",
        f"raw-level rules heading the concept      : "
        f"{len(raw_concept_rules)}",
        f"label-level rules in the extended database: {len(label_rules)}",
        "sample: " + (label_rules[0].render(
            generalized_manager.vocabulary) if label_rules else "<none>"),
        "(paper section 4.1: generalization detects correlations that "
        "'might otherwise go unnoticed')",
    ])

    # The headline shape: invisible raw, visible generalized.
    assert len(raw_concept_rules) == 0
    assert len(label_rules) > 0


def test_fig8_hierarchy_levels_mined_together(benchmark, sparse_workload):
    """Multi-level shape: the coarser ancestor label also heads rules."""
    relation = sparse_workload.relation.copy()
    generalizer = Generalizer(
        relation.registry,
        GeneralizationRuleSet([GeneralizationRule(
            "Invalidation", IdMatcher(_variant_ids(relation)))]),
        ConceptHierarchy.from_edges([("Invalidation", "QualityIssue")]))
    manager = benchmark.pedantic(
        lambda: _mine(relation, sparse_workload, generalizer),
        rounds=1, iterations=1)
    rhs_tokens = {manager.vocabulary.item(rule.rhs).token
                  for rule in manager.rules}
    assert "Invalidation" in rhs_tokens
    assert "QualityIssue" in rhs_tokens  # ancestor level, same pass
    record("E6_fig8_hierarchy", [
        f"labels heading rules: "
        f"{sorted(token for token in rhs_tokens if token[0].isupper())}",
    ])


def test_fig8_incremental_labels_stay_exact(benchmark, sparse_workload):
    """Case 3 over the extended database (labels arrive incrementally)."""
    from repro.synth.generator import generate_annotation_batch

    relation = sparse_workload.relation.copy()
    generalizer = Generalizer(
        relation.registry,
        GeneralizationRuleSet([GeneralizationRule(
            "Invalidation", IdMatcher(_variant_ids(relation)))]))
    manager = _mine(relation, sparse_workload, generalizer)
    batch = generate_annotation_batch(
        relation, size=40, seed=3,
        annotation_pool=sorted(_variant_ids(relation)))
    benchmark.pedantic(lambda: manager.add_annotations(batch),
                       rounds=1, iterations=1)
    assert manager.verify_against_remine().equivalent

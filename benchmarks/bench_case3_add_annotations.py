"""E4 — Case 3 results: adding annotations to existing tuples.

The paper's main contribution.  Timed here across δ-batch sizes from
0.5% to 10% of the database, always asserting the identity with a full
re-mine, plus the Figure-12 monotonicity facts: data-to-annotation
support/confidence can only rise, and only LHS-affected A2A rules can
lose confidence.
"""

from __future__ import annotations

import pytest

from repro.core.rules import RuleKind
from repro.synth.generator import generate_annotation_batch
from benchmarks._harness import fmt_ms, record, time_once
from benchmarks.conftest import fresh_case_manager

#: δ batch sizes as fractions of the 2000-tuple base.
BATCH_FRACTIONS = (0.005, 0.02, 0.10)


@pytest.mark.parametrize("fraction", BATCH_FRACTIONS)
def test_case3_delta_batch(benchmark, case_workload, fraction):
    manager = fresh_case_manager(case_workload)
    size = max(1, int(len(case_workload.relation) * fraction))
    batch = generate_annotation_batch(manager.relation, size=size,
                                      seed=int(fraction * 1000))

    seconds, report = time_once(lambda: manager.add_annotations(batch))
    benchmark(lambda: None)
    benchmark.extra_info["delta_pairs"] = size
    benchmark.extra_info["ms"] = round(seconds * 1000, 2)

    verification = manager.verify_against_remine()
    record(f"E4_case3_delta_{size}", [
        f"base {len(case_workload.relation)} tuples, delta batch of "
        f"{size} (tid, annotation) pairs ({fraction:.1%})",
        f"incremental maintenance : {fmt_ms(seconds)} "
        f"({report.patterns_touched} pattern refreshes, "
        f"+{len(report.patterns_added)} patterns, "
        f"+{len(report.rules_added)}/-{len(report.rules_dropped)} rules)",
        f"rule sets identical to re-mine: {verification.equivalent}",
    ])
    assert verification.equivalent


def test_case3_d2a_stats_never_decrease(benchmark, case_workload):
    """Paper: 'all current data-to-annotation rules are guaranteed to
    remain valid because the support and confidence cannot decrease'."""
    manager = fresh_case_manager(case_workload)
    before = {
        rule.key: (rule.support, rule.confidence)
        for rule in manager.rules_of_kind(RuleKind.DATA_TO_ANNOTATION)
    }
    batch = generate_annotation_batch(manager.relation, size=100, seed=5)
    benchmark.pedantic(lambda: manager.add_annotations(batch),
                       rounds=1, iterations=1)
    for key, (support, confidence) in before.items():
        rule = manager.rules.get(key)
        assert rule is not None, "D2A rules remain valid under Case 3"
        assert rule.support >= support - 1e-12
        assert rule.confidence >= confidence - 1e-12
    assert manager.verify_against_remine().equivalent


def test_case3_scan_is_proportional_to_delta(benchmark, case_workload):
    """The Figure-12 access pattern: only δ tuples are scanned."""
    manager = fresh_case_manager(case_workload)
    small = generate_annotation_batch(manager.relation, size=10, seed=11)
    report = manager.add_annotations(small)
    assert report.tuples_scanned <= len(small)
    large = generate_annotation_batch(manager.relation, size=150, seed=12)

    def run():
        return manager.add_annotations(large)

    final = benchmark.pedantic(run, rounds=1, iterations=1)
    assert final.tuples_scanned <= len(large)
    assert manager.verify_against_remine().equivalent

"""E11 — sharded mining: shard-count scaling with exact-merge checks.

The sharded engine's claim is twofold: (1) *exactness* — for every
shard count the merged rules are byte-identical to the monolithic
engine's (the SON two-phase protocol); (2) *speed* — the partitioned
substrate (one bulk tokenization pass, per-shard bitmap indexes built
in one sweep, vertical phase-1 mines on a thread pool) makes the
4-shard initial mine at least 2x faster than the monolithic engine's
per-tuple encode + configured-backend mine at fig7 scale.

The shard-count axis includes 1, so the table separates what the
substrate buys from what partitioning buys.  The speedup target binds
at full scale only (CI smoke shrinks via ``REPRO_SHARD_TUPLES``);
signature equality is asserted at *every* scale and shard count — that
is the part that must never regress.

A third axis compares the phase-1 executors: the thread pool against
worker processes mining shared-memory bitmap pages
(``shard_executor="process"``).  The >= 2x process-over-thread target
binds only where the hardware can show it (>= 4 cores); everywhere
else the row is measured, recorded and signature-asserted.  Every
table also lands in machine-readable form in
``benchmarks/out/BENCH_shard_scaling.json`` (rows keyed by scenario;
re-runs replace their scenario's rows).  Set
``REPRO_SHARD_BIG_TUPLES`` (e.g. ``1000000``) to add the opt-in
million-tuple synthetic-stream row.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.engine import engine
from repro.shard import ShardedEngine
from repro.shard.pool import available_cpus
from repro.synth import workloads
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from benchmarks._harness import OUT_DIR, fmt_ms, record, time_once

N_TUPLES = int(os.environ.get("REPRO_SHARD_TUPLES", "8000"))
BIG_TUPLES = int(os.environ.get("REPRO_SHARD_BIG_TUPLES", "0"))
SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("thread", "process")
FULL_SCALE = N_TUPLES >= 4000
TARGET_SPEEDUP = 2.0
#: Process-over-thread target (binding only with enough cores to show
#: multi-core wins; a 1-2 core box pays fork cost for no parallelism).
EXECUTOR_TARGET_SPEEDUP = 2.0
EXECUTOR_TARGET_CORES = 4
ROUNDS = 5

JSON_PATH = os.path.join(OUT_DIR, "BENCH_shard_scaling.json")


def _record_json(scenario: str, rows: list[dict]) -> None:
    """Merge ``rows`` into the machine-readable output, replacing any
    earlier rows of the same scenario (read-merge-write, so the file
    accumulates one entry set per scenario across the module).

    Every row is stamped with the shard pool's ``available_cpus()`` and
    the phase-1 executor actually used — without those two a recorded
    speedup is uninterpretable across boxes (a 1.1x "process win" on a
    2-core runner and a 4x win on a 16-core box must not look alike).
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    existing = []
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH, encoding="utf-8") as handle:
            existing = json.load(handle)
    existing = [row for row in existing if row.get("scenario") != scenario]
    existing.extend({"scenario": scenario, "cpus": available_cpus(), **row}
                    for row in rows)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")

#: The >= 2x acceptance target binds on the acceptance configuration —
#: fig7 scale on the default backend.  Other REPRO_BACKEND axes are
#: measured and recorded (and their signatures always asserted), but a
#: faster monolithic baseline is not held to the same multiple.
from repro.mining.backend import DEFAULT_BACKEND  # noqa: E402


@pytest.fixture(scope="module")
def shard_workload():
    return workloads.paper_scale(n_tuples=N_TUPLES, seed=13)


def _mono(relation, workload, backend):
    manager = engine(relation,
                     min_support=workload.min_support,
                     min_confidence=workload.min_confidence,
                     backend=backend)
    manager.mine()
    return manager


def _sharded(relation, workload, backend, shards, *,
             executor="thread", workers=None, phases=None, key=None):
    manager = ShardedEngine(relation,
                            min_support=workload.min_support,
                            min_confidence=workload.min_confidence,
                            backend=backend, shards=shards,
                            shard_executor=executor,
                            shard_workers=workers)
    report = manager.mine()
    if phases is not None:
        phases[key if key is not None else executor] = \
            report.phases.as_dict()
    return manager


def _best_of(workload, fn, rounds=ROUNDS):
    """Best-of-N with the relation copy *outside* the timed region —
    both sides of the comparison would otherwise pay the same copy,
    diluting the measured ratio.  Discarded rounds are closed outside
    the timed region too, so a process-mode engine's worker pool is
    reaped promptly instead of piling up until GC."""
    times, result = [], None
    for _ in range(rounds):
        relation = workload.relation.copy()
        if result is not None:
            result.close()
        elapsed, result = time_once(lambda: fn(relation))
        times.append(elapsed)
    return min(times), result


def test_shard_scaling_initial_mine(benchmark, shard_workload,
                                    backend_name):
    mono_seconds, mono = _best_of(
        shard_workload,
        lambda relation: _mono(relation, shard_workload, backend_name))
    reference = mono.signature()

    binding = FULL_SCALE and backend_name == DEFAULT_BACKEND
    rows = [f"tuples={N_TUPLES} backend={backend_name} "
            f"(workers = shard count)",
            f"monolithic   {fmt_ms(mono_seconds)}        1.00x  baseline",
            "shards       initial-mine   speedup  identical"]
    json_rows = [{"backend": backend_name, "tuples": N_TUPLES,
                  "shards": 0, "executor": "none",
                  "seconds": mono_seconds,
                  "speedup": 1.0, "identical": True}]
    speedups, phases = {}, {}
    for shards in SHARD_COUNTS:
        seconds, manager = _best_of(
            shard_workload,
            lambda relation: _sharded(relation, shard_workload,
                                      backend_name, shards,
                                      phases=phases, key=shards))
        identical = manager.signature() == reference
        speedups[shards] = mono_seconds / seconds if seconds else float("inf")
        rows.append(f"{shards:6d}  {fmt_ms(seconds)} {speedups[shards]:9.2f}x"
                    f"  {identical}")
        json_rows.append({"backend": backend_name, "tuples": N_TUPLES,
                          "shards": shards, "executor": "thread",
                          "seconds": seconds,
                          "speedup": speedups[shards],
                          "identical": identical,
                          "phases": phases.get(shards)})
        manager.close()
        assert identical, (
            f"{shards}-shard merge diverged from the monolithic rules")
        assert len(manager.rules) == len(mono.rules)

    # Headline measurement: the 4-shard mine under pytest-benchmark.
    relation = shard_workload.relation.copy()
    benchmark.pedantic(
        lambda: _sharded(relation, shard_workload, backend_name, 4),
        rounds=1, iterations=1)
    rows.append(f"target: >= {TARGET_SPEEDUP}x at 4 shards "
                f"(binding on this axis: {binding})")
    record("E11_shard_scaling", rows)
    _record_json(f"initial_mine_scaling:{backend_name}", json_rows)
    if binding:
        assert speedups[4] >= TARGET_SPEEDUP, (
            f"4-shard initial mine only {speedups[4]:.2f}x faster than "
            f"monolithic (target {TARGET_SPEEDUP}x)")


def test_shard_executor_axis(benchmark, shard_workload, backend_name):
    """Thread pool vs worker processes over shared bitmap pages, at 4
    shards x 4 workers.  Exactness is asserted on every box; the >= 2x
    process-over-thread target binds only at full scale on the default
    backend with enough cores to show multi-core wins."""
    cores = os.cpu_count() or 1
    binding = (FULL_SCALE and backend_name == DEFAULT_BACKEND
               and cores >= EXECUTOR_TARGET_CORES)

    mono = _mono(shard_workload.relation.copy(), shard_workload,
                 backend_name)
    reference = mono.signature()

    seconds, json_rows, phases = {}, [], {}
    rows = [f"tuples={N_TUPLES} backend={backend_name} cores={cores} "
            f"(4 shards x 4 workers)",
            "executor   initial-mine   identical"]
    for executor in EXECUTORS:
        seconds[executor], manager = _best_of(
            shard_workload,
            lambda relation: _sharded(relation, shard_workload,
                                      backend_name, 4, executor=executor,
                                      workers=4, phases=phases))
        identical = manager.signature() == reference
        rows.append(f"{executor:9s} {fmt_ms(seconds[executor])}  "
                    f"{identical}")
        json_rows.append({"backend": backend_name, "tuples": N_TUPLES,
                          "executor": executor, "cores": cores,
                          "seconds": seconds[executor],
                          "identical": identical,
                          "phases": phases.get(executor)})
        manager.close()
        assert identical, (
            f"{executor}-executor merge diverged from the monolithic "
            f"rules")

    # Headline measurement: the process-mode 4-shard mine.
    relation = shard_workload.relation.copy()
    benchmark.pedantic(
        lambda: _sharded(relation, shard_workload, backend_name, 4,
                         executor="process", workers=4),
        rounds=1, iterations=1)

    speedup = (seconds["thread"] / seconds["process"]
               if seconds["process"] else float("inf"))
    rows.append(f"process/thread speedup: {speedup:.2f}x "
                f"(target >= {EXECUTOR_TARGET_SPEEDUP}x, binding on "
                f"this axis: {binding})")
    record("E11_shard_executor_axis", rows)
    json_rows.append({"backend": backend_name, "tuples": N_TUPLES,
                      "executor": "speedup", "cores": cores,
                      "seconds": speedup, "identical": True})
    _record_json(f"executor_axis:{backend_name}", json_rows)
    if binding:
        assert speedup >= EXECUTOR_TARGET_SPEEDUP, (
            f"process-mode 4-shard mine only {speedup:.2f}x the "
            f"thread mode (target {EXECUTOR_TARGET_SPEEDUP}x on "
            f"{cores} cores)")


@pytest.mark.skipif(BIG_TUPLES < 1,
                    reason="set REPRO_SHARD_BIG_TUPLES to opt in")
def test_million_tuple_stream_row(backend_name):
    """Opt-in scale row: a synthetic stream at ``REPRO_SHARD_BIG_TUPLES``
    (intended: 1e6) tuples, mined once per executor at 8 shards.  At
    this scale the linear bulk index build and the zero-copy pages are
    the difference between minutes and hours; exactness is asserted
    between the two executors (a monolithic reference mine would
    dominate the runtime, so the thread row is the baseline)."""
    workload = workloads.paper_scale(n_tuples=BIG_TUPLES, seed=13)
    rows = [f"tuples={BIG_TUPLES} backend={backend_name} "
            f"(8 shards x 4 workers, single round)"]
    json_rows, signatures, seconds, phases = [], {}, {}, {}
    for executor in EXECUTORS:
        relation = workload.relation.copy()
        seconds[executor], manager = time_once(
            lambda: _sharded(relation, workload, backend_name, 8,
                             executor=executor, workers=4,
                             phases=phases))
        # Exercise the maintenance path at scale too — in process mode
        # the flush re-mines its touched shards on the persistent pool.
        # The stream draws against a shadow copy: mutating the engine's
        # own relation would invalidate its incremental state.
        shadow = relation.copy()
        stream = EventStream(shadow, StreamConfig(seed=83,
                                                  batch_size=16))
        events = list(stream.take(
            64, apply=lambda event: apply_to_relation(shadow, event)))
        flush_seconds, report = time_once(
            lambda: manager.apply_batch(events))
        signatures[executor] = manager.signature()
        manager.close()
        rows.append(f"{executor:9s} mine {fmt_ms(seconds[executor])}  "
                    f"flush({len(events)} ev) {fmt_ms(flush_seconds)}")
        json_rows.append({"backend": backend_name, "tuples": BIG_TUPLES,
                          "executor": executor,
                          "seconds": seconds[executor],
                          "flush_seconds": flush_seconds,
                          "flush_phases": report.phases.as_dict(),
                          "identical": True,
                          "phases": phases.get(executor)})
    assert signatures["process"] == signatures["thread"], (
        "executors diverged at stream scale")
    record("E11_shard_big_stream", rows)
    _record_json(f"big_stream:{backend_name}", json_rows)


def test_shard_scaling_incremental_flush(shard_workload, backend_name):
    """A routed flush stays exact and within a small multiple of the
    monolithic flush (it adds one global re-merge per batch)."""
    shadow = shard_workload.relation.copy()
    stream = EventStream(shadow, StreamConfig(
        seed=83, batch_size=3,
        weight_add_annotations=6.0,
        weight_insert_annotated=2.0,
        weight_remove_annotations=1.0,
        weight_remove_tuples=0.5,
    ))
    events = list(stream.take(
        40, apply=lambda event: apply_to_relation(shadow, event)))

    mono = _mono(shard_workload.relation.copy(), shard_workload,
                 backend_name)
    mono_seconds, _ = time_once(lambda: mono.apply_batch(events))
    sharded = _sharded(shard_workload.relation.copy(), shard_workload,
                       backend_name, 4)
    sharded_seconds, report = time_once(
        lambda: sharded.apply_batch(events))

    assert sharded.signature() == mono.signature(), (
        "routed flush diverged from the monolithic flush")
    record("E11_shard_flush", [
        f"tuples={N_TUPLES} events={len(events)} backend={backend_name}",
        f"monolithic flush : {fmt_ms(mono_seconds)}",
        f"4-shard flush    : {fmt_ms(sharded_seconds)} "
        f"({report.shards_touched} shard(s) touched, one re-merge)",
        f"phases           : {report.phases.summary()}",
        "signature: sharded == monolithic",
    ])
    _record_json(f"incremental_flush:{backend_name}", [
        {"backend": backend_name, "tuples": N_TUPLES,
         "events": len(events), "shards": 4, "executor": "thread",
         "mono_seconds": mono_seconds, "seconds": sharded_seconds,
         "shards_touched": report.shards_touched,
         "phases": report.phases.as_dict()},
    ])
    sharded.close()

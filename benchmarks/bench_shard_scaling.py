"""E11 — sharded mining: shard-count scaling with exact-merge checks.

The sharded engine's claim is twofold: (1) *exactness* — for every
shard count the merged rules are byte-identical to the monolithic
engine's (the SON two-phase protocol); (2) *speed* — the partitioned
substrate (one bulk tokenization pass, per-shard bitmap indexes built
in one sweep, vertical phase-1 mines on a thread pool) makes the
4-shard initial mine at least 2x faster than the monolithic engine's
per-tuple encode + configured-backend mine at fig7 scale.

The shard-count axis includes 1, so the table separates what the
substrate buys from what partitioning buys.  The speedup target binds
at full scale only (CI smoke shrinks via ``REPRO_SHARD_TUPLES``);
signature equality is asserted at *every* scale and shard count — that
is the part that must never regress.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import engine
from repro.shard import ShardedEngine
from repro.synth import workloads
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from benchmarks._harness import fmt_ms, record, time_once

N_TUPLES = int(os.environ.get("REPRO_SHARD_TUPLES", "8000"))
SHARD_COUNTS = (1, 2, 4, 8)
FULL_SCALE = N_TUPLES >= 4000
TARGET_SPEEDUP = 2.0
ROUNDS = 5

#: The >= 2x acceptance target binds on the acceptance configuration —
#: fig7 scale on the default backend.  Other REPRO_BACKEND axes are
#: measured and recorded (and their signatures always asserted), but a
#: faster monolithic baseline is not held to the same multiple.
from repro.mining.backend import DEFAULT_BACKEND  # noqa: E402


@pytest.fixture(scope="module")
def shard_workload():
    return workloads.paper_scale(n_tuples=N_TUPLES, seed=13)


def _mono(relation, workload, backend):
    manager = engine(relation,
                     min_support=workload.min_support,
                     min_confidence=workload.min_confidence,
                     backend=backend)
    manager.mine()
    return manager


def _sharded(relation, workload, backend, shards):
    manager = ShardedEngine(relation,
                            min_support=workload.min_support,
                            min_confidence=workload.min_confidence,
                            backend=backend, shards=shards)
    manager.mine()
    return manager


def _best_of(workload, fn, rounds=ROUNDS):
    """Best-of-N with the relation copy *outside* the timed region —
    both sides of the comparison would otherwise pay the same copy,
    diluting the measured ratio."""
    times, result = [], None
    for _ in range(rounds):
        relation = workload.relation.copy()
        elapsed, result = time_once(lambda: fn(relation))
        times.append(elapsed)
    return min(times), result


def test_shard_scaling_initial_mine(benchmark, shard_workload,
                                    backend_name):
    mono_seconds, mono = _best_of(
        shard_workload,
        lambda relation: _mono(relation, shard_workload, backend_name))
    reference = mono.signature()

    binding = FULL_SCALE and backend_name == DEFAULT_BACKEND
    rows = [f"tuples={N_TUPLES} backend={backend_name} "
            f"(workers = shard count)",
            f"monolithic   {fmt_ms(mono_seconds)}        1.00x  baseline",
            "shards       initial-mine   speedup  identical"]
    speedups = {}
    for shards in SHARD_COUNTS:
        seconds, manager = _best_of(
            shard_workload,
            lambda relation: _sharded(relation, shard_workload,
                                      backend_name, shards))
        identical = manager.signature() == reference
        speedups[shards] = mono_seconds / seconds if seconds else float("inf")
        rows.append(f"{shards:6d}  {fmt_ms(seconds)} {speedups[shards]:9.2f}x"
                    f"  {identical}")
        assert identical, (
            f"{shards}-shard merge diverged from the monolithic rules")
        assert len(manager.rules) == len(mono.rules)

    # Headline measurement: the 4-shard mine under pytest-benchmark.
    relation = shard_workload.relation.copy()
    benchmark.pedantic(
        lambda: _sharded(relation, shard_workload, backend_name, 4),
        rounds=1, iterations=1)
    rows.append(f"target: >= {TARGET_SPEEDUP}x at 4 shards "
                f"(binding on this axis: {binding})")
    record("E11_shard_scaling", rows)
    if binding:
        assert speedups[4] >= TARGET_SPEEDUP, (
            f"4-shard initial mine only {speedups[4]:.2f}x faster than "
            f"monolithic (target {TARGET_SPEEDUP}x)")


def test_shard_scaling_incremental_flush(shard_workload, backend_name):
    """A routed flush stays exact and within a small multiple of the
    monolithic flush (it adds one global re-merge per batch)."""
    shadow = shard_workload.relation.copy()
    stream = EventStream(shadow, StreamConfig(
        seed=83, batch_size=3,
        weight_add_annotations=6.0,
        weight_insert_annotated=2.0,
        weight_remove_annotations=1.0,
        weight_remove_tuples=0.5,
    ))
    events = list(stream.take(
        40, apply=lambda event: apply_to_relation(shadow, event)))

    mono = _mono(shard_workload.relation.copy(), shard_workload,
                 backend_name)
    mono_seconds, _ = time_once(lambda: mono.apply_batch(events))
    sharded = _sharded(shard_workload.relation.copy(), shard_workload,
                       backend_name, 4)
    sharded_seconds, report = time_once(
        lambda: sharded.apply_batch(events))

    assert sharded.signature() == mono.signature(), (
        "routed flush diverged from the monolithic flush")
    record("E11_shard_flush", [
        f"tuples={N_TUPLES} events={len(events)} backend={backend_name}",
        f"monolithic flush : {fmt_ms(mono_seconds)}",
        f"4-shard flush    : {fmt_ms(sharded_seconds)} "
        f"({report.shards_touched} shard(s) touched, one re-merge)",
        "signature: sharded == monolithic",
    ])

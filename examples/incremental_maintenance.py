"""The Figure 16 experiment as a script: incremental vs re-mine.

Generates the paper-scale workload (~8000 tuples, α = 0.4, β = 0.8),
then streams δ batches of new annotations through the incremental
maintenance path while timing, for each batch, what a full Apriori
re-mine of the updated database would have cost instead — exactly the
comparison of the paper's Figure 16.

Run with:  python examples/incremental_maintenance.py
"""

import time

import repro
from repro import remine
from repro.synth.generator import generate_annotation_batch
from repro.synth.workloads import paper_scale


def main() -> None:
    workload = paper_scale()
    print(f"Workload: {len(workload.relation)} tuples, "
          f"alpha={workload.min_support}, beta={workload.min_confidence} "
          f"(the paper's Figure 16 setting)")

    manager = repro.engine(
        workload.relation,
        min_support=workload.min_support,
        min_confidence=workload.min_confidence)
    started = time.perf_counter()
    manager.mine()
    print(f"Initial mine: {time.perf_counter() - started:.2f} s, "
          f"{len(manager.rules)} rules, {len(manager.table)} patterns\n")

    print(f"{'batch':>6} {'incremental':>14} {'full re-mine':>14} "
          f"{'speedup':>9}  rules")
    total_incremental = total_remine = 0.0
    for batch_number in range(1, 6):
        batch = generate_annotation_batch(manager.relation, size=80,
                                          seed=batch_number)
        started = time.perf_counter()
        manager.add_annotations(batch)
        incremental = time.perf_counter() - started

        started = time.perf_counter()
        baseline = remine(manager.relation,
                          min_support=workload.min_support,
                          min_confidence=workload.min_confidence)
        full = time.perf_counter() - started

        total_incremental += incremental
        total_remine += full
        identical = manager.signature() == baseline.signature()
        print(f"{batch_number:>6} {incremental * 1000:>11.1f} ms "
              f"{full * 1000:>11.1f} ms {full / incremental:>8.1f}x  "
              f"{len(manager.rules)} (identical={identical})")

    print(f"\nTotals over 5 batches: incremental "
          f"{total_incremental * 1000:.0f} ms vs re-mine "
          f"{total_remine * 1000:.0f} ms "
          f"({total_remine / total_incremental:.1f}x)")
    print("Paper's observation: 'the run times to update and discover new "
          "rules is significantly faster than running the entire apriori "
          "algorithm each time an update is made' — reproduced.")


if __name__ == "__main__":
    main()

"""Annotation-propagating queries feeding the miner.

The related-work section of the paper surveys systems where annotations
flow through SQL queries.  This example shows the reproduction's query
algebra doing exactly that — and, because query outputs are ordinary
annotated relations, mining correlations *on a view*:

1. join a measurements relation with an instruments relation
   (annotations from both sides survive onto the join result),
2. select the suspicious subset,
3. mine rules on the view, and
4. persist the session state and restore it.

Run with:  python examples/annotated_views.py
"""

import random
import tempfile
from pathlib import Path

import repro
from repro import AnnotatedRelation, Annotation, Schema
from repro.core import persistence
from repro.relation.query import join, project, select


def build_measurements(seed: int = 3) -> AnnotatedRelation:
    rng = random.Random(seed)
    relation = AnnotatedRelation(Schema(["sample", "instrument", "value"]),
                                 name="measurements")
    flag_count = 0
    for index in range(300):
        instrument = rng.choice(["inst-1", "inst-2", "inst-3"])
        value_band = ("high" if instrument == "inst-3"
                      and rng.random() < 0.8 else rng.choice(
                          ["low", "mid", "high"]))
        tid = relation.insert((f"s{index}", instrument, value_band))
        if instrument == "inst-3" and value_band == "high" \
                and rng.random() < 0.85:
            flag_count += 1
            relation.annotate(tid, Annotation(
                f"Annot_flag{flag_count}", text="suspicious reading"))
    return relation


def build_instruments() -> AnnotatedRelation:
    relation = AnnotatedRelation(Schema(["instrument", "vendor"]),
                                 name="instruments")
    relation.insert(("inst-1", "acme"))
    relation.insert(("inst-2", "acme"))
    tid = relation.insert(("inst-3", "globex"))
    relation.annotate(tid, Annotation(
        "Annot_recall", text="vendor recall notice"))
    return relation


def main() -> None:
    measurements = build_measurements()
    instruments = build_instruments()
    print(f"measurements: {len(measurements)} tuples, "
          f"{len(measurements.registry)} annotations")
    print(f"instruments : {len(instruments)} tuples "
          f"(inst-3 carries a vendor recall annotation)")

    joined = join(measurements, instruments, on=(1, 0))
    print(f"\njoin on instrument: {len(joined)} tuples; recall annotation "
          f"propagated onto "
          f"{sum(1 for row in joined.relation if 'Annot_recall' in row.annotation_ids)} "
          f"of them")

    suspicious = select(joined.relation,
                        lambda row: row[2] == "high")
    view = project(suspicious.relation, [1, 2, 4]).relation
    print(f"view (instrument, value, vendor) over high readings: "
          f"{len(view)} tuples")

    manager = repro.engine(view, min_support=0.1,
                                    min_confidence=0.6)
    manager.mine()
    print(f"\nrules mined on the view: {len(manager.rules)}")
    shown = 0
    for rule in manager.rules.sorted_rules():
        token = manager.vocabulary.item(rule.rhs).token
        if token == "Annot_recall" and shown < 3:
            print(f"  {rule.render(manager.vocabulary)}")
            shown += 1

    state = Path(tempfile.mkdtemp(prefix="repro_views_")) / "state.json"
    persistence.save(manager, state)
    restored = persistence.load(state)
    print(f"\nsession persisted to {state} and restored: "
          f"{restored.signature() == manager.signature()}")


if __name__ == "__main__":
    main()

"""Quickstart: discover and incrementally maintain annotation rules.

Builds a small annotated relation, mines data-to-annotation and
annotation-to-annotation rules, applies each of the paper's three
update cases incrementally, and verifies the maintained rule set
against a full re-mine after every step.

Run with:  python examples/quickstart.py
"""

from repro import AnnotationRuleManager, AnnotatedRelation, RuleKind

ROWS = [
    # (data values, annotations) — Figure 4 style, opaque value ids.
    (("28", "85", "17"), ("Annot_4", "Annot_5")),
    (("28", "85", "17"), ("Annot_1", "Annot_4")),
    (("28", "85", "3"), ("Annot_1",)),
    (("28", "85", "3"), ("Annot_1", "Annot_4")),
    (("41", "12", "17"), ("Annot_5",)),
    (("41", "12", "3"), ()),
    (("28", "85", "9"), ("Annot_1",)),
    (("41", "85", "9"), ()),
]


def print_rules(manager: AnnotationRuleManager) -> None:
    for kind in (RuleKind.DATA_TO_ANNOTATION,
                 RuleKind.ANNOTATION_TO_ANNOTATION):
        print(f"  {kind.value}:")
        for rule in manager.rules.sorted_rules():
            if rule.kind is kind:
                print(f"    {rule.render(manager.vocabulary)}")


def main() -> None:
    relation = AnnotatedRelation()
    for values, annotations in ROWS:
        relation.insert(values, annotations)

    manager = AnnotationRuleManager(relation, min_support=0.25,
                                    min_confidence=0.6)
    report = manager.mine()
    print(f"Mined {len(manager.rules)} rules from {manager.db_size} tuples "
          f"in {report.duration_seconds * 1000:.1f} ms")
    print_rules(manager)

    print("\nCase 3 — add annotations to existing tuples (the δ batch):")
    report = manager.add_annotations([(5, "Annot_1"), (7, "Annot_1")])
    print(f"  {report.summary()}")

    print("Case 1 — add annotated tuples:")
    report = manager.insert_annotated([(("28", "85", "9"), ("Annot_1",))])
    print(f"  {report.summary()}")

    print("Case 2 — add un-annotated tuples:")
    report = manager.insert_unannotated([("41", "12", "9")])
    print(f"  {report.summary()}")

    verification = manager.verify_against_remine()
    print(f"\nIncremental == full re-mine: {verification.equivalent} "
          f"({verification.explain()})")
    print("\nFinal rules:")
    print_rules(manager)


if __name__ == "__main__":
    main()

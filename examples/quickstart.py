"""Quickstart: discover and incrementally maintain annotation rules.

Builds a small annotated relation, configures a correlation engine
through the fluent builder, mines data-to-annotation and
annotation-to-annotation rules, applies each of the paper's three
update cases incrementally, and verifies the maintained rule set
against a full re-mine after every step — then repeats the initial
mine on every registered backend to show they agree.

Run with:  python examples/quickstart.py
"""

import repro
from repro import AnnotatedRelation, CorrelationEngine, EngineConfig, RuleKind

ROWS = [
    # (data values, annotations) — Figure 4 style, opaque value ids.
    (("28", "85", "17"), ("Annot_4", "Annot_5")),
    (("28", "85", "17"), ("Annot_1", "Annot_4")),
    (("28", "85", "3"), ("Annot_1",)),
    (("28", "85", "3"), ("Annot_1", "Annot_4")),
    (("41", "12", "17"), ("Annot_5",)),
    (("41", "12", "3"), ()),
    (("28", "85", "9"), ("Annot_1",)),
    (("41", "85", "9"), ()),
]


def build_relation() -> AnnotatedRelation:
    relation = AnnotatedRelation()
    for values, annotations in ROWS:
        relation.insert(values, annotations)
    return relation


def print_rules(engine: CorrelationEngine) -> None:
    for kind in (RuleKind.DATA_TO_ANNOTATION,
                 RuleKind.ANNOTATION_TO_ANNOTATION):
        print(f"  {kind.value}:")
        for rule in engine.rules.sorted_rules():
            if rule.kind is kind:
                print(f"    {rule.render(engine.vocabulary)}")


def main() -> None:
    config = (EngineConfig.builder()
              .support(0.25)
              .confidence(0.6)
              .build())
    engine = CorrelationEngine(build_relation(), config)
    report = engine.mine()
    print(f"Mined {len(engine.rules)} rules from {engine.db_size} tuples "
          f"in {report.duration_seconds * 1000:.1f} ms "
          f"[backend={engine.backend_name}]")
    print_rules(engine)

    print("\nCase 3 — add annotations to existing tuples (the δ batch):")
    report = engine.add_annotations([(5, "Annot_1"), (7, "Annot_1")])
    print(f"  {report.summary()}")

    print("Case 1 — add annotated tuples:")
    report = engine.insert_annotated([(("28", "85", "9"), ("Annot_1",))])
    print(f"  {report.summary()}")

    print("Case 2 — add un-annotated tuples:")
    report = engine.insert_unannotated([("41", "12", "9")])
    print(f"  {report.summary()}")

    verification = engine.verify_against_remine()
    print(f"\nIncremental == full re-mine: {verification.equivalent} "
          f"({verification.explain()})")
    print("\nFinal rules:")
    print_rules(engine)

    print("\nEvery backend mines the same rule set:")
    reference = None
    for backend in repro.available_backends():
        alt = repro.engine(build_relation(), config, backend=backend)
        alt.mine()
        reference = alt.signature() if reference is None else reference
        agrees = alt.signature() == reference
        print(f"  {backend:12s} -> {len(alt.rules)} rules, "
              f"agrees with reference: {agrees}")


if __name__ == "__main__":
    main()

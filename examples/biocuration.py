"""Biological database curation — the paper's motivating scenario.

The paper's introduction pictures an annotated scientific database
where black pins reference related articles and red flags mark
incorrect values.  This example builds a gene-expression relation whose
curators attach free-text annotations, then:

1. generalizes the free text into concepts (``Invalidation``,
   ``Reference``) with a quality-issue hierarchy on top,
2. mines correlations over the extended database,
3. asks the recommender which tuples are probably missing a flag, and
4. lets a curator accept the strong suggestions, which flow back
   through incremental (Case 3) maintenance.

Run with:  python examples/biocuration.py
"""

import random

import repro
from repro import (
    AnnotatedRelation,
    Annotation,
    ConceptHierarchy,
    GeneralizationRule,
    GeneralizationRuleSet,
    Generalizer,
    KeywordMatcher,
    MissingAnnotationRecommender,
    Schema,
)
from repro.exploitation.ranking import rank

GENES = ["BRCA1", "TP53", "EGFR", "MYC"]
TISSUES = ["breast", "lung", "colon"]
PLATFORMS = ["chip-A", "chip-B"]

FLAG_TEXTS = [
    "value looks invalid",
    "wrong normalization",
    "incorrect replicate",
]
REFERENCE_TEXTS = [
    "see article PMID:1201",
    "discussed in article PMID:8833",
]


def build_relation(seed: int = 5, n_rows: int = 400) -> AnnotatedRelation:
    rng = random.Random(seed)
    relation = AnnotatedRelation(Schema(["gene", "tissue", "platform"]))
    flag_count = 0
    reference_count = 0
    for _ in range(n_rows):
        gene = rng.choice(GENES)
        tissue = rng.choice(TISSUES)
        # chip-B systematically produces questionable BRCA1 readings:
        # the correlation the miner should surface.
        platform = ("chip-B" if gene == "BRCA1" and rng.random() < 0.7
                    else rng.choice(PLATFORMS))
        tid = relation.insert((gene, tissue, platform))
        if gene == "BRCA1" and platform == "chip-B" and rng.random() < 0.85:
            flag_count += 1
            relation.annotate(tid, Annotation(
                f"flag_{flag_count}", text=rng.choice(FLAG_TEXTS)))
        if gene == "TP53" and rng.random() < 0.5:
            reference_count += 1
            relation.annotate(tid, Annotation(
                f"ref_{reference_count}", text=rng.choice(REFERENCE_TEXTS)))
    return relation


def main() -> None:
    relation = build_relation()
    print(f"Curated relation: {len(relation)} tuples, "
          f"{len(relation.registry)} annotations "
          f"(every annotation id unique — raw mining would see nothing)")

    generalizer = Generalizer(
        relation.registry,
        GeneralizationRuleSet([
            GeneralizationRule("Invalidation", KeywordMatcher(
                frozenset({"invalid", "wrong", "incorrect"}))),
            GeneralizationRule("Reference", KeywordMatcher(
                frozenset({"article"}))),
        ]),
        ConceptHierarchy.from_edges([("Invalidation", "QualityIssue")]),
    )

    manager = repro.engine(relation, min_support=0.05,
                           min_confidence=0.6,
                           generalizer=generalizer)
    manager.mine()
    print(f"\nRules over the extended (generalized) database: "
          f"{len(manager.rules)}")
    for rule in manager.rules.sorted_rules():
        if manager.vocabulary.item(rule.rhs).token in (
                "Invalidation", "QualityIssue", "Reference"):
            print(f"  {rule.render(manager.vocabulary)}")

    recommender = MissingAnnotationRecommender(manager,
                                               include_labels=True,
                                               min_confidence=0.7)
    recommendations = rank(recommender.scan())
    print(f"\nRecommendations (tuples probably missing a flag): "
          f"{len(recommendations)}")
    for recommendation in recommendations[:5]:
        print(f"  {recommendation.render(manager.vocabulary)}")

    # The recommendations are concept-level ("this tuple is probably
    # missing an Invalidation flag").  A curator confirms a concept by
    # attaching a concrete flag annotation whose text maps back to it —
    # which then flows through Case 3 incremental maintenance.
    confirmations = []
    for index, recommendation in enumerate(
            r for r in recommendations[:10]
            if r.annotation_id == "Invalidation"
            and r.best_rule.confidence >= 0.8):
        flag = Annotation(f"flag_curator_{index}",
                          text="curator confirmed: value invalid")
        relation.registry.register(flag)
        confirmations.append((recommendation.tid, flag.annotation_id))
    if confirmations:
        report = manager.add_annotations(confirmations)
        print(f"\nCurator confirmed {len(confirmations)} invalidations; "
              f"maintenance: {report.summary()}")
        for tid, _ in confirmations[:3]:
            print(f"  tuple {tid} labels now: "
                  f"{sorted(relation.tuple(tid).labels)}")
    print(f"Incremental state still exact: "
          f"{manager.verify_against_remine().equivalent}")


if __name__ == "__main__":
    main()

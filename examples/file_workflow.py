"""The paper's application workflow, driven through its file formats.

Writes a dataset file (Figure 4), a generalization-rules file
(Figure 9) and an annotation-update file (Figure 14) to a temporary
directory, then drives the :class:`repro.Session` through the same
steps a user of the paper's menu application would take, ending with
the Figure 7 rules output file.

Run with:  python examples/file_workflow.py
"""

import tempfile
from pathlib import Path

from repro import Session
from repro.core.events import AddAnnotations
from repro.core.rules import RuleKind
from repro.io import dataset_format, updates_format
from repro.synth.generator import generate_annotation_batch
from repro.synth.workloads import dev_scale

GENERALIZATIONS = """\
# Figure 9 style generalization rules
Invalid_Values <= Annot_N0 | Annot_N1
Noise <= Annot_N2
[hierarchy]
Invalid_Values -> QualityIssue
Noise -> QualityIssue
"""


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro_workflow_"))
    workload = dev_scale()

    dataset = workspace / "dataset.txt"
    dataset_format.write_dataset(workload.relation, dataset)
    generalizations = workspace / "generalizations.txt"
    generalizations.write_text(GENERALIZATIONS)

    session = Session()
    count = session.load_dataset(dataset)
    print(f"Loaded {count} tuples from {dataset}")

    session.load_generalizations(generalizations)
    report = session.mine(min_support=0.3, min_confidence=0.7)
    print(f"Mined in {report.duration_seconds * 1000:.1f} ms: "
          f"{len(session.manager.rules)} rules")
    for kind in (RuleKind.DATA_TO_ANNOTATION,
                 RuleKind.ANNOTATION_TO_ANNOTATION):
        print(f"  {kind.value}: {len(session.rules_of_kind(kind))}")

    batch = generate_annotation_batch(session.manager.relation, size=20,
                                      seed=9)
    updates = workspace / "updates.txt"
    updates_format.write_updates(AddAnnotations.build(batch), updates)
    report = session.add_annotations_from_file(updates)
    print(f"Applied update file ({len(batch)} pairs): {report.summary()}")

    rules_out = workspace / "rules.txt"
    written = session.write_rules(rules_out)
    print(f"Wrote {written} rules to {rules_out}; first lines:")
    for line in rules_out.read_text().splitlines()[:5]:
        print(f"  {line}")

    print(f"\nStatus: {session.status()}")
    print(f"Incremental state exact: "
          f"{session.manager.verify_against_remine().equivalent}")


if __name__ == "__main__":
    main()

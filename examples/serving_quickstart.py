"""Serving quickstart: the correlation engine behind an HTTP API.

Starts a :class:`repro.CorrelationServer` on an ephemeral port (in a
background thread, so this file works as both a script and a test),
then drives the whole tenant lifecycle with nothing but ``urllib``:

1. create a tenant from inline rows (mines immediately);
2. read rules — listing, top-k by lift, a filtered query;
3. stream annotation events, watch the queue, flush;
4. confirm the served revision advanced and verify against a re-mine;
5. peek at ``/metrics``, then drain the server.

Run with:  python examples/serving_quickstart.py
"""

import asyncio
import json
import threading
import urllib.request

from repro import CorrelationServer, EngineConfig, ServerConfig

ROWS = [
    # (data values, annotations) — Figure 4 style, opaque value ids.
    [["28", "85", "17"], ["Annot_4", "Annot_5"]],
    [["28", "85", "17"], ["Annot_1", "Annot_4"]],
    [["28", "85", "3"], ["Annot_1"]],
    [["28", "85", "3"], ["Annot_1", "Annot_4"]],
    [["41", "12", "17"], ["Annot_5"]],
    [["41", "12", "3"], []],
    [["28", "85", "9"], ["Annot_1"]],
    [["41", "85", "9"], []],
]


def call(port, method, path, body=None):
    """One JSON request with stdlib urllib; returns the parsed body."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    config = ServerConfig(
        port=0,  # ephemeral — server.port reports the real one
        default_engine=EngineConfig(min_support=0.25,
                                    min_confidence=0.6),
        flush_watermark=None)  # this example flushes explicitly
    server = CorrelationServer(config)
    started = threading.Event()
    stop: list = []

    def serve():
        async def run():
            await server.start()
            stop.append(asyncio.get_running_loop())
            stop.append(asyncio.Event())
            started.set()
            await stop[1].wait()
            await server.shutdown()
        asyncio.run(run())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    started.wait()
    port = server.port

    # 1. Create a tenant: schema columns, rows, immediate mine.
    created = call(port, "POST", "/v1/tenants",
                   {"name": "quickstart", "columns": ["c1", "c2", "c3"],
                    "rows": ROWS})
    tenant = created["tenant"]
    print(f"tenant {tenant['tenant']}: {tenant['rules']} rules over "
          f"{tenant['db_size']} tuples (revision {tenant['revision']})")

    # 2. Read the rules three ways.
    top = call(port, "GET", "/v1/quickstart/rules/top?n=3&by=lift")
    print("top rules by lift:")
    for rule in top["rules"]:
        print(f"  {rule['rendered']}")
    confident = call(port, "GET",
                     "/v1/quickstart/query?min_confidence=0.9"
                     "&order_by=support")
    print(f"rules with confidence >= 0.9: {confident['total']}")
    about = call(port, "GET",
                 "/v1/quickstart/rules/for-item?token=Annot_1")
    print(f"rules mentioning Annot_1: {about['total']}")

    # 3. Stream updates: queued (202) until a flush applies them.
    queued = call(port, "POST", "/v1/quickstart/events:batch",
                  {"events": [
                      {"type": "add_annotations",
                       "additions": [[4, "Annot_1"], [5, "Annot_1"]]},
                      {"type": "add_annotated_tuples",
                       "rows": [[["28", "85", "17"], ["Annot_1"]]]},
                  ]})
    print(f"queued {queued['queued']} events "
          f"(queue depth {queued['queue_depth']})")
    flushed = call(port, "POST", "/v1/quickstart/flush")
    print(f"flush applied {flushed['events_applied']} events -> "
          f"revision {flushed['revision']}, {flushed['rules']} rules")

    # 4. The read path serves the new revision; verify it is exact.
    listing = call(port, "GET", "/v1/quickstart/rules?limit=1")
    verify = call(port, "GET", "/v1/quickstart/verify")
    print(f"served revision now {listing['revision']}; "
          f"incremental == re-mine: {verify['equivalent']}")

    # 5. Operational surface.
    metrics = call(port, "GET", "/metrics")
    flushes = metrics["metrics"]["service_flush_batches"]["value"]
    print(f"metrics: {flushes} flush batch(es), snapshot hit rate "
          f"{metrics['derived']['snapshot_hit_rate']:.2f}")

    stop[0].call_soon_threadsafe(stop[1].set)
    thread.join(timeout=30)
    print("server drained")


if __name__ == "__main__":
    main()

"""Unit tests for the random event-stream generator."""

import pytest

from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.errors import MiningError
from repro.relation.relation import AnnotatedRelation
from repro.synth.streams import (
    EventStream,
    StreamConfig,
    apply_to_relation,
)
from repro.synth.workloads import dev_scale


class TestConfig:
    def test_all_zero_weights_rejected(self):
        with pytest.raises(MiningError):
            StreamConfig(weight_add_annotations=0,
                         weight_insert_annotated=0,
                         weight_insert_unannotated=0,
                         weight_remove_annotations=0,
                         weight_remove_tuples=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(MiningError):
            StreamConfig(weight_remove_tuples=-1)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(MiningError):
            StreamConfig(batch_size=0)


class TestDraw:
    def test_deterministic_given_seed(self):
        first = EventStream(dev_scale(n_tuples=50).relation,
                            StreamConfig(seed=3))
        second = EventStream(dev_scale(n_tuples=50).relation,
                             StreamConfig(seed=3))
        assert [first.draw() for _ in range(5)] \
            == [second.draw() for _ in range(5)]

    def test_events_target_live_tuples(self):
        workload = dev_scale(n_tuples=60)
        stream = EventStream(workload.relation, StreamConfig(seed=9))
        for _ in range(20):
            event = stream.draw()
            if isinstance(event, AddAnnotations):
                for tid, annotation_id in event.additions:
                    assert workload.relation.is_live(tid)
                    assert not workload.relation.tuple(tid).has_annotation(
                        annotation_id)
            elif isinstance(event, (RemoveAnnotations, RemoveTuples)):
                tids = ([tid for tid, _ in event.removals]
                        if isinstance(event, RemoveAnnotations)
                        else list(event.tids))
                assert all(workload.relation.is_live(tid) for tid in tids)

    def test_weights_zeroing_excludes_kinds(self):
        workload = dev_scale(n_tuples=40)
        stream = EventStream(workload.relation, StreamConfig(
            weight_add_annotations=0, weight_insert_annotated=0,
            weight_insert_unannotated=1, weight_remove_annotations=0,
            weight_remove_tuples=0, seed=5))
        events = [stream.draw() for _ in range(10)]
        assert all(isinstance(event, AddUnannotatedTuples)
                   for event in events)

    def test_empty_relation_falls_back_to_insert(self):
        relation = AnnotatedRelation()
        relation.insert(("seed",))
        stream = EventStream(relation, StreamConfig(
            weight_add_annotations=0, weight_insert_annotated=0,
            weight_insert_unannotated=0, weight_remove_annotations=1,
            weight_remove_tuples=0, seed=2))
        event = stream.draw()
        # No annotations exist to remove: the stream degrades to inserts
        # rather than spinning forever.
        assert isinstance(event, (AddUnannotatedTuples,
                                  AddAnnotatedTuples))


class TestTake:
    def test_take_applies_between_draws(self):
        workload = dev_scale(n_tuples=40)
        relation = workload.relation
        applied = []

        def apply(event):
            applied.append(type(event).__name__)
            # Minimal application so subsequent draws see fresh state.
            if isinstance(event, AddAnnotations):
                for tid, annotation_id in event.additions:
                    relation.annotate(tid, annotation_id)
            elif isinstance(event, AddUnannotatedTuples):
                for values in event.rows:
                    relation.insert(values)
            elif isinstance(event, AddAnnotatedTuples):
                for values, annotations in event.rows:
                    relation.insert(values, annotations)
            elif isinstance(event, RemoveAnnotations):
                for tid, annotation_id in event.removals:
                    relation.detach(tid, annotation_id)
            elif isinstance(event, RemoveTuples):
                for tid in event.tids:
                    relation.delete(tid)

        stream = EventStream(relation, StreamConfig(seed=11))
        events = list(stream.take(15, apply=apply))
        assert len(events) == 15
        assert len(applied) == 15


class TestApplyToRelation:
    def test_replays_a_drawn_stream_identically(self):
        workload = dev_scale(n_tuples=40)
        original = workload.relation
        shadow = original.copy()
        stream = EventStream(shadow, StreamConfig(seed=11))
        events = list(stream.take(
            15, apply=lambda event: apply_to_relation(shadow, event)))
        replay = original.copy()
        for event in events:
            apply_to_relation(replay, event)
        assert replay.live_count == shadow.live_count
        assert replay.tid_range == shadow.tid_range
        for tid in replay.tids():
            assert (replay.tuple(tid).annotation_ids
                    == shadow.tuple(tid).annotation_ids)

    def test_rejects_unknown_events(self):
        with pytest.raises(MiningError):
            apply_to_relation(dev_scale(n_tuples=10).relation, object())


class TestHotTupleBias:
    def test_biased_stream_concentrates_annotation_targets(self):
        workload = dev_scale(n_tuples=60)
        shadow = workload.relation.copy()
        config = StreamConfig(
            seed=5, batch_size=2,
            weight_add_annotations=1.0, weight_insert_annotated=0,
            weight_insert_unannotated=0, weight_remove_annotations=0,
            weight_remove_tuples=0,
            hot_tuple_count=5, hot_tuple_bias=0.9)
        stream = EventStream(shadow, config)
        tids = [tid
                for event in stream.take(
                    30, apply=lambda e: apply_to_relation(shadow, e))
                for tid, _annotation in event.additions]
        hot_hits = sum(1 for tid in tids if tid < 5)
        assert hot_hits / len(tids) > 0.6, "hot set not preferred"

    def test_bad_hot_config_rejected(self):
        with pytest.raises(MiningError):
            StreamConfig(hot_tuple_count=-1)
        with pytest.raises(MiningError):
            StreamConfig(hot_tuple_bias=1.5)

"""Tests for the named benchmark workloads."""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.rules import RuleKind
from repro.mining.itemsets import ItemKind
from repro.synth import workloads


def mine(workload, **overrides):
    manager = AnnotationRuleManager(
        workload.relation,
        min_support=overrides.get("min_support", workload.min_support),
        min_confidence=overrides.get("min_confidence",
                                     workload.min_confidence))
    manager.mine()
    return manager


class TestDevScale:
    def test_builds_and_mines(self):
        workload = workloads.dev_scale()
        assert len(workload.relation) == 400
        manager = mine(workload)
        assert len(manager.rules) > 0

    def test_planted_d2a_discovered(self):
        workload = workloads.dev_scale()
        manager = mine(workload)
        rhs_tokens = {manager.vocabulary.item(rule.rhs).token
                      for rule in manager.rules_of_kind(
                          RuleKind.DATA_TO_ANNOTATION)}
        assert "Annot_1" in rhs_tokens

    def test_planted_a2a_discovered(self):
        workload = workloads.dev_scale()
        manager = mine(workload)
        pairs = {
            (manager.vocabulary.render(rule.lhs),
             manager.vocabulary.item(rule.rhs).token)
            for rule in manager.rules_of_kind(
                RuleKind.ANNOTATION_TO_ANNOTATION)
        }
        assert ("Annot_1", "Annot_3") in pairs


class TestPaperScale:
    @pytest.fixture(scope="class")
    def workload(self):
        # Smaller instance of the same configuration for test speed.
        return workloads.paper_scale(n_tuples=1500)

    def test_paper_thresholds(self, workload):
        assert workload.min_support == 0.4
        assert workload.min_confidence == 0.8

    def test_figure7_shaped_rule_present(self, workload):
        manager = mine(workload)
        # The headline planted rule: two-value LHS -> Annot_1 with
        # support ~0.42 and confidence >0.9 (paper Figure 7's first row).
        matches = [
            rule for rule in manager.rules_of_kind(
                RuleKind.DATA_TO_ANNOTATION)
            if manager.vocabulary.item(rule.rhs).token == "Annot_1"
            and len(rule.lhs) == 2
        ]
        assert matches
        best = max(matches, key=lambda rule: rule.confidence)
        assert best.support == pytest.approx(0.43, abs=0.05)
        assert best.confidence > 0.9


class TestSparseAnnotations:
    def test_raw_rules_absent_generalized_possible(self):
        workload = workloads.sparse_annotations(n_tuples=800)
        manager = mine(workload)
        raw_rhs = {manager.vocabulary.item(rule.rhs).token
                   for rule in manager.rules
                   if manager.vocabulary.item(rule.rhs).kind
                   is ItemKind.ANNOTATION}
        # Each raw variant sits at ~7% support, far below 15%.
        assert not any(token.startswith("Annot_inv") for token in raw_rhs)


class TestDenseCorrelations:
    def test_rule_count_grows_as_support_drops(self):
        workload = workloads.dense_correlations(n_tuples=800)
        high = mine(workload, min_support=0.4)
        low = mine(workload, min_support=0.2)
        assert len(low.rules) >= len(high.rules)

"""Unit tests for the planted-rule synthetic generator."""

import pytest

from repro.errors import MiningError
from repro.synth.generator import (
    PlantedA2A,
    PlantedD2A,
    SyntheticConfig,
    generate,
    generate_annotation_batch,
    hide_annotations,
    value_token,
)


def small_config(**overrides):
    defaults = dict(
        n_tuples=300,
        n_columns=3,
        values_per_column=8,
        planted_d2a=(
            PlantedD2A(pattern=((0, 1),), annotation="Annot_1",
                       pattern_rate=0.5, confidence=0.9),
        ),
        planted_a2a=(
            PlantedA2A(lhs=("Annot_1",), rhs="Annot_2", confidence=0.8),
        ),
        noise_annotations=2,
        noise_rate=0.05,
        seed=3,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestValidation:
    def test_bad_tuple_count(self):
        with pytest.raises(MiningError):
            SyntheticConfig(n_tuples=0)

    def test_pattern_outside_schema(self):
        with pytest.raises(MiningError):
            small_config(planted_d2a=(
                PlantedD2A(pattern=((9, 0),), annotation="A",
                           pattern_rate=0.5, confidence=0.9),))

    def test_pattern_value_outside_domain(self):
        with pytest.raises(MiningError):
            small_config(planted_d2a=(
                PlantedD2A(pattern=((0, 99),), annotation="A",
                           pattern_rate=0.5, confidence=0.9),))

    def test_planted_rule_validation(self):
        with pytest.raises(MiningError):
            PlantedD2A(pattern=(), annotation="A", pattern_rate=0.5,
                       confidence=0.9)
        with pytest.raises(MiningError):
            PlantedD2A(pattern=((0, 0),), annotation="A", pattern_rate=1.5,
                       confidence=0.9)
        with pytest.raises(MiningError):
            PlantedA2A(lhs=("A",), rhs="A", confidence=0.9)


class TestGenerate:
    def test_deterministic(self):
        left, _ = generate(small_config())
        right, _ = generate(small_config())
        assert len(left) == len(right)
        for tid in range(len(left)):
            assert left.tuple(tid).values == right.tuple(tid).values
            assert left.tuple(tid).annotation_ids \
                == right.tuple(tid).annotation_ids

    def test_seed_changes_output(self):
        left, _ = generate(small_config(seed=1))
        right, _ = generate(small_config(seed=2))
        different = any(
            left.tuple(tid).values != right.tuple(tid).values
            for tid in range(len(left)))
        assert different

    def test_planted_support_and_confidence_close_to_target(self):
        relation, truth = generate(small_config(n_tuples=2000))
        pattern_tids = truth.pattern_tids[0]
        annotated_tids = truth.annotated_tids[0]
        # Pattern rate ~0.5, confidence ~0.9 (within sampling noise).
        assert 0.45 <= len(pattern_tids) / 2000 <= 0.55
        assert 0.85 <= len(annotated_tids) / len(pattern_tids) <= 0.95
        # Every recorded pattern tid really contains the pattern.
        token = value_token(0, 1)
        for tid in list(pattern_tids)[:50]:
            assert token in relation.tuple(tid).values

    def test_a2a_rule_planted(self):
        relation, _ = generate(small_config(n_tuples=2000))
        with_lhs = [row for row in relation
                    if "Annot_1" in row.annotation_ids]
        with_both = [row for row in with_lhs
                     if "Annot_2" in row.annotation_ids]
        assert 0.7 <= len(with_both) / len(with_lhs) <= 0.9


class TestAnnotationBatch:
    def test_batch_targets_valid_pairs(self):
        relation, _ = generate(small_config())
        batch = generate_annotation_batch(relation, size=40, seed=9)
        assert len(batch) == 40
        assert len(set(batch)) == 40
        for tid, annotation_id in batch:
            assert relation.is_live(tid)
            assert not relation.tuple(tid).has_annotation(annotation_id)

    def test_batch_deterministic(self):
        relation, _ = generate(small_config())
        assert generate_annotation_batch(relation, size=10, seed=4) \
            == generate_annotation_batch(relation, size=10, seed=4)

    def test_custom_pool(self):
        relation, _ = generate(small_config())
        batch = generate_annotation_batch(relation, size=5, seed=1,
                                          annotation_pool=["Annot_zz"])
        assert all(annotation == "Annot_zz" for _, annotation in batch)

    def test_empty_pool_rejected(self):
        from repro.relation.relation import AnnotatedRelation
        relation = AnnotatedRelation()
        relation.insert(("1",))
        with pytest.raises(MiningError):
            generate_annotation_batch(relation, size=1, seed=1)


class TestHideAnnotations:
    def test_hides_exact_fraction(self):
        relation, _ = generate(small_config())
        total = sum(len(row.annotation_ids) for row in relation)
        hidden = hide_annotations(relation, fraction=0.25, seed=5)
        assert len(hidden) == int(total * 0.25)
        remaining = sum(len(row.annotation_ids) for row in relation)
        assert remaining == total - len(hidden)
        for tid, annotation_id in hidden:
            assert not relation.tuple(tid).has_annotation(annotation_id)

    def test_bad_fraction_rejected(self):
        relation, _ = generate(small_config())
        with pytest.raises(MiningError):
            hide_annotations(relation, fraction=1.0, seed=1)

"""Unit tests for experiment kits (generation + replay)."""

import pytest

from repro.io import dataset_format, updates_format
from repro.io.generalization_format import parse_generalization_rules
from repro.synth.trace import KitConfig, main, replay_kit, write_kit


class TestWriteKit:
    def test_kit_files_exist(self, tmp_path):
        paths = write_kit(tmp_path / "kit", KitConfig(n_tuples=80))
        assert paths.dataset.exists()
        assert paths.manifest.exists()
        assert len(paths.updates) == 3
        assert paths.annotated_tuples.exists()
        assert paths.unannotated_tuples.exists()
        assert paths.generalizations is not None

    def test_kit_is_deterministic(self, tmp_path):
        first = write_kit(tmp_path / "a", KitConfig(n_tuples=60, seed=3))
        second = write_kit(tmp_path / "b", KitConfig(n_tuples=60, seed=3))
        assert first.dataset.read_text() == second.dataset.read_text()
        for left, right in zip(first.updates, second.updates):
            assert left.read_text() == right.read_text()

    def test_seed_changes_kit(self, tmp_path):
        first = write_kit(tmp_path / "a", KitConfig(n_tuples=60, seed=1))
        second = write_kit(tmp_path / "b", KitConfig(n_tuples=60, seed=2))
        assert first.dataset.read_text() != second.dataset.read_text()

    def test_all_files_parse(self, tmp_path):
        paths = write_kit(tmp_path / "kit", KitConfig(n_tuples=50))
        relation = dataset_format.read_dataset(paths.dataset)
        assert len(relation) == 50
        for update in paths.updates:
            event = updates_format.read_updates(update)
            for tid, _annotation in event.additions:
                assert 0 <= tid < len(relation)
        rules, hierarchy = parse_generalization_rules(paths.generalizations)
        assert len(rules) >= 1 and hierarchy is not None

    def test_update_batches_never_duplicate_pairs(self, tmp_path):
        paths = write_kit(tmp_path / "kit",
                          KitConfig(n_tuples=50, update_batches=4))
        seen = set()
        for update in paths.updates:
            for pair in updates_format.read_pairs(update):
                assert pair not in seen
                seen.add(pair)

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_kit(tmp_path / "kit", KitConfig(workload="galactic"))


class TestReplay:
    def test_replay_applies_everything_exactly(self, tmp_path):
        paths = write_kit(tmp_path / "kit",
                          KitConfig(n_tuples=80, insert_rows=10))
        manager = replay_kit(paths, min_support=0.3, min_confidence=0.7)
        assert manager.db_size == 80 + 10 + 10
        assert len(manager.log) == 3 + 2  # batches + two insert events
        assert manager.verify_against_remine().equivalent


class TestCli:
    def test_main_writes_kit(self, tmp_path, capsys):
        code = main([str(tmp_path / "kit"), "--tuples", "40",
                     "--batches", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kit written to" in out
        assert "workload: dev-scale" in out
        assert (tmp_path / "kit" / "updates_02.txt").exists()

"""Process-parallel phase 1: shared pages, fallback, persistence.

The ``shard_executor="process"`` path runs the shard mines in worker
processes over one shared-memory bitmap segment.  These tests pin its
whole contract: byte-identical answers to the monolithic engine (mine
*and* subsequent maintenance), graceful degradation to the thread pool
when the platform cannot run a process pool, picklable workers, no
leaked ``/dev/shm`` segments under any exit, and the executor choice
round-tripping through the v3 snapshot format (absent in older
snapshots == the thread default).
"""

import pickle

import pytest

from repro.core.config import SHARD_EXECUTORS, EngineConfig
from repro.core.engine import CorrelationEngine
from repro.core import persistence
from repro.errors import FormatError, InvalidThresholdError
from repro.mining.constraints import (
    CombinedRelevanceConstraint,
    FrozenRelevanceConstraint,
)
from repro.mining.pages import live_segments
from repro.shard import ShardedEngine
from repro.shard.engine import (
    _build_and_mine_shard,
    _mine_shard,
    _mine_shard_from_pages,
)
from repro.shard.pool import live_pool_count, shutdown_live_pools
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from tests.conftest import assert_equivalent_to_remine, make_relation

CONFIG = EngineConfig(min_support=0.25, min_confidence=0.6, validate=True)
#: shard_workers pinned to 2: single-core CI reports cpu_count 1, which
#: would quietly serialize phase 1 and never start the pool under test.
PROCESS = CONFIG.replace(shards=3, shard_workers=2,
                         shard_executor="process")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = live_segments()
    yield
    shutdown_live_pools()
    assert live_segments() == before, (
        "engine leaked shared-memory segments")


def drawn_events(relation, count, seed):
    shadow = relation.copy()
    stream = EventStream(shadow, StreamConfig(seed=seed, batch_size=4))
    return list(stream.take(
        count, apply=lambda event: apply_to_relation(shadow, event)))


def _exploding_worker(task):
    """Module-level (hence picklable) stand-in for a worker with a bug."""
    raise ZeroDivisionError("worker bug")


class TestProcessModeExactness:
    def test_mine_signature_equals_monolithic(self):
        relation = make_relation()
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        sharded = ShardedEngine(relation, PROCESS)
        sharded.mine()
        assert sharded.signature() == mono.signature()
        assert live_segments() == ()

    def test_maintenance_after_process_mine_stays_exact(self, seeds):
        """The adopted worker tables must leave every shard engine in
        the same state a thread-mode mine would: the incremental path
        and a from-scratch re-mine both agree afterwards."""
        relation = make_relation()
        events = drawn_events(relation, count=10, seed=seeds.seed(17))
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        sharded = ShardedEngine(relation, PROCESS)
        sharded.mine()
        mono.apply_batch(events)
        sharded.apply_batch(events)
        assert sharded.signature() == mono.signature()
        assert_equivalent_to_remine(sharded)

    def test_process_equals_thread_mode(self):
        relation = make_relation()
        threaded = ShardedEngine(
            relation.copy(), PROCESS.replace(shard_executor="thread"))
        threaded.mine()
        processed = ShardedEngine(relation, PROCESS)
        processed.mine()
        assert processed.signature() == threaded.signature()
        assert processed.config.shard_executor == "process"


class TestFallback:
    def test_broken_pool_degrades_to_threads(self, monkeypatch):
        """A pool that cannot start is a platform problem, not a user
        error: the mine silently completes on the thread path, exact,
        with the half-built segment torn down."""
        import concurrent.futures

        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process support in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            NoPool)
        relation = make_relation()
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        sharded = ShardedEngine(relation, PROCESS)
        sharded.mine()
        assert sharded.signature() == mono.signature()
        assert live_segments() == ()

    def test_worker_mining_errors_propagate(self, monkeypatch):
        """A genuine mining failure inside a worker must surface, not
        silently degrade (the thread path would raise it too) — and
        the segment must still be released."""
        import repro.shard.engine as shard_engine_module

        monkeypatch.setattr(shard_engine_module, "_build_and_mine_shard",
                            _exploding_worker)
        sharded = ShardedEngine(make_relation(), PROCESS)
        with pytest.raises(ZeroDivisionError):
            sharded.mine()
        assert live_segments() == ()

    def test_adoption_failure_releases_segment(self, monkeypatch):
        """An error raised *after* the workers succeeded — inside the
        parent's count-table adoption — must still tear the segment
        down through the refcounted manager."""
        monkeypatch.setattr(
            CorrelationEngine, "mine",
            lambda self, **kwargs: (_ for _ in ()).throw(
                RuntimeError("adoption bug")))
        sharded = ShardedEngine(make_relation(), PROCESS)
        with pytest.raises(RuntimeError, match="adoption bug"):
            sharded.mine()
        assert live_segments() == ()

    def test_pool_death_mid_flush_recovers_inline(self, monkeypatch):
        """A pool that dies *after* the flush's substrate mutations
        cannot unwind them — the parent re-mines inline, exactly."""
        relation = make_relation()
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        sharded = ShardedEngine(relation, PROCESS)
        sharded.mine()
        events = drawn_events(sharded.relation, count=8, seed=23)

        from repro.shard.pool import ShardPool

        monkeypatch.setattr(ShardPool, "run",
                            lambda self, fn, tasks: None)
        mono.apply_batch(events)
        report = sharded.apply_batch(events)
        assert report.shards_touched >= 1
        assert sharded.signature() == mono.signature()
        assert live_segments() == ()
        assert_equivalent_to_remine(sharded)


class TestWorkers:
    def test_workers_are_picklable_module_functions(self):
        """Both phase-1 workers must survive pickling — the process
        pool ships them by qualified name, which a lambda breaks."""
        for worker in (_mine_shard, _mine_shard_from_pages,
                       _build_and_mine_shard):
            assert pickle.loads(pickle.dumps(worker)) is worker

    def test_frozen_constraint_matches_live_and_pickles(self, seeds):
        """The worker-side frozen constraint admits exactly the
        itemsets the engine's live vocabulary constraint admits."""
        manager = CorrelationEngine(make_relation(), CONFIG)
        manager.mine()
        live = CombinedRelevanceConstraint(manager.vocabulary)
        keep = frozenset(manager.vocabulary.annotation_like_ids())
        frozen = pickle.loads(pickle.dumps(FrozenRelevanceConstraint(keep)))
        items = sorted(manager.index.as_mapping())
        rng = seeds.rng(43)
        for _ in range(60):
            itemset = tuple(sorted(
                rng.sample(items, rng.randint(1, min(4, len(items))))))
            assert frozen.admits(itemset) == live.admits(itemset), itemset
            assert (frozen.admits_item(itemset[0])
                    == live.admits_item(itemset[0]))


class TestPooledFlushes:
    """The persistent-pool incremental path: every routed flush re-mines
    its touched shards in workers, and the result is indistinguishable
    from the thread path and the monolithic engine at every boundary."""

    def test_pooled_flushes_match_thread_and_monolithic(self, seeds):
        relation = make_relation()
        events = drawn_events(relation, count=12, seed=seeds.seed(31))
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        threaded = ShardedEngine(relation.copy(),
                                 PROCESS.replace(shard_executor="thread"))
        threaded.mine()
        pooled = ShardedEngine(relation, PROCESS)
        pooled.mine()
        for start in range(0, len(events), 3):
            batch = events[start:start + 3]
            mono.apply_batch(batch)
            threaded.apply_batch(batch)
            report = pooled.apply_batch(batch)
            assert pooled.signature() == mono.signature(), (
                f"pooled flush {start} diverged from monolithic")
            assert pooled.signature() == threaded.signature(), (
                f"pooled flush {start} diverged from thread path")
            if report.shards_touched:
                assert report.phases.wall, "flush carried no phase timing"
        assert live_segments() == ()
        assert_equivalent_to_remine(pooled)
        pooled.close()
        threaded.close()

    def test_pool_persists_across_operations_until_close(self, seeds):
        sharded = ShardedEngine(make_relation(), PROCESS)
        sharded.mine()
        assert sharded._pool is not None and sharded._pool.active
        pool_before = sharded._pool
        events = drawn_events(sharded.relation, count=6,
                              seed=seeds.seed(53))
        sharded.apply_batch(events)
        assert sharded._pool is pool_before, "flush rebuilt the pool"
        assert live_pool_count() >= 1
        sharded.close()
        assert live_pool_count() == 0, "close() leaked pool workers"
        assert live_segments() == ()
        # close() is idempotent and the engine stays usable.
        sharded.close()
        more = drawn_events(sharded.relation, count=3,
                            seed=seeds.seed(59))
        sharded.apply_batch(more)
        assert_equivalent_to_remine(sharded)
        sharded.close()
        assert live_pool_count() == 0

    def test_mine_report_carries_phase_breakdown(self):
        sharded = ShardedEngine(make_relation(), PROCESS)
        report = sharded.mine()
        for phase in ("partition", "encode", "build", "mine", "merge",
                      "refresh"):
            assert phase in report.phases.wall, report.phases.wall
        assert len(report.phases.per_shard["build"]) == PROCESS.shards
        assert len(report.phases.per_shard["mine"]) == PROCESS.shards
        assert report.phases.summary() in report.summary()
        payload = report.phases.as_dict()
        assert set(payload) == {"wall", "per_shard"}
        sharded.close()


class TestConfigAndPersistence:
    def test_config_validates_executor(self):
        assert SHARD_EXECUTORS == ("thread", "process")
        with pytest.raises(InvalidThresholdError, match="shard_executor"):
            CONFIG.replace(shard_executor="fiber")
        built = (EngineConfig.builder().support(0.2).confidence(0.5)
                 .shard_executor("process").build())
        assert built.shard_executor == "process"

    def test_snapshot_round_trips_executor(self, tmp_path):
        sharded = ShardedEngine(make_relation(), PROCESS)
        sharded.mine()
        path = tmp_path / "engine.json"
        persistence.save(sharded, path)
        restored = persistence.load(path)
        assert isinstance(restored, ShardedEngine)
        assert restored.config.shard_executor == "process"
        assert restored.signature() == sharded.signature()
        assert live_segments() == ()

    def test_legacy_snapshot_defaults_to_thread(self):
        sharded = ShardedEngine(make_relation(),
                                CONFIG.replace(shards=2))
        sharded.mine()
        document = persistence.snapshot(sharded)
        assert document["shards"]["executor"] == "thread"
        del document["shards"]["executor"]  # pre-executor snapshot
        restored = persistence.restore(document)
        assert restored.config.shard_executor == "thread"
        assert restored.signature() == sharded.signature()

    def test_invalid_snapshot_executor_rejected(self):
        sharded = ShardedEngine(make_relation(),
                                CONFIG.replace(shards=2))
        sharded.mine()
        document = persistence.snapshot(sharded)
        document["shards"]["executor"] = "fiber"
        with pytest.raises(FormatError, match="executor"):
            persistence.restore(document)

"""Unit tests for rebalance planning: skew, layouts, rebuilds."""

import pytest

from repro.core.engine import engine
from repro.errors import MaintenanceError
from repro.shard import ShardedEngine
from repro.shard.rebalance import (
    current_layout,
    layout_document,
    plan_rebalance,
    rebuild_with_plan,
    shard_skew,
)
from repro.core import persistence
from tests.conftest import make_relation


def mono_engine(relation=None):
    manager = engine(relation if relation is not None else make_relation(),
                     min_support=0.25, min_confidence=0.6, validate=True)
    manager.mine()
    return manager


def sharded_engine(shards, partitioner=None):
    manager = ShardedEngine(make_relation(), min_support=0.25,
                            min_confidence=0.6, validate=True,
                            shards=shards, partitioner=partitioner)
    manager.mine()
    return manager


class TestCurrentLayout:
    def test_monolithic_is_one_shard_of_everything(self):
        manager = mono_engine()
        manager.remove_tuples([2])
        count, assignment = current_layout(manager)
        assert count == 1
        assert assignment[2] is None          # dead tids carry no shard
        assert all(shard == 0 for tid, shard in enumerate(assignment)
                   if tid != 2)
        manager.close()

    def test_sharded_reports_its_real_assignment(self):
        manager = sharded_engine(3)
        count, assignment = current_layout(manager)
        assert count == 3
        assert assignment == [tid % 3 for tid in range(8)]
        manager.close()


class TestShardSkew:
    def test_balanced_layout_has_ratio_one(self):
        manager = sharded_engine(2)
        skew = shard_skew(manager)
        assert skew.counts == (4, 4)
        assert skew.max_ratio == 1.0
        assert not skew.skewed()
        manager.close()

    def test_hot_shard_is_detected(self):
        manager = sharded_engine(2, partitioner=lambda tid: 0)
        skew = shard_skew(manager)
        assert skew.counts == (8, 0)
        assert skew.max_ratio == 2.0
        assert skew.skewed()
        assert not skew.skewed(threshold=2.5)
        manager.close()

    def test_as_dict_is_json_shaped(self):
        manager = mono_engine()
        payload = shard_skew(manager).as_dict()
        assert payload == {"counts": [8], "total": 8, "max_ratio": 1.0}
        manager.close()


class TestPlan:
    def test_plan_is_deterministic(self):
        manager = sharded_engine(2, partitioner=lambda tid: 0)
        first = plan_rebalance(manager, target_shards=3)
        second = plan_rebalance(manager, target_shards=3)
        assert first == second
        manager.close()

    def test_target_counts_differ_by_at_most_one(self):
        for shards in (2, 3, 5):
            manager = mono_engine()
            plan = plan_rebalance(manager, target_shards=shards)
            assert sum(plan.target_counts) == plan.total == 8
            assert max(plan.target_counts) - min(plan.target_counts) <= 1
            manager.close()

    def test_moves_are_counted_against_the_current_layout(self):
        manager = sharded_engine(2, partitioner=lambda tid: 0)
        plan = plan_rebalance(manager)   # keep 2 shards, just even out
        assert plan.current_counts == (8, 0)
        assert plan.target_counts == (4, 4)
        assert plan.moved == 4           # every odd position leaves 0
        assert not plan.noop
        manager.close()

    def test_balanced_round_robin_is_a_noop(self):
        manager = sharded_engine(2)      # default tid % 2 layout
        plan = plan_rebalance(manager)
        assert plan.noop and plan.moved == 0
        manager.close()

    def test_dead_tids_are_never_assigned(self):
        manager = mono_engine()
        manager.remove_tuples([0, 4])
        plan = plan_rebalance(manager, target_shards=2)
        assert plan.assignment[0] is None
        assert plan.assignment[4] is None
        assert plan.total == 6
        manager.close()

    def test_target_below_one_rejected(self):
        manager = mono_engine()
        with pytest.raises(MaintenanceError, match="target_shards"):
            plan_rebalance(manager, target_shards=0)
        manager.close()

    def test_as_dict_omits_the_assignment(self):
        manager = mono_engine()
        payload = plan_rebalance(manager, target_shards=2).as_dict()
        assert "assignment" not in payload
        assert payload["target_shards"] == 2
        assert payload["noop"] is False
        manager.close()


class TestRebuild:
    def test_layout_document_sets_or_strips_the_shards_key(self):
        manager = sharded_engine(2)
        document = persistence.snapshot(manager)
        wider = layout_document(document,
                                plan_rebalance(manager, target_shards=3))
        assert wider["shards"]["count"] == 3
        assert len(wider["shards"]["assignment"]) \
            == manager.relation.tid_range
        collapsed = layout_document(
            document, plan_rebalance(manager, target_shards=1))
        assert "shards" not in collapsed
        assert "shards" in document      # the input is never mutated
        manager.close()

    @pytest.mark.parametrize("target", [1, 2, 5])
    def test_rebuild_preserves_the_signature(self, target):
        manager = sharded_engine(2, partitioner=lambda tid: 0)
        plan = plan_rebalance(manager, target_shards=target)
        rebuilt = rebuild_with_plan(persistence.snapshot(manager), plan)
        assert rebuilt.signature() == manager.signature()
        if target > 1:
            assert isinstance(rebuilt, ShardedEngine)
            counts = shard_skew(rebuilt).counts
            assert max(counts) - min(counts) <= 1
        else:
            assert not isinstance(rebuilt, ShardedEngine)
        rebuilt.close()
        manager.close()

    def test_rebuilt_engine_keeps_maintaining_incrementally(self):
        from repro.core.events import AddAnnotations

        manager = mono_engine()
        plan = plan_rebalance(manager, target_shards=2)
        rebuilt = rebuild_with_plan(persistence.snapshot(manager), plan)
        rebuilt.apply(AddAnnotations.build([(3, "A")]))
        assert rebuilt.verify_against_remine().equivalent
        rebuilt.close()
        manager.close()
